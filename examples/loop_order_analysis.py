"""Loop-order analysis on your own problem (the paper's Section 3).

Run:  python examples/loop_order_analysis.py

Given a contraction's shape parameters, this example
(1) predicts the data-movement costs of the three loop orders with the
Table 1 closed forms, (2) *measures* them by running the instrumented
reference schemes, and (3) shows how 2-D tiling fixes CO's workspace
problem — i.e. it walks the paper's entire argument on a live problem.

Edit PROBLEM to explore your own regime.
"""

from repro.analysis.loop_order import (
    measure_scheme,
    predicted_costs,
    predicted_tiled_co_costs,
)
from repro.analysis.reporting import render_table
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.data.random_tensors import random_operand_pair
from repro.machine.specs import DESKTOP

PROBLEM = dict(L=2000, C=300, R=2000, density_l=0.01, density_r=0.01, seed=5)


def main():
    left, right = random_operand_pair(
        PROBLEM["L"], PROBLEM["C"], PROBLEM["R"],
        density_l=PROBLEM["density_l"], density_r=PROBLEM["density_r"],
        seed=PROBLEM["seed"],
    )
    print(f"problem: L={left.ext_extent}, R={right.ext_extent}, "
          f"C={left.con_extent}, nnz_L={left.nnz}, nnz_R={right.nnz}\n")

    # 1 & 2: predicted (Table 1) vs measured, per scheme.
    predictions = predicted_costs(left, right)
    rows = []
    for scheme in ("ci", "cm", "co"):
        sc = measure_scheme(scheme, left, right)
        p = predictions[scheme]
        rows.append([
            scheme.upper(), p.queries, sc.measured.hash_queries,
            p.data_volume, sc.measured.data_volume,
            int(p.accumulator_cells), sc.measured.workspace_cells,
        ])
    print(render_table(
        ["scheme", "q(pred)", "q(meas)", "vol(pred)", "vol(meas)",
         "ws(pred)", "ws(meas)"],
        rows, title="untiled loop orders (Table 1)",
    ))

    # 3: the tiled CO resolution — what FaSTCC actually runs.
    spec = ContractionSpec(
        (left.ext_extent, left.con_extent),
        (left.con_extent, right.ext_extent),
        [(1, 0)],
    )
    plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP)
    tiled = predicted_tiled_co_costs(left, right, plan.tile_l, plan.tile_r)
    print(f"\nFaSTCC's plan: {plan.accumulator} tiles of "
          f"{plan.tile_l}x{plan.tile_r}")
    print(f"tiled CO predicted: queries={tiled.queries:.0f}, "
          f"volume={tiled.data_volume:.0f}, "
          f"workspace={tiled.accumulator_cells:.0f} cells")
    co_ws = predictions["co"].accumulator_cells
    print(f"\nworkspace shrinks {co_ws / tiled.accumulator_cells:.0f}x vs "
          "untiled CO while the volume grows only "
          f"{tiled.data_volume / predictions['co'].data_volume:.1f}x — "
          "the trade Section 3.5 makes.")


if __name__ == "__main__":
    main()
