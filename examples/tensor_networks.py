"""Sparse tensor networks with the einsum front end (the extension).

Run:  python examples/tensor_networks.py

Multi-tensor contractions (the paper's related-work/future direction:
CoNST, SparseLNR) are binarized into pairwise FaSTCC contractions.  The
ordering matters: a bad order materializes a huge sparse intermediate.
``repro.einsum`` scores candidate pairs with the paper's own output-
density model; this example shows the string API, the planned path, the
greedy-vs-naive ordering gap, and the plan-once/run-many expression API.
"""

import time

import numpy as np

from repro import contract_expression, contraction_path, einsum
from repro.data import random_coo


def main():
    # --- two-operand string API -------------------------------------
    te1 = random_coo((8, 20, 16), nnz=300, seed=1)
    te2 = random_coo((8, 20, 16), nnz=300, seed=2)
    integrals = einsum("imk,jnk->imjn", te1, te2)  # the DLPNO ovov form
    print(f"einsum('imk,jnk->imjn'): output {integrals.shape}, "
          f"nnz={integrals.nnz}")
    expected = np.einsum("imk,jnk->imjn", te1.to_dense(), te2.to_dense())
    assert np.allclose(integrals.to_dense(), expected)
    print("verified against numpy.einsum ✓\n")

    # --- a 3-tensor chain where ordering matters ---------------------
    a = random_coo((2000, 600), nnz=24_000, seed=5)
    b = random_coo((600, 500), nnz=15_000, seed=6)
    c = random_coo((500, 40), nnz=1_000, seed=7)
    path = contraction_path("ij,jk,kl->il", [a, b, c])
    print(f"network ij,jk,kl->il — planned path: {path}")
    print("(the model contracts the small pair first: a x b would "
          "materialize a wide intermediate)")

    for optimize in ("greedy", "left"):
        t0 = time.perf_counter()
        out = einsum("ij,jk,kl->il", a, b, c, optimize=optimize)
        dt = time.perf_counter() - t0
        print(f"  optimize={optimize:<7}: {dt:.3f}s, out nnz={out.nnz}")

    # --- plan once, run many -----------------------------------------
    expr = contract_expression(
        "imk,jnk->imjn", (8, 20, 16), (8, 20, 16), nnz=[300, 300]
    )
    print(f"\ncompiled expression: {expr!r}")
    t0 = time.perf_counter()
    for trial in range(20):
        x = random_coo((8, 20, 16), nnz=300, seed=100 + trial)
        y = random_coo((8, 20, 16), nnz=300, seed=200 + trial)
        expr(x, y)
    print(f"20 planned executions: {time.perf_counter() - t0:.3f}s "
          "(index classification and the accumulator/tile decision are "
          "reused across calls)")


if __name__ == "__main__":
    main()
