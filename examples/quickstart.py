"""Quickstart: contract two sparse tensors with FaSTCC.

Run:  python examples/quickstart.py

Covers the core public API in ~60 lines: building COO tensors, calling
``contract``, inspecting the plan the model chose, and verifying the
result against a dense reference.
"""

import numpy as np

from repro import COOTensor, Counters, contract
from repro.data import random_coo
from repro.tensors.dense import dense_contract


def main():
    # 1. Build sparse tensors.  COOTensor takes (coords, values, shape);
    #    here we use the seeded random generator for convenience.
    a = random_coo((200, 150, 80), nnz=6_000, seed=1)
    b = random_coo((80, 150, 120), nnz=5_000, seed=2)
    print(f"A: shape={a.shape}, nnz={a.nnz}, density={a.density:.2%}")
    print(f"B: shape={b.shape}, nnz={b.nnz}, density={b.density:.2%}")

    # 2. Contract: sum over A's modes (2, 1) paired with B's modes (0, 1).
    #    The output's modes are A's remaining modes then B's: (200, 120).
    pairs = [(2, 0), (1, 1)]
    out, stats = contract(a, b, pairs, return_stats=True, counters=Counters())
    print(f"\nO = contract(A, B, {pairs})")
    print(f"O: shape={out.shape}, nnz={out.nnz}, density={out.density:.2%}")

    # 3. Inspect what FaSTCC's model decided (paper Algorithm 7).
    plan = stats.plan
    print(f"\nplan: {plan.accumulator} accumulator, "
          f"tile {plan.tile_l}x{plan.tile_r} "
          f"({plan.num_tiles[0]}x{plan.num_tiles[1]} tile grid)")
    print(f"estimated output density: {plan.est_output_density:.3%} "
          f"(actual {out.density:.3%})")
    print("phase seconds:",
          {k: round(v, 4) for k, v in stats.phase_seconds.items()})
    print("data movement:", stats.counters.snapshot())

    # 4. Verify against the dense einsum reference (small enough here).
    expected = dense_contract(a, b, pairs)
    assert np.allclose(out.to_dense(), expected)
    print("\nverified against numpy.einsum ✓")

    # 5. The same call can run any baseline from the paper's evaluation.
    for method in ("sparta", "taco"):
        alt = contract(a, b, pairs, method=method)
        assert alt.allclose(out)
    print("sparta and taco baselines agree ✓")


if __name__ == "__main__":
    main()
