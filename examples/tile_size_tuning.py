"""Tile-size tuning and the dense/sparse accumulator decision.

Run:  python examples/tile_size_tuning.py

Reproduces the paper's Section 5 workflow on one contraction:
sweep tile sizes to expose the U-shaped time curve (Figure 4), then
show where Algorithm 7's model-chosen tile lands, and compare the dense
and sparse accumulators at the chosen tile (Table 3's Time_D/Time_S).
"""

import time

from repro import contract
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.data import random_coo
from repro.machine.specs import DESKTOP


def timed_contract(a, b, pairs, **kw):
    t0 = time.perf_counter()
    contract(a, b, pairs, canonical=False, **kw)
    return time.perf_counter() - t0


def main():
    # A 3-D self-contraction with a mid-density output: small tiles pay
    # re-read costs, huge tiles lose cache residence and parallelism.
    a = random_coo((3000, 40, 30), nnz=40_000, seed=3)
    pairs = [(1, 1), (2, 2)]
    spec = ContractionSpec(a.shape, a.shape, pairs)
    print(f"contraction: L=R={spec.L}, C={spec.C}, nnz={a.nnz}\n")

    print(f"{'tile':>6}  {'seconds':>9}")
    results = {}
    tile = 8
    while tile <= 4096:
        dt = min(timed_contract(a, a, pairs, tile_size=tile) for _ in range(2))
        results[tile] = dt
        print(f"{tile:>6}  {dt:>9.4f}")
        tile *= 2

    plan = choose_plan(spec, a.nnz, a.nnz, DESKTOP)
    best_tile = min(results, key=results.get)
    print(f"\nmodel choice: {plan.accumulator} tile "
          f"{plan.tile_l} (est. output density "
          f"{plan.est_output_density:.2%})")
    print(f"sweep best:  tile {best_tile} ({results[best_tile]:.4f}s)")

    # Dense vs sparse at the model's tile (Table 3's comparison).
    dense_s = min(timed_contract(a, a, pairs, accumulator="dense")
                  for _ in range(2))
    sparse_s = min(timed_contract(a, a, pairs, accumulator="sparse")
                   for _ in range(2))
    print(f"\naccumulator comparison at the model tile: "
          f"dense {dense_s:.4f}s, sparse {sparse_s:.4f}s")
    chosen = "dense" if plan.accumulator == "dense" else "sparse"
    print(f"the model chose {chosen!r} — "
          f"{'correct' if (dense_s <= sparse_s) == (chosen == 'dense') else 'suboptimal here'} "
          "on this workload.")


if __name__ == "__main__":
    main()
