"""DLPNO quantum-chemistry contractions (the paper's Section 6.1 use
case).

Run:  python examples/quantum_chemistry.py

The DLPNO-CCSD bottleneck is assembling four-centered integrals from
three-centered ones — contractions of pairs of 3-D block-sparse tensors
over the auxiliary fitting index:

    Int_ovov(i, mu, j, nu) = TE_ov(i, mu, k) x TE_ov(j, nu, k)

This example generates domain-local TE tensors for a scaled caffeine
molecule, runs all three paper contractions (ovov / vvoo / vvov) with
FaSTCC and with the Sparta baseline, and reports the speedups — a
miniature Figure 2c.
"""

import time

from repro import contract
from repro.data.quantum import MOLECULES, generate_dlpno_operands


def run_contraction(molecule: str, name: str):
    left, right, pairs = generate_dlpno_operands(molecule, name, seed=11)
    t0 = time.perf_counter()
    out, stats = contract(left, right, pairs, return_stats=True)
    fastcc_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sparta_out = contract(left, right, pairs, method="sparta")
    sparta_s = time.perf_counter() - t0
    assert out.allclose(sparta_out)

    return {
        "name": name,
        "left_nnz": left.nnz,
        "right_nnz": right.nnz,
        "out_nnz": out.nnz,
        "accumulator": stats.plan.accumulator,
        "fastcc_s": fastcc_s,
        "sparta_s": sparta_s,
    }


def main():
    molecule = "caffeine"
    spec = MOLECULES[molecule]
    print(f"molecule: {molecule}  "
          f"(occ={spec.n_occ}, virt={spec.n_virt}, aux={spec.n_aux})")
    print(f"TE densities: ov={spec.density_ov:.2%}, "
          f"vv={spec.density_vv:.2%}, oo={spec.density_oo:.2%}\n")

    print(f"{'contraction':<12}{'nnz_L':>9}{'nnz_R':>9}{'out nnz':>10}"
          f"{'acc':>8}{'FaSTCC(s)':>11}{'Sparta(s)':>11}{'speedup':>9}")
    for name in ("ovov", "vvoo", "vvov"):
        r = run_contraction(molecule, name)
        print(f"{r['name']:<12}{r['left_nnz']:>9}{r['right_nnz']:>9}"
              f"{r['out_nnz']:>10}{r['accumulator']:>8}"
              f"{r['fastcc_s']:>11.4f}{r['sparta_s']:>11.4f}"
              f"{r['sparta_s'] / r['fastcc_s']:>9.2f}x")

    print("\nthe vv-operand contractions benefit most: their dense-ish "
          "operands give long slices per auxiliary index, the CO "
          "scheme's best case (paper Figure 2c/2d).")


if __name__ == "__main__":
    main()
