"""Parallel execution and platform what-if analysis.

Run:  python examples/parallel_scaling.py

FaSTCC's tile-pair tasks are embarrassingly parallel (paper Section
4.2).  This example runs the kernel with the thread-backed task queue,
then uses the scheduling simulator to answer a what-if: how would this
contraction scale on the paper's 8-core desktop and 64-core server?
The simulator replays the measured per-tile costs under dynamic
scheduling — the same methodology the benchmark suite uses for the
paper's Figures 2 and 3.
"""

from repro import Counters, contract
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.core.tiled_co import tiled_co_contract
from repro.data import random_coo
from repro.machine.specs import DESKTOP, SERVER
from repro.parallel.scheduler_sim import scaling_curve


def main():
    a = random_coo((4000, 60), nnz=50_000, seed=9)
    b = random_coo((60, 4000), nnz=50_000, seed=10)
    pairs = [(1, 0)]

    # Run through the public API with worker threads.
    out, stats = contract(a, b, pairs, n_workers=2, return_stats=True)
    print(f"output nnz: {out.nnz}  "
          f"(tile grid {stats.plan.num_tiles[0]}x{stats.plan.num_tiles[1]}, "
          f"{stats.num_tasks} tasks)")

    # Re-run single-threaded on the linearized operands to collect exact
    # per-task costs for the simulator.
    spec = ContractionSpec(a.shape, b.shape, pairs)
    left = spec.linearize_left(a).sum_duplicates()
    right = spec.linearize_right(b).sum_duplicates()
    plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP)
    _, _, _, kstats = tiled_co_contract(left, right, plan, counters=Counters())

    print(f"\nmeasured kernel: {kstats.kernel_seconds:.4f}s over "
          f"{kstats.num_tasks} tile-pair tasks "
          f"(min {kstats.task_costs.min() * 1e3:.2f}ms, "
          f"max {kstats.task_costs.max() * 1e3:.2f}ms)")

    curve = scaling_curve(kstats.task_costs, [1, 2, 4, 8, 16, 32, 64])
    base = curve[1]
    print("\nsimulated dynamic scheduling (paper Figure 3 methodology):")
    print(f"{'threads':>8}  {'time (s)':>10}  {'speedup':>8}  {'platform':>12}")
    for k, t in curve.items():
        platform = {DESKTOP.n_cores: "desktop", SERVER.n_cores: "server"}.get(k, "")
        print(f"{k:>8}  {t:>10.4f}  {base / t:>8.2f}  {platform:>12}")

    print("\nscaling flattens at min(task count, critical-path bound): "
          "to scale further, shrink the tile (more tasks) at the price "
          "of the Section 5.3 volume terms.")


if __name__ == "__main__":
    main()
