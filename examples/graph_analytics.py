"""Graph analytics through semiring contractions.

Run:  python examples/graph_analytics.py

Sparse contraction is matrix multiplication in disguise, and swapping
the (+, *) semiring for (min, +) or (or, and) turns the same FaSTCC
machinery into a graph engine (the GraphBLAS view).  This example
builds a sparse random road network and computes:

* bounded-hop shortest path distances, by repeated (min, +) squaring;
* k-hop reachability, via (or, and);
* triangle counts, via plain (+, *) and a trace.
"""

import numpy as np

from repro.core.semiring import MIN_PLUS, OR_AND, semiring_contract
from repro import contract
from repro.tensors.coo import COOTensor


def random_road_network(n: int, avg_degree: float, seed: int) -> COOTensor:
    """A sparse directed graph with positive edge weights."""
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst  # no self loops
    weights = rng.uniform(1.0, 10.0, size=m)
    g = COOTensor(np.vstack([src[keep], dst[keep]]), weights[keep], (n, n))
    # Parallel edges: keep the lighter one ((min,+) duplicate semantics).
    return g


def min_plus_closure(g: COOTensor, hops: int) -> COOTensor:
    """Shortest distances using at most ``hops`` edges (2^k squaring)."""
    dist = g
    steps = 1
    while steps < hops:
        squared = semiring_contract(dist, dist, [(1, 0)], semiring=MIN_PLUS)
        # dist_{2k}(i, j) = min(dist_k(i, j), min_m dist_k(i,m)+dist_k(m,j))
        merged = COOTensor(
            np.hstack([dist.coords, squared.coords]),
            np.concatenate([dist.values, squared.values]),
            dist.shape,
        )
        # Combine duplicates with min (not sum): group manually.
        order = np.argsort(merged.linearized(), kind="stable")
        lin = merged.linearized()[order]
        vals = merged.values[order]
        boundaries = np.flatnonzero(
            np.concatenate([[True], lin[1:] != lin[:-1]])
        )
        mins = np.minimum.reduceat(vals, boundaries)
        from repro.tensors.linearize import ModeLinearizer

        coords = ModeLinearizer(dist.shape).decode(lin[boundaries])
        dist = COOTensor(coords, mins, dist.shape)
        steps *= 2
    return dist


def main():
    n = 300
    g = random_road_network(n, avg_degree=4.0, seed=11)
    print(f"road network: {n} nodes, {g.nnz} weighted edges\n")

    # --- shortest paths (<= 4 hops) ----------------------------------
    d4 = min_plus_closure(g, hops=4)
    finite_pairs = d4.nnz
    sample = [(int(d4.coords[0, e]), int(d4.coords[1, e]), float(d4.values[e]))
              for e in range(0, min(3, d4.nnz))]
    print(f"(min,+)^4: {finite_pairs} node pairs within 4 hops")
    for i, j, w in sample:
        print(f"  dist(v{i} -> v{j}) = {w:.2f}")

    # --- reachability --------------------------------------------------
    reach2 = semiring_contract(g, g, [(1, 0)], semiring=OR_AND)
    print(f"\n(or,and): {reach2.nnz} node pairs connected by exactly-2-hop "
          "walks")

    # --- triangles ------------------------------------------------------
    # count = trace(A^3) / (3 for directed cycles); use unweighted A.
    a = COOTensor(g.coords.copy(), np.ones(g.nnz), g.shape).sum_duplicates()
    a2 = contract(a, a, [(1, 0)])
    a3 = contract(a2, a, [(1, 0)])
    diag = a3.coords[0] == a3.coords[1]
    triangles = a3.values[diag].sum() / 3
    print(f"(+,*):     {triangles:.0f} directed triangles")

    print("\nsame kernels, different semirings — the contraction engine "
          "doubles as a graph engine.")


if __name__ == "__main__":
    main()
