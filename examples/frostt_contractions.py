"""FROSTT-style tensor self-contractions (the paper's Section 6.1
benchmark form).

Run:  python examples/frostt_contractions.py

The FROSTT evaluation contracts each tensor *with itself* over a subset
of its modes: e.g. "Chicago 123" contracts the 4-mode chicago crime
tensor over modes 1, 2 and 3, leaving a 2-mode output.  This example
generates a scaled chicago-shaped tensor, runs the three paper
contractions, and shows how the output arity and density vary with the
contracted mode set — and how the model's accumulator choice follows.

It also demonstrates reading/writing real FROSTT ``.tns`` files, so the
same code runs on actual FROSTT downloads when available.
"""

import io
import time

from repro import Counters, self_contract
from repro.data.frostt import FROSTT_SPECS, generate_frostt
from repro.tensors.io import read_tns, write_tns


def main():
    spec = FROSTT_SPECS["chicago"]
    print(f"chicago (paper): shape={spec.shape}, nnz={spec.nnz}, "
          f"density={spec.density:.2%}")
    tensor = generate_frostt("chicago", scale=0.05, seed=7)
    print(f"chicago (scaled stand-in): shape={tensor.shape}, "
          f"nnz={tensor.nnz}, density={tensor.density:.2%}\n")

    # The paper's three chicago contractions.
    for label, modes in (("chicago 0", [0]),
                         ("chicago 01", [0, 1]),
                         ("chicago 123", [1, 2, 3])):
        counters = Counters()
        t0 = time.perf_counter()
        out, stats = self_contract(
            tensor, modes, return_stats=True, counters=counters
        )
        dt = time.perf_counter() - t0
        plan = stats.plan
        print(f"{label:<12} contracted modes {modes}: "
              f"output {out.ndim}-mode {out.shape}")
        print(f"{'':<12} out nnz={out.nnz}, density={out.density:.3%}, "
              f"accumulator={plan.accumulator}, tile={plan.tile_l}, "
              f"time={dt:.3f}s")
        print(f"{'':<12} est. output density {plan.est_output_density:.3%} "
              f"(model input: p_L={plan.p_l:.3%})\n")

    # Round-trip through the FROSTT text format.
    buf = io.StringIO()
    small = generate_frostt("uber", scale=0.05, seed=1)
    write_tns(small, buf)
    reread = read_tns(io.StringIO(buf.getvalue()), shape=small.shape)
    assert reread.allclose(small)
    print(f"wrote and re-read {small.nnz} nonzeros in FROSTT .tns format ✓")
    print("(point read_tns at a real FROSTT download to run the same "
          "contractions on the original data.)")


if __name__ == "__main__":
    main()
