"""repro — a full reproduction of FaSTCC (SC '25).

FaSTCC: Fast Sparse Tensor Contractions on CPUs.  This package
implements the paper's 2-D tiled contraction-index-outer contraction
scheme with model-selected dense/sparse tile accumulators, every
substrate it depends on (COO/CSF formats, open-addressing and chaining
hash tables, a dynamic task queue, memory-pooled COO output), the
TACO-style and Sparta-style baselines it is evaluated against, and the
workload generators and machine models behind the paper's evaluation.

Quick start::

    from repro import COOTensor, contract
    from repro.data import random_coo

    a = random_coo((100, 80, 60), nnz=5_000, seed=1)
    b = random_coo((60, 80, 50), nnz=4_000, seed=2)
    out = contract(a, b, pairs=[(2, 0), (1, 1)])   # sum over two modes

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core.contraction import contract, self_contract
from repro.core.einsum import contraction_path, einsum
from repro.core.expression import contract_expression
from repro.core.model import choose_plan, estimate_output_density
from repro.core.plan import ContractionSpec, LinearizedOperand, Plan
from repro.errors import (
    CapacityError,
    FormatError,
    PlanError,
    ReproError,
    ShapeError,
    WorkspaceLimitError,
)
from repro.machine.specs import DESKTOP, SERVER, MachineSpec
from repro.network import (
    NetworkExecutor,
    NetworkPlan,
    OperandMeta,
    TensorNetwork,
    contract_network,
    plan_network,
)
from repro.runtime import BatchExecutor, ContractionRuntime, PlanCache
from repro.serve import ContractionService, Request, Response, ServiceConfig
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor
from repro.analysis.counters import Counters

__version__ = "1.2.0"

__all__ = [
    "contract",
    "self_contract",
    "einsum",
    "contraction_path",
    "contract_expression",
    "choose_plan",
    "estimate_output_density",
    "ContractionSpec",
    "LinearizedOperand",
    "Plan",
    "COOTensor",
    "CSFTensor",
    "Counters",
    "ContractionRuntime",
    "BatchExecutor",
    "PlanCache",
    "ContractionService",
    "ServiceConfig",
    "Request",
    "Response",
    "NetworkExecutor",
    "NetworkPlan",
    "OperandMeta",
    "TensorNetwork",
    "contract_network",
    "plan_network",
    "MachineSpec",
    "DESKTOP",
    "SERVER",
    "ReproError",
    "ShapeError",
    "FormatError",
    "PlanError",
    "CapacityError",
    "WorkspaceLimitError",
    "__version__",
]
