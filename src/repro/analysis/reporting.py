"""Plain-text table and series rendering for the benchmark harnesses.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, via these helpers, so outputs are uniform and diffable
(EXPERIMENTS.md is assembled from them).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "format_value", "speedup"]


def format_value(v, *, width: int = 0) -> str:
    """Human-oriented numeric formatting: engineering-style floats."""
    if isinstance(v, float):
        if v != v:  # NaN
            s = "nan"
        elif v in (float("inf"), float("-inf")):
            s = "DNF" if v > 0 else "-inf"
        elif v == 0:
            s = "0"
        elif abs(v) >= 1e5 or abs(v) < 1e-3:
            s = f"{v:.3g}"
        else:
            s = f"{v:.4g}"
    else:
        s = str(v)
    return s.rjust(width) if width else s


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence, ys: Sequence, *, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render one figure series as aligned (x, y) pairs."""
    lines = [f"series: {name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {format_value(x):>12}  {format_value(y):>12}")
    return "\n".join(lines)


def speedup(baseline_seconds: float, ours_seconds: float) -> float:
    """Baseline time over ours: > 1 means we are faster."""
    if ours_seconds <= 0:
        return float("inf")
    return baseline_seconds / ours_seconds
