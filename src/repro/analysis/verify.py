"""Cross-kernel verification: do all contraction methods agree?

The artifact-style correctness check: run several kernels on the same
contraction and compare outputs as mathematical tensors (order- and
duplicate-insensitive, tolerance-based).  Used by the validation
benchmark to produce the agreement matrix over the whole registry, and
available to users validating the library on their own data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.contraction import contract
from repro.errors import ReproError
from repro.tensors.coo import COOTensor

__all__ = ["MethodResult", "VerificationReport", "cross_validate"]

#: Methods cheap enough to run on benchmark-scale inputs by default.
DEFAULT_METHODS = ("fastcc", "sparta", "sparta_improved", "co", "cm")


@dataclass
class MethodResult:
    """One method's run on the contraction."""

    method: str
    seconds: float = 0.0
    output_nnz: int = -1
    error: str | None = None
    agrees: bool | None = None  # vs the reference method

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class VerificationReport:
    """Agreement matrix for one contraction."""

    reference: str
    results: list[MethodResult] = field(default_factory=list)

    @property
    def all_agree(self) -> bool:
        return all(r.ok and r.agrees is not False for r in self.results)

    def summary(self) -> str:
        parts = []
        for r in self.results:
            if not r.ok:
                parts.append(f"{r.method}: ERROR({r.error})")
            elif r.agrees is False:
                parts.append(f"{r.method}: DISAGREES")
            else:
                parts.append(f"{r.method}: ok ({r.seconds:.3f}s)")
        return "; ".join(parts)


def cross_validate(
    left: COOTensor,
    right: COOTensor,
    pairs: Sequence[tuple[int, int]],
    *,
    methods: Sequence[str] = DEFAULT_METHODS,
    reference: str = "fastcc",
    rtol: float = 1e-9,
    atol: float = 1e-12,
    **contract_kwargs,
) -> VerificationReport:
    """Run every method and compare against the reference's output.

    Methods that raise are recorded (``error`` set) rather than
    propagated — a DNF guard tripping on one kernel should not abort
    the matrix.
    """
    report = VerificationReport(reference=reference)
    ref_out = contract(left, right, pairs, method=reference, **contract_kwargs)

    ref_entry = MethodResult(method=reference, output_nnz=ref_out.nnz, agrees=True)
    t0 = time.perf_counter()
    contract(left, right, pairs, method=reference, **contract_kwargs)
    ref_entry.seconds = time.perf_counter() - t0
    report.results.append(ref_entry)

    for method in methods:
        if method == reference:
            continue
        entry = MethodResult(method=method)
        t0 = time.perf_counter()
        try:
            out = contract(left, right, pairs, method=method, **contract_kwargs)
        except ReproError as exc:
            entry.error = type(exc).__name__
            report.results.append(entry)
            continue
        entry.seconds = time.perf_counter() - t0
        entry.output_nnz = out.nnz
        entry.agrees = ref_out.allclose(out, rtol=rtol, atol=atol)
        report.results.append(entry)
    return report
