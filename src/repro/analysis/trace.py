"""Access-trace recording and cache replay.

Section 5.3's argument for cache-sized tiles is about the *pattern* of
accumulator updates: outer products make them effectively random within
the workspace, so the workspace must fit in cache.  This module lets
the real kernels record their actual update positions (optionally
subsampled and length-capped) and replays the trace through the
set-associative cache model — evidence from the kernel itself rather
than from a synthetic random trace.

Accumulators accept a recorder via their ``trace`` parameter; the
tiling ablation (`bench_ablation_tiling.py`) wires this end to end.
"""

from __future__ import annotations

import numpy as np

from repro.machine.cache_sim import CacheSim
from repro.util.arrays import INDEX_DTYPE

__all__ = ["TraceRecorder", "replay_miss_rate"]


class TraceRecorder:
    """Capture a bounded, optionally subsampled stream of update
    positions (workspace cell indices)."""

    __slots__ = ("max_len", "sample_every", "_chunks", "_count", "_seen")

    def __init__(self, *, max_len: int = 1_000_000, sample_every: int = 1):
        if max_len < 1 or sample_every < 1:
            raise ValueError("max_len and sample_every must be >= 1")
        self.max_len = int(max_len)
        self.sample_every = int(sample_every)
        self._chunks: list[np.ndarray] = []
        self._count = 0  # recorded entries
        self._seen = 0  # total positions offered (pre-sampling)

    @property
    def full(self) -> bool:
        return self._count >= self.max_len

    @property
    def recorded(self) -> int:
        return self._count

    @property
    def seen(self) -> int:
        return self._seen

    def record(self, positions: np.ndarray) -> None:
        """Append a batch of update positions (cheap when full)."""
        n = int(np.asarray(positions).shape[0])
        offset = self._seen
        self._seen += n
        if self.full or n == 0:
            return
        if self.sample_every > 1:
            # Deterministic striding aligned to the global stream.
            first = (-offset) % self.sample_every
            positions = np.asarray(positions)[first :: self.sample_every]
        take = min(self.max_len - self._count, positions.shape[0])
        if take <= 0:
            return
        chunk = np.asarray(positions[:take], dtype=INDEX_DTYPE).copy()
        self._chunks.append(chunk)
        self._count += take

    def positions(self) -> np.ndarray:
        """The recorded positions, in stream order."""
        if not self._chunks:
            return np.empty(0, dtype=INDEX_DTYPE)
        return np.concatenate(self._chunks)

    def reset(self) -> None:
        self._chunks.clear()
        self._count = 0
        self._seen = 0


def replay_miss_rate(
    positions: np.ndarray,
    *,
    cache_bytes: int,
    word_bytes: int = 8,
    line_bytes: int = 64,
    ways: int = 8,
    max_accesses: int = 500_000,
) -> float:
    """Miss rate of an update-position trace through the cache model.

    Positions are workspace cell indices; the replay maps them to byte
    addresses at ``word_bytes`` stride.  Long traces are truncated to
    ``max_accesses`` (the simulator is per-access Python).
    """
    positions = np.asarray(positions, dtype=INDEX_DTYPE)[:max_accesses]
    if positions.size == 0:
        return 0.0
    sim = CacheSim(cache_bytes, line_bytes=line_bytes, ways=ways)
    sim.access(positions * word_bytes)
    return sim.miss_rate
