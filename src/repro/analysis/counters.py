"""Data-access counters.

Every kernel in the library can be handed a :class:`Counters` instance,
which tallies exactly the quantities the paper's Section 3.4 analyzes:

* ``hash_queries`` — number of hash-table lookups against the *input*
  tensor representations (one per key probed, regardless of payload).
* ``data_volume`` — number of nonzero input elements retrieved across the
  whole execution (the "payload" of successful queries).
* ``accum_updates`` — multiply-accumulate operations against the output
  workspace (identical across loop orders; a useful cross-check).
* ``workspace_cells`` — peak size, in cells, of the output accumulator.
* ``probes`` / ``resizes`` — open-addressing internals, for the hashing
  ablation.
* ``output_nnz`` — nonzeros appended to the output COO list.
* ``plan_cache_hits`` / ``plan_cache_misses`` — adaptive-runtime plan
  reuse (``repro.runtime``): a hit means Algorithm 7 was skipped.
* ``table_reuse_hits`` / ``table_builds`` — tiled-table reuse across
  batched contractions sharing an operand vs. fresh constructions.
* ``stream_incremental`` / ``stream_full`` — streaming deltas serviced
  by tile patching vs. full recompute (``repro.streaming``).

Counting is cheap (scalar adds on batch boundaries) and does not perturb
the vectorized kernels.

Thread-safety: *kernel-side* counter updates are plain ``+=`` on Python
ints.  Under a multi-worker run concurrent updates can interleave, so
counts may be slightly low; every instrumented benchmark in this
repository therefore measures with ``n_workers=1`` (parallel results
come from the scheduling simulator over per-task costs, which are
exact either way).  *Aggregation*, by contrast, is exact: ``merge``,
``snapshot`` and ``reset`` serialize on a module-level lock, because
the serving layer merges per-call tallies into one shared aggregate
from many worker threads — a torn read-modify-write there would lose
whole batches, not single events.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields

__all__ = ["Counters", "ensure_counters", "merge_snapshots"]

#: Serializes cross-thread aggregation (merge/snapshot/reset).  One
#: module-level lock keeps the dataclass field list clean and is
#: uncontended in practice: aggregation happens per call, not per event.
_AGGREGATE_LOCK = threading.Lock()


@dataclass
class Counters:
    """Mutable tally of data-access events (see module docstring)."""

    hash_queries: int = 0
    data_volume: int = 0
    accum_updates: int = 0
    workspace_cells: int = 0
    probes: int = 0
    resizes: int = 0
    output_nnz: int = 0
    tasks: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    table_reuse_hits: int = 0
    table_builds: int = 0
    stream_incremental: int = 0
    stream_full: int = 0

    def note_workspace(self, cells: int) -> None:
        """Record a workspace allocation; keeps the peak."""
        if cells > self.workspace_cells:
            self.workspace_cells = cells

    def merge(self, other: "Counters") -> "Counters":
        """Accumulate another tally into this one (peak for workspace).

        Safe to call concurrently from multiple threads targeting the
        same aggregate (the serve worker pool's shape).
        """
        with _AGGREGATE_LOCK:
            for f in fields(self):
                if f.name == "workspace_cells":
                    self.note_workspace(other.workspace_cells)
                else:
                    setattr(
                        self, f.name,
                        getattr(self, f.name) + getattr(other, f.name),
                    )
        return self

    def snapshot(self) -> dict[str, int]:
        with _AGGREGATE_LOCK:
            return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        with _AGGREGATE_LOCK:
            for f in fields(self):
                setattr(self, f.name, 0)


def merge_snapshots(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
    """Merge two :meth:`Counters.snapshot` dicts (pure, associative).

    This is the cross-process face of :meth:`Counters.merge`: shard
    worker processes export snapshots over IPC and the router folds
    them into one aggregate, so the merge must work on plain dicts and
    must be associative (the router merges in whatever order shards
    reply).  Every field sums except ``workspace_cells``, which is a
    peak — both sum and max are associative, so any fold order yields
    the same aggregate.
    """
    out = dict(a)
    for name, value in b.items():
        if name == "workspace_cells":
            out[name] = max(out.get(name, 0), value)
        else:
            out[name] = out.get(name, 0) + value
    return out


def ensure_counters(counters: Counters | None) -> Counters:
    """Return ``counters`` or a fresh throwaway tally.

    Kernels call this so that uninstrumented runs pay only the cost of a
    small object allocation; counter updates themselves are scalar adds
    at batch granularity and are negligible either way.
    """
    return counters if counters is not None else Counters()
