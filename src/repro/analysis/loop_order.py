"""Loop-order cost predictions (paper Table 1) and measurement glue.

Thin wrappers around :mod:`repro.machine.cost_model` that pair each
scheme's closed-form prediction with the counters measured by actually
running the scheme, for the Table 1 reproduction benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.counters import Counters
from repro.core.plan import LinearizedOperand
from repro.machine.cost_model import AccessCostModel, CostEstimate, ProblemShape

__all__ = ["SchemeCosts", "predicted_costs", "predicted_tiled_co_costs", "measure_scheme"]


@dataclass(frozen=True)
class SchemeCosts:
    """A predicted-vs-measured pair for one scheme."""

    scheme: str
    predicted: CostEstimate
    measured: Counters

    @property
    def query_ratio(self) -> float:
        """measured / predicted queries (<= ~1 when the prediction is an
        upper bound over extents rather than nonzero slices)."""
        return self.measured.hash_queries / max(self.predicted.queries, 1.0)

    @property
    def volume_ratio(self) -> float:
        return self.measured.data_volume / max(self.predicted.data_volume, 1.0)


def shape_of(left: LinearizedOperand, right: LinearizedOperand) -> ProblemShape:
    """The Table 1 problem parameters of an operand pair."""
    return ProblemShape(
        L=left.ext_extent,
        R=right.ext_extent,
        C=left.con_extent,
        nnz_L=left.nnz,
        nnz_R=right.nnz,
    )


def predicted_costs(
    left: LinearizedOperand, right: LinearizedOperand
) -> dict[str, CostEstimate]:
    """Table 1 closed forms for all three untiled schemes."""
    model = AccessCostModel(shape_of(left, right))
    return {"ci": model.ci(), "cm": model.cm(), "co": model.co()}


def predicted_tiled_co_costs(
    left: LinearizedOperand, right: LinearizedOperand, tile_l: int, tile_r: int
) -> CostEstimate:
    """Section 5.3 closed form for the tiled CO scheme."""
    return AccessCostModel(shape_of(left, right)).tiled_co(tile_l, tile_r)


def measure_scheme(
    scheme: str, left: LinearizedOperand, right: LinearizedOperand
) -> SchemeCosts:
    """Run one untiled scheme instrumented and pair it with its prediction."""
    from repro.baselines.schemes import contract_untiled

    counters = Counters()
    contract_untiled(scheme, left, right, counters=counters)
    return SchemeCosts(
        scheme=scheme,
        predicted=predicted_costs(left, right)[scheme],
        measured=counters,
    )
