"""Profiling helpers — "no optimization without measuring".

Thin, dependency-free wrappers around :mod:`cProfile` tailored to the
library's kernels: profile a callable, get the top cumulative-time
entries back as data (not printed tables), and profile a registry
benchmark case in one call.  Used by the development workflow and
exposed so users can find *their* bottleneck before filing performance
issues.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Callable

__all__ = ["ProfileEntry", "profile_callable", "profile_case"]


@dataclass(frozen=True)
class ProfileEntry:
    """One row of a profile: a function and its costs."""

    function: str  # "module:lineno(name)"
    calls: int
    total_time: float  # time inside the function itself
    cumulative_time: float  # including callees

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.cumulative_time:8.4f}s cum  {self.total_time:8.4f}s own  "
            f"{self.calls:>8} calls  {self.function}"
        )


def profile_callable(
    fn: Callable[[], object], *, top: int = 15, sort: str = "cumulative"
) -> list[ProfileEntry]:
    """Run ``fn`` under cProfile; return the top entries as data."""
    if sort not in ("cumulative", "tottime"):
        raise ValueError(f"sort must be cumulative|tottime, got {sort!r}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    entries: list[ProfileEntry] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, lineno, name = func
        entries.append(
            ProfileEntry(
                function=f"{filename}:{lineno}({name})",
                calls=int(nc),
                total_time=float(tt),
                cumulative_time=float(ct),
            )
        )
    key = (lambda e: e.cumulative_time) if sort == "cumulative" else (
        lambda e: e.total_time
    )
    entries.sort(key=key, reverse=True)
    return entries[:top]


def profile_case(
    case_name: str, *, method: str = "fastcc", top: int = 15
) -> list[ProfileEntry]:
    """Profile one registry benchmark case end to end."""
    from repro.core.contraction import contract
    from repro.data.registry import get_case

    left, right, pairs = get_case(case_name).load()

    def run():
        contract(left, right, pairs, method=method)

    return profile_callable(run, top=top)
