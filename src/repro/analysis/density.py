"""Output-density estimation and its validation (paper Section 5.1).

``estimate_output_density`` re-exports the model's closed form;
``exact_output_density`` computes the true output density by running a
structure-only contraction (values replaced by 1s and only the nonzero
*pattern* kept), which is what "exact computation of delta would require
as many operations as the contraction itself" means in practice.  The
model-validation tests compare the two across the random-input regime
the model assumes and the clustered regime it does not.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import estimate_output_density
from repro.core.plan import LinearizedOperand
from repro.util.groups import match_sorted_keys, grouped_cartesian
from repro.hashing.slice_table import SliceTable

__all__ = ["estimate_output_density", "exact_output_density", "estimate_for_operands"]


def estimate_for_operands(
    left: LinearizedOperand, right: LinearizedOperand
) -> float:
    """Section 5.1 estimate from an operand pair's shape and nnz."""
    return estimate_output_density(
        left.ext_extent, right.ext_extent, left.con_extent, left.nnz, right.nnz
    )


def exact_output_density(
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    max_pairs: int = 1 << 26,
) -> float:
    """True density of the output's nonzero *structure*.

    Computes ``|{(l, r) : exists c with L[l,c] != 0 and R[c,r] != 0}|``
    divided by ``L * R``.  Structure only — numeric cancellation (which
    the paper's COO output also keeps) is not treated as zero.
    """
    hl = SliceTable(left.con, left.ext, left.values)
    hr = SliceTable(right.con, right.ext, right.values)
    common, ia, ib = match_sorted_keys(hl.keys(), hr.keys())
    if common.shape[0] == 0:
        return 0.0
    starts_l, counts_l = hl.spans_for_all_keys()
    starts_r, counts_r = hr.spans_for_all_keys()
    idx_l, idx_r = grouped_cartesian(
        starts_l[ia], counts_l[ia], starts_r[ib], counts_r[ib], max_pairs=max_pairs
    )
    l_payload, _ = hl.payload
    r_payload, _ = hr.payload
    keys = l_payload[idx_l] * np.int64(right.ext_extent) + r_payload[idx_r]
    distinct = np.unique(keys).shape[0]
    return distinct / (left.ext_extent * right.ext_extent)
