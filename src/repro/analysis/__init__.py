"""Instrumentation and analysis: counters, loop-order cost formulas,
output-density estimation checks, and report rendering."""

from repro.analysis.counters import Counters
from repro.analysis.loop_order import (
    SchemeCosts,
    predicted_costs,
    predicted_tiled_co_costs,
)
from repro.analysis.density import estimate_output_density, exact_output_density

__all__ = [
    "Counters",
    "SchemeCosts",
    "predicted_costs",
    "predicted_tiled_co_costs",
    "estimate_output_density",
    "exact_output_density",
]
