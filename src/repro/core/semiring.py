"""Semiring contractions: the (⊕, ⊗) generalization.

Sparse contraction over an arbitrary semiring replaces + with ⊕ and
* with ⊗ — the GraphBLAS view, where (min, +) gives shortest paths,
(max, *) gives most-reliable paths, and (or, and) gives reachability.
The paper's kernels assume (+, *); this module generalizes the CO
scheme to any semiring whose ⊕ is a NumPy ufunc, using the same
hash-join + grouped-cartesian machinery with a sort/``ufunc.reduceat``
accumulator (dense tiles hard-code +, so the semiring path uses the
reduction accumulator — correctness-first, still fully vectorized).

Example
-------
>>> from repro.core.semiring import MIN_PLUS, semiring_contract
>>> dists = semiring_contract(graph, graph, [(1, 0)], semiring=MIN_PLUS)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.core.plan import ContractionSpec
from repro.errors import ConfigError
from repro.hashing.slice_table import SliceTable
from repro.tensors.coo import COOTensor
from repro.util.groups import group_boundaries, grouped_cartesian

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_TIMES",
    "OR_AND",
    "semiring_contract",
]


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring over float64 values.

    ``add`` must be a NumPy ufunc (its ``reduceat`` performs the
    accumulation); ``multiply`` any vectorized binary callable;
    ``add_identity`` the ⊕-identity (used only for empty reductions,
    which the kernel never produces).
    """

    name: str
    add: np.ufunc
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    add_identity: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


PLUS_TIMES = Semiring("plus_times", np.add, np.multiply, 0.0)
MIN_PLUS = Semiring("min_plus", np.minimum, np.add, float("inf"))
MAX_PLUS = Semiring("max_plus", np.maximum, np.add, float("-inf"))
MAX_TIMES = Semiring("max_times", np.maximum, np.multiply, float("-inf"))
OR_AND = Semiring(
    "or_and",
    np.logical_or,
    lambda a, b: np.logical_and(a != 0.0, b != 0.0).astype(np.float64),
    0.0,
)

_NAMED = {s.name: s for s in (PLUS_TIMES, MIN_PLUS, MAX_PLUS, MAX_TIMES, OR_AND)}


def semiring_contract(
    left: COOTensor,
    right: COOTensor,
    pairs: Sequence[tuple[int, int]],
    *,
    semiring: Semiring | str = PLUS_TIMES,
    counters: Counters | None = None,
    canonical: bool = True,
) -> COOTensor:
    """Contract two sparse tensors over a semiring.

    Semantics: ``O[l, r] = ⊕_c  L[l, c] ⊗ R[c, r]`` over the *stored*
    nonzeros — absent entries contribute nothing (they are ⊕-identity),
    which for (min, +) is the usual "missing edge = infinite distance"
    convention.  Input duplicates are ⊕-combined first.

    Mode semantics match :func:`repro.core.contraction.contract`.
    """
    if isinstance(semiring, str):
        if semiring not in _NAMED:
            raise ConfigError(
                f"unknown semiring {semiring!r}; have {sorted(_NAMED)}"
            )
        semiring = _NAMED[semiring]
    counters = ensure_counters(counters)
    spec = ContractionSpec(left.shape, right.shape, pairs)
    left_op = _reduce_duplicates(spec.linearize_left(left), semiring, spec.C)
    right_op = _reduce_duplicates(spec.linearize_right(right), semiring, spec.C)

    hl = SliceTable(left_op.con, left_op.ext, left_op.values, counters=counters)
    hr = SliceTable(right_op.con, right_op.ext, right_op.values, counters=counters)
    keys_l = hl.keys()
    found, starts_r, counts_r = hr.query_batch(keys_l)
    counters.hash_queries += keys_l.shape[0]
    starts_l, counts_l = hl.spans_for_all_keys()
    sel = found
    ia, ib = grouped_cartesian(
        starts_l[sel], counts_l[sel], starts_r[sel], counts_r[sel]
    )
    l_payload, l_vals = hl.payload
    r_payload, r_vals = hr.payload
    counters.data_volume += int(counts_l[sel].sum() + counts_r[sel].sum())

    if ia.shape[0] == 0:
        return COOTensor.empty(spec.output_shape)
    out_keys = l_payload[ia] * np.int64(right_op.ext_extent) + r_payload[ib]
    contrib = semiring.multiply(l_vals[ia], r_vals[ib])
    counters.accum_updates += int(contrib.shape[0])

    order = np.argsort(out_keys, kind="stable")
    sorted_keys = out_keys[order]
    sorted_vals = np.asarray(contrib, dtype=np.float64)[order]
    uniq, offsets = group_boundaries(sorted_keys)
    sums = semiring.add.reduceat(sorted_vals, offsets[:-1])

    out = spec.delinearize_output(
        uniq // np.int64(right_op.ext_extent),
        uniq % np.int64(right_op.ext_extent),
        np.asarray(sums, dtype=np.float64),
    )
    counters.output_nnz += out.nnz
    return out.sum_duplicates() if canonical and semiring is PLUS_TIMES else out


def _reduce_duplicates(op, semiring: Semiring, con_extent: int):
    """⊕-combine duplicate (ext, con) entries of a linearized operand."""
    if op.nnz == 0 or semiring is PLUS_TIMES:
        return op.sum_duplicates()
    combined = op.ext * np.int64(op.con_extent) + op.con
    order = np.argsort(combined, kind="stable")
    skeys = combined[order]
    svals = op.values[order]
    uniq, offsets = group_boundaries(skeys)
    vals = semiring.add.reduceat(svals, offsets[:-1])
    from repro.core.plan import LinearizedOperand

    return LinearizedOperand(
        ext=uniq // np.int64(op.con_extent),
        con=uniq % np.int64(op.con_extent),
        values=np.asarray(vals, dtype=np.float64),
        ext_extent=op.ext_extent,
        con_extent=op.con_extent,
    )
