"""Public contraction API: COO in, COO out.

``contract`` runs the full FaSTCC pipeline of the paper: linearize the
mode groups (Section 2.1 preprocessing), choose an execution plan with
the probabilistic model (Section 5), run the 2-D tiled CO kernel
(Section 4), and delinearize the output (postprocessing).  Alternative
``method`` values dispatch to the baselines and reference schemes so
that every comparison in the evaluation is a one-argument change.

Example
-------
>>> import numpy as np
>>> from repro import COOTensor, contract
>>> a = COOTensor([[0, 1], [1, 0]], [2.0, 3.0], (2, 2))
>>> out = contract(a, a, pairs=[(1, 0)])  # matrix product a @ a
>>> out.to_dense()
array([[6., 0.],
       [0., 6.]])
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.analysis.counters import Counters, ensure_counters
from repro.backends.base import KernelBackend
from repro.backends.registry import choose_backend_for_densities, resolve_backend
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec, Plan
from repro.core.tiled_co import ContractionStats, tiled_co_contract
from repro.errors import ConfigError, PlanError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.tensors.coo import COOTensor

__all__ = ["contract", "self_contract"]

_METHODS = (
    "fastcc", "sparta", "sparta_improved", "taco", "taco_mm", "ci", "cm", "co"
)


def contract(
    left: COOTensor,
    right: COOTensor,
    pairs: Sequence[tuple[int, int]],
    *,
    method: str = "fastcc",
    machine: MachineSpec = DESKTOP,
    accumulator: str = "auto",
    tile_size: int | None = None,
    plan: Plan | None = None,
    n_workers: int = 1,
    counters: Counters | None = None,
    return_stats: bool = False,
    canonical: bool = True,
    backend: "str | KernelBackend | None" = None,
):
    """Contract two sparse COO tensors.

    Parameters
    ----------
    left, right:
        Input tensors (duplicate coordinates are combined internally).
    pairs:
        ``(left_mode, right_mode)`` contraction pairs.  The output's
        modes are the remaining left modes in order, then the remaining
        right modes in order.
    method:
        ``"fastcc"`` (the paper's kernel), ``"sparta"`` (CM scheme on
        chaining tables, Algorithm 8), ``"taco"`` (sequential CI on CSF),
        or the untiled reference schemes ``"ci"``/``"cm"``/``"co"``.
    machine:
        Platform model feeding the tile-size/accumulator selection.
    accumulator:
        ``"auto"`` follows Algorithm 7; ``"dense"``/``"sparse"`` force a
        tile kind (FaSTCC only).
    tile_size:
        Overrides the model's tile size (FaSTCC only).
    plan:
        A precomputed :class:`~repro.core.plan.Plan` (e.g. from a
        :class:`~repro.runtime.PlanCache`); skips Algorithm 7 entirely.
        Its index-space extents must match this contraction's spec.
        Mutually exclusive with ``accumulator``/``tile_size`` overrides.
    n_workers:
        Worker threads for the tile-pair task queue (FaSTCC only).
        Instrumented runs (``counters`` given) should use 1 for exact
        counts.
    counters:
        Optional :class:`~repro.analysis.counters.Counters` tally.
    return_stats:
        When true, returns ``(tensor, stats)`` where ``stats`` is a
        :class:`~repro.core.tiled_co.ContractionStats` including the
        plan, phase timings and per-task costs.
    canonical:
        Sort and deduplicate the output (deterministic ordering).  The
        raw kernels already emit unique coordinates; this only reorders.
    backend:
        Kernel backend for the FaSTCC path: a registered name
        (``"numpy"``/``"scipy"``/``"arrayapi"``), ``"auto"`` (pick per
        problem from operand densities), a
        :class:`~repro.backends.KernelBackend` instance, or ``None``
        (``$REPRO_BACKEND``, defaulting to the bit-exact ``numpy``
        reference).  Non-reference backends may reassociate float
        accumulation; see ``docs/backends.md`` for the tolerance policy.

    Returns
    -------
    COOTensor, or ``(COOTensor, ContractionStats)`` with ``return_stats``.
    """
    if method not in _METHODS:
        raise ConfigError(f"method must be one of {_METHODS}, got {method!r}")
    counters = ensure_counters(counters)
    spec = ContractionSpec(left.shape, right.shape, pairs)

    if method == "taco_mm":
        # The multi-mode CSF baseline consumes the original tensors; it
        # has no linearize/delinearize phases by construction.
        from repro.baselines.taco_multimode import taco_multimode_contract

        t0 = time.perf_counter()
        out = taco_multimode_contract(left, right, pairs, counters=counters)
        stats = ContractionStats(plan=None, counters=counters)
        stats.phase_seconds["contract"] = time.perf_counter() - t0
        if canonical:
            out = out.sum_duplicates()
        stats.output_nnz = out.nnz
        return (out, stats) if return_stats else out

    t0 = time.perf_counter()
    left_op = spec.linearize_left(left).sum_duplicates()
    right_op = spec.linearize_right(right).sum_duplicates()
    linearize_seconds = time.perf_counter() - t0

    if plan is not None:
        if accumulator != "auto" or tile_size is not None:
            raise ConfigError(
                "a precomputed plan is mutually exclusive with "
                "accumulator/tile_size overrides"
            )
        if (plan.spec.L, plan.spec.R, plan.spec.C) != (spec.L, spec.R, spec.C):
            raise PlanError(
                f"plan was made for (L={plan.spec.L}, R={plan.spec.R}, "
                f"C={plan.spec.C}) but this contraction has (L={spec.L}, "
                f"R={spec.R}, C={spec.C})"
            )
    else:
        plan = choose_plan(
            spec,
            left_op.nnz,
            right_op.nnz,
            machine,
            accumulator=accumulator,
            tile_size=tile_size,
        )

    if method == "fastcc":
        if backend == "auto":
            backend = choose_backend_for_densities(
                left_op.density, right_op.density
            )
        l_idx, r_idx, values, stats = tiled_co_contract(
            left_op, right_op, plan, n_workers=n_workers, counters=counters,
            backend=resolve_backend(backend),
        )
    else:
        l_idx, r_idx, values, stats = _run_baseline(
            method, left_op, right_op, plan, counters
        )

    t0 = time.perf_counter()
    out = spec.delinearize_output(l_idx, r_idx, values)
    if canonical:
        out = out.sum_duplicates()
    stats.phase_seconds["linearize"] = linearize_seconds
    stats.phase_seconds["delinearize"] = time.perf_counter() - t0
    stats.output_nnz = out.nnz
    if return_stats:
        return out, stats
    return out


def _run_baseline(method, left_op, right_op, plan: Plan, counters: Counters):
    """Dispatch to the baseline/reference kernels (imported lazily to
    keep ``repro.core`` import-light and cycle-free)."""
    t0 = time.perf_counter()
    if method == "sparta":
        from repro.baselines.sparta import sparta_contract

        l_idx, r_idx, values = sparta_contract(left_op, right_op, counters=counters)
    elif method == "sparta_improved":
        from repro.baselines.sparta_improved import sparta_improved_contract

        l_idx, r_idx, values = sparta_improved_contract(
            left_op, right_op, counters=counters
        )
    elif method == "taco":
        from repro.baselines.taco import taco_contract

        l_idx, r_idx, values = taco_contract(left_op, right_op, counters=counters)
    else:
        from repro.baselines.schemes import contract_untiled

        l_idx, r_idx, values = contract_untiled(
            method, left_op, right_op, counters=counters
        )
    stats = ContractionStats(plan=plan, counters=counters)
    stats.phase_seconds["contract"] = time.perf_counter() - t0
    return l_idx, r_idx, values, stats


def self_contract(tensor: COOTensor, modes: Sequence[int], **kwargs):
    """Contract a tensor with itself over ``modes``.

    This is the paper's FROSTT benchmark form (Section 6.1): e.g.
    ``self_contract(chicago, [1, 2, 3])`` is the "Chicago 123"
    experiment.  Keyword arguments are forwarded to :func:`contract`.
    """
    return contract(tensor, tensor, [(int(m), int(m)) for m in modes], **kwargs)
