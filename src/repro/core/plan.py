"""Contraction specification, linearized operands, and execution plans.

Section 2.1 of the paper: tensor indices split into contraction indices,
external-left, and external-right; each group is linearized to a single
index as preprocessing, reducing every contraction to
``O[l, r] = sum_c L[l, c] * R[c, r]``; the inverse delinearization is
applied to the output as postprocessing.  Both directions live here, and
both are charged to measured execution time by the benchmark harnesses,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import PlanError, ShapeError
from repro.tensors.coo import COOTensor
from repro.tensors.linearize import ModeLinearizer
from repro.util.arrays import INDEX_DTYPE
from repro.util.groups import segment_sum

__all__ = ["ContractionSpec", "LinearizedOperand", "Plan"]


@dataclass
class LinearizedOperand:
    """One input tensor reduced to matrix form.

    ``ext`` and ``con`` are the linearized external and contraction
    indices of every nonzero; ``values`` the numeric values.  For the
    left operand this is ``L[l, c]``, for the right ``R[c, r]``.
    """

    ext: np.ndarray
    con: np.ndarray
    values: np.ndarray
    ext_extent: int
    con_extent: int

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def density(self) -> float:
        """Matrix density ``nnz / (ext_extent * con_extent)``."""
        denom = self.ext_extent * self.con_extent
        return self.nnz / denom if denom else 0.0

    def sum_duplicates(self) -> "LinearizedOperand":
        """Combine duplicate ``(ext, con)`` entries by summation."""
        if self.nnz == 0:
            return self
        combined = self.ext * np.int64(self.con_extent) + self.con
        uniq, sums = segment_sum(combined, self.values)
        return LinearizedOperand(
            ext=uniq // np.int64(self.con_extent),
            con=uniq % np.int64(self.con_extent),
            values=sums,
            ext_extent=self.ext_extent,
            con_extent=self.con_extent,
        )


class ContractionSpec:
    """Classifies and linearizes the modes of a contraction.

    Parameters
    ----------
    left_shape, right_shape:
        Mode extents of the two operands.
    pairs:
        ``(left_mode, right_mode)`` contraction pairs; paired extents
        must match.  The output modes are the remaining left modes in
        order, then the remaining right modes in order.
    """

    def __init__(
        self,
        left_shape: Sequence[int],
        right_shape: Sequence[int],
        pairs: Sequence[tuple[int, int]],
    ):
        self.left_shape = tuple(int(s) for s in left_shape)
        self.right_shape = tuple(int(s) for s in right_shape)
        self.pairs = tuple((int(a), int(b)) for a, b in pairs)
        if not self.pairs:
            raise PlanError("at least one contraction pair is required")

        l_contracted = [a for a, _ in self.pairs]
        r_contracted = [b for _, b in self.pairs]
        if len(set(l_contracted)) != len(l_contracted):
            raise PlanError(f"left modes repeated in pairs: {self.pairs}")
        if len(set(r_contracted)) != len(r_contracted):
            raise PlanError(f"right modes repeated in pairs: {self.pairs}")
        for a, b in self.pairs:
            if not 0 <= a < len(self.left_shape):
                raise PlanError(f"left mode {a} out of range")
            if not 0 <= b < len(self.right_shape):
                raise PlanError(f"right mode {b} out of range")
            if self.left_shape[a] != self.right_shape[b]:
                raise ShapeError(
                    f"contracted extents differ: left mode {a} is "
                    f"{self.left_shape[a]}, right mode {b} is {self.right_shape[b]}"
                )

        self.left_external = tuple(
            m for m in range(len(self.left_shape)) if m not in set(l_contracted)
        )
        self.right_external = tuple(
            m for m in range(len(self.right_shape)) if m not in set(r_contracted)
        )
        self.lin_l = ModeLinearizer([self.left_shape[m] for m in self.left_external])
        self.lin_r = ModeLinearizer([self.right_shape[m] for m in self.right_external])
        self.lin_c = ModeLinearizer([self.left_shape[a] for a, _ in self.pairs])
        self.output_shape = tuple(self.left_shape[m] for m in self.left_external) + tuple(
            self.right_shape[m] for m in self.right_external
        )

    # ------------------------------------------------------------------

    @property
    def L(self) -> int:
        """Extent of the linearized left external index space."""
        return self.lin_l.size

    @property
    def R(self) -> int:
        """Extent of the linearized right external index space."""
        return self.lin_r.size

    @property
    def C(self) -> int:
        """Extent of the linearized contraction index space."""
        return self.lin_c.size

    def linearize_left(self, tensor: COOTensor) -> LinearizedOperand:
        """Reduce the left operand to ``L[l, c]`` matrix form."""
        if tensor.shape != self.left_shape:
            raise ShapeError(
                f"left tensor shape {tensor.shape} != spec {self.left_shape}"
            )
        ext = self.lin_l.encode(tensor.coords[list(self.left_external), :])
        con = self.lin_c.encode(tensor.coords[[a for a, _ in self.pairs], :])
        return LinearizedOperand(ext, con, tensor.values, self.L, self.C)

    def linearize_right(self, tensor: COOTensor) -> LinearizedOperand:
        """Reduce the right operand to ``R[c, r]`` matrix form."""
        if tensor.shape != self.right_shape:
            raise ShapeError(
                f"right tensor shape {tensor.shape} != spec {self.right_shape}"
            )
        ext = self.lin_r.encode(tensor.coords[list(self.right_external), :])
        con = self.lin_c.encode(tensor.coords[[b for _, b in self.pairs], :])
        return LinearizedOperand(ext, con, tensor.values, self.R, self.C)

    def delinearize_output(
        self, l_idx: np.ndarray, r_idx: np.ndarray, values: np.ndarray
    ) -> COOTensor:
        """Expand linearized output coordinates back to tensor modes."""
        l_coords = self.lin_l.decode(np.asarray(l_idx, dtype=INDEX_DTYPE))
        r_coords = self.lin_r.decode(np.asarray(r_idx, dtype=INDEX_DTYPE))
        coords = np.vstack([l_coords, r_coords])
        return COOTensor(coords, values, self.output_shape, check=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContractionSpec(L={self.L}, R={self.R}, C={self.C}, "
            f"pairs={self.pairs})"
        )


@dataclass
class Plan:
    """The decisions FaSTCC made for one contraction (Algorithm 7 output).

    Recorded on every :func:`repro.core.contraction.contract` call so
    benchmarks and users can inspect what the model chose.
    """

    spec: ContractionSpec
    accumulator: str  # "dense" | "sparse"
    tile_l: int
    tile_r: int
    machine_name: str
    p_l: float = 0.0
    p_r: float = 0.0
    est_output_density: float = 0.0
    expected_tile_nnz: float = 0.0
    notes: dict = field(default_factory=dict)

    @property
    def num_tiles(self) -> tuple[int, int]:
        """``(NL, NR)`` tile grid dimensions."""
        from repro.util.arrays import ceil_div

        return ceil_div(self.spec.L, self.tile_l), ceil_div(self.spec.R, self.tile_r)
