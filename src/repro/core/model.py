"""Probabilistic accumulator selection and tile sizing (paper Section 5).

Given only the input shapes and nonzero counts, the model:

1. estimates the output tensor's density assuming uniformly random
   nonzeros (Section 5.1):
   ``P_nonzero = 1 - (1 - p_L * p_R)^C``;
2. computes the expected nonzeros in a cache-sized dense tile,
   ``E_nnz(T^2) = P_nonzero * T^2`` with ``T^2 = L3 / (N_cores * DT)``
   (Section 5.2);
3. chooses a dense accumulator when ``E_nnz >= 1``, else a sparse one
   (Algorithm 7); and
4. sizes the tile: the dense tile fills one core's L3 share (Section
   5.3); the sparse tile is inversely proportional to the square root of
   the output density (Section 5.4), letting ultra-sparse outputs use
   much larger tiles.

All probability arithmetic goes through ``log1p``/``expm1`` so the
ultra-sparse regimes (``p_L * p_R`` down to 1e-30) keep full precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.plan import ContractionSpec, Plan
from repro.errors import ConfigError, ShapeError
from repro.machine.specs import MachineSpec
from repro.util.arrays import next_power_of_two

__all__ = ["AccumulatorChoice", "estimate_output_density", "choose_plan"]


@dataclass(frozen=True)
class AccumulatorChoice:
    """Algorithm 7's output plus the intermediate quantities it computed."""

    accumulator: str  # "dense" | "sparse"
    tile_size: int
    p_l: float
    p_r: float
    output_density: float
    expected_tile_nnz: float
    dense_probe_tile: int  # the T used to evaluate E_nnz(T^2)


def estimate_output_density(
    L: int, R: int, C: int, nnz_l: int, nnz_r: int
) -> float:
    """``P_nonzero = 1 - (1 - p_L p_R)^C`` (Section 5.1), computed stably.

    Uses ``1 - (1-x)^C = -expm1(C * log1p(-x))`` so that densities as
    small as 1e-30 survive double precision.
    """
    if min(L, R, C) < 1:
        raise ShapeError("extents must be >= 1")
    p_l = nnz_l / (L * C)
    p_r = nnz_r / (C * R)
    x = p_l * p_r
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    return -math.expm1(C * math.log1p(-x))


def choose_accumulator(
    L: int,
    R: int,
    C: int,
    nnz_l: int,
    nnz_r: int,
    machine: MachineSpec,
    *,
    probe_t_sq: float | None = None,
) -> AccumulatorChoice:
    """Algorithm 7: pick dense/sparse tiles and the tile size.

    The dense probe tile satisfies ``T^2 * N_cores * DT = L3``; FaSTCC
    additionally rounds the executed dense tile down to a power of two
    for the drain bitmask (Section 6.2), and rounds the sparse tile *up*
    to a power of two (Section 6.3).

    ``probe_t_sq`` overrides the probe-tile area used for the expected-
    nonzeros threshold.  The paper's *text* (Section 5.2) derives it from
    the per-core L3 share, but its published Table 3 E_nnz values are
    numerically consistent with the per-core private L2 instead
    (T^2 = 512 KiB / 8 B = 65536); the Table 3 benchmark passes
    ``machine.l2_bytes_per_core / machine.word_bytes`` to reproduce the
    published numbers, and EXPERIMENTS.md documents the discrepancy.
    The dense/sparse decisions agree under either probe for every
    benchmark in the paper.
    """
    p_l = nnz_l / (L * C)
    p_r = nnz_r / (C * R)
    density = estimate_output_density(L, R, C, nnz_l, nnz_r)

    if probe_t_sq is None:
        probe_t_sq = machine.l3_bytes / (machine.n_cores * machine.word_bytes)
    expected = density * probe_t_sq

    if expected < 1.0:
        tile = machine.sparse_tile_size(density)
        # Never tile wider than the output index space itself.
        tile = min(tile, next_power_of_two(max(L, R)))
        return AccumulatorChoice(
            "sparse", tile, p_l, p_r, density, expected, int(math.sqrt(probe_t_sq))
        )
    tile = machine.dense_tile_size()
    return AccumulatorChoice(
        "dense", tile, p_l, p_r, density, expected, int(math.sqrt(probe_t_sq))
    )


def choose_plan(
    spec: ContractionSpec,
    nnz_l: int,
    nnz_r: int,
    machine: MachineSpec,
    *,
    accumulator: str = "auto",
    tile_size: int | None = None,
) -> Plan:
    """Build the full execution :class:`Plan` for a contraction.

    ``accumulator`` and ``tile_size`` override the model when given
    (used by the tile-sweep and dense-vs-sparse benchmarks); ``"auto"``
    follows Algorithm 7.
    """
    choice = choose_accumulator(spec.L, spec.R, spec.C, nnz_l, nnz_r, machine)
    acc = choice.accumulator if accumulator == "auto" else accumulator
    if acc not in ("dense", "sparse"):
        raise ConfigError(f"accumulator must be auto|dense|sparse, got {accumulator!r}")
    if tile_size is None:
        if acc == choice.accumulator:
            tile = choice.tile_size
        elif acc == "dense":
            tile = machine.dense_tile_size()
        else:
            tile = machine.sparse_tile_size(choice.output_density)
            tile = min(tile, next_power_of_two(max(spec.L, spec.R)))
    else:
        if tile_size < 1:
            raise ConfigError(f"tile_size must be >= 1, got {tile_size}")
        tile = int(tile_size)
    # Tiles never need to exceed the index extents they partition.
    tile_l = max(1, min(tile, spec.L))
    tile_r = max(1, min(tile, spec.R))
    return Plan(
        spec=spec,
        accumulator=acc,
        tile_l=tile_l,
        tile_r=tile_r,
        machine_name=machine.name,
        p_l=choice.p_l,
        p_r=choice.p_r,
        est_output_density=choice.output_density,
        expected_tile_nnz=choice.expected_tile_nnz,
    )
