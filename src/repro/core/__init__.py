"""The paper's primary contribution: FaSTCC.

* :mod:`repro.core.plan` — index classification and linearization
  (Section 2.1's preprocessing), plus the executed :class:`Plan` record.
* :mod:`repro.core.model` — the probabilistic dense/sparse accumulator
  and tile-size model (Section 5, Algorithm 7).
* :mod:`repro.core.accumulators` — dense and sparse output tiles
  (Section 4.2).
* :mod:`repro.core.tiled_co` — the 2-D tiled contraction-index-outer
  kernel (Algorithms 5/6).
* :mod:`repro.core.contraction` — the public ``contract`` /
  ``self_contract`` API (COO in, COO out).
"""

from repro.core.contraction import contract, self_contract
from repro.core.einsum import contraction_path, einsum
from repro.core.expression import contract_expression
from repro.core.model import AccumulatorChoice, choose_plan
from repro.core.plan import ContractionSpec, LinearizedOperand, Plan
from repro.core.semiring import Semiring, semiring_contract

__all__ = [
    "contract",
    "self_contract",
    "einsum",
    "contraction_path",
    "contract_expression",
    "semiring_contract",
    "Semiring",
    "ContractionSpec",
    "LinearizedOperand",
    "Plan",
    "AccumulatorChoice",
    "choose_plan",
]
