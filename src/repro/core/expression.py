"""Reusable compiled contraction expressions.

Applications (the DLPNO pipeline of Section 6.1 is the archetype) run
the *same* contraction over many tensors of identical shape/sparsity:
plan selection, index classification, and — for networks — the
binarization order can be computed once and reused.

:func:`contract_expression` mirrors ``opt_einsum``'s API: it takes the
subscripts and the operand *shapes* plus expected nonzero counts, does
all shape-dependent work up front, and returns a callable that accepts
the actual tensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.contraction import contract
from repro.core.einsum import contraction_path, einsum, parse_subscripts
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec, Plan
from repro.errors import PlanError, ShapeError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.tensors.coo import COOTensor

__all__ = ["ContractExpression", "contract_expression"]


@dataclass
class ContractExpression:
    """A pre-planned contraction, callable on concrete tensors.

    For two-operand expressions the FaSTCC :class:`Plan` (accumulator
    kind + tile size) is precomputed from the declared shapes and
    expected nonzero counts and reused on every call; for networks the
    greedy binarization order is frozen.
    """

    subscripts: str
    shapes: tuple[tuple[int, ...], ...]
    machine: MachineSpec
    method: str
    plan: Plan | None  # two-operand case only
    path: list[tuple[int, int]] | None  # network case only

    def __call__(self, *operands: COOTensor) -> COOTensor:
        if len(operands) != len(self.shapes):
            raise PlanError(
                f"expression expects {len(self.shapes)} operands, "
                f"got {len(operands)}"
            )
        for k, (t, shape) in enumerate(zip(operands, self.shapes)):
            if tuple(t.shape) != shape:
                raise ShapeError(
                    f"operand {k} has shape {tuple(t.shape)} but the "
                    f"expression was compiled for {shape}"
                )
        if self.plan is not None:
            # Two-operand fast path: reuse the precomputed plan's
            # decisions (accumulator + tile) directly.
            inputs, out_sub = parse_subscripts(self.subscripts, 2)
            sub_a, sub_b = inputs
            shared = [ch for ch in sub_a if ch in sub_b]
            pairs = [(sub_a.index(ch), sub_b.index(ch)) for ch in shared]
            result = contract(
                operands[0], operands[1], pairs,
                machine=self.machine, method=self.method,
                accumulator=self.plan.accumulator,
                tile_size=self.plan.tile_l,
            )
            # Remap to the requested output subscripts via einsum's
            # bookkeeping only when the natural order differs.
            natural = "".join(ch for ch in sub_a if ch not in shared) + "".join(
                ch for ch in sub_b if ch not in shared
            )
            if natural != out_sub:
                if set(natural) != set(out_sub):
                    # Summed-out or dropped indices: fall back.
                    return einsum(
                        self.subscripts, *operands,
                        machine=self.machine, method=self.method,
                    )
                perm = [natural.index(ch) for ch in out_sub]
                result = result.permute_modes(perm)
            return result
        return einsum(
            self.subscripts, *operands,
            machine=self.machine, method=self.method,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        detail = (
            f"plan={self.plan.accumulator}/T{self.plan.tile_l}"
            if self.plan is not None
            else f"path={self.path}"
        )
        return f"ContractExpression({self.subscripts!r}, {detail})"


def contract_expression(
    subscripts: str,
    *shapes: Sequence[int],
    nnz: Sequence[int] | None = None,
    machine: MachineSpec = DESKTOP,
    method: str = "fastcc",
) -> ContractExpression:
    """Pre-plan a contraction for repeated execution.

    Parameters
    ----------
    subscripts:
        Einsum string, e.g. ``"imk,jnk->imjn"``.
    shapes:
        One shape tuple per operand.
    nnz:
        Expected nonzero count per operand (defaults to 1% density);
        drives the accumulator/tile model exactly as at run time.
    """
    shapes_t = tuple(tuple(int(s) for s in shape) for shape in shapes)
    inputs, out_sub = parse_subscripts(subscripts, len(shapes_t))
    for sub, shape in zip(inputs, shapes_t):
        if len(sub) != len(shape):
            raise ShapeError(
                f"subscript {sub!r} names {len(sub)} modes; shape {shape} "
                f"has {len(shape)}"
            )
    if nnz is None:
        nnz = [max(1, int(0.01 * _cells(s))) for s in shapes_t]
    if len(nnz) != len(shapes_t):
        raise PlanError("need one nnz estimate per operand")

    if len(shapes_t) == 2:
        sub_a, sub_b = inputs
        shared = [ch for ch in sub_a if ch in sub_b]
        if not shared:
            raise PlanError("operands share no contraction index")
        pairs = [(sub_a.index(ch), sub_b.index(ch)) for ch in shared]
        spec = ContractionSpec(shapes_t[0], shapes_t[1], pairs)
        plan = choose_plan(spec, int(nnz[0]), int(nnz[1]), machine)
        return ContractExpression(
            subscripts, shapes_t, machine, method, plan, None
        )

    # Networks: freeze the greedy order computed from placeholder
    # operands carrying the declared nnz estimates.
    placeholders = [
        _placeholder(shape, int(n)) for shape, n in zip(shapes_t, nnz)
    ]
    path = contraction_path(subscripts, placeholders, machine=machine)
    return ContractExpression(subscripts, shapes_t, machine, method, None, path)


def _cells(shape: tuple[int, ...]) -> int:
    out = 1
    for s in shape:
        out *= s
    return out


class _FakeNnz(COOTensor):
    """An empty tensor reporting a declared nnz (for path planning)."""

    __slots__ = ("_declared_nnz",)

    def __init__(self, shape, declared):
        import numpy as np

        super().__init__(
            np.empty((len(shape), 0), dtype=np.int64), np.empty(0), shape
        )
        self._declared_nnz = int(declared)

    @property
    def nnz(self) -> int:  # type: ignore[override]
        return self._declared_nnz


def _placeholder(shape: tuple[int, ...], declared_nnz: int) -> COOTensor:
    return _FakeNnz(shape, declared_nnz)
