"""Reusable compiled contraction expressions.

Applications (the DLPNO pipeline of Section 6.1 is the archetype) run
the *same* contraction over many tensors of identical shape/sparsity:
plan selection, index classification, and — for networks — the full
contraction path can be computed once and reused.

:func:`contract_expression` mirrors ``opt_einsum``'s API: it takes the
subscripts and the operand *shapes* plus expected nonzero counts, does
all shape-dependent work up front, and returns a callable that accepts
the actual tensors.  Declared metadata is carried as first-class
:class:`~repro.network.ir.OperandMeta` — the same structure the network
planner consumes — so compile-ahead planning and runtime planning agree
by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.contraction import contract
from repro.core.einsum import einsum, parse_subscripts
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec, Plan
from repro.errors import PlanError, ShapeError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.network.executor import default_executor
from repro.network.ir import OperandMeta, TensorNetwork
from repro.network.optimize import build_plan, resolve_optimizer
from repro.network.plan import NetworkPlan
from repro.tensors.coo import COOTensor

__all__ = ["ContractExpression", "contract_expression"]


@dataclass
class ContractExpression:
    """A pre-planned contraction, callable on concrete tensors.

    For two-operand connected expressions the FaSTCC :class:`Plan`
    (accumulator kind + tile size) is precomputed from the declared
    shapes and expected nonzero counts and reused on every call; for
    networks (and outer products) a full
    :class:`~repro.network.plan.NetworkPlan` is frozen and replayed
    through the shared network executor.
    """

    subscripts: str
    shapes: tuple[tuple[int, ...], ...]
    machine: MachineSpec
    method: str
    plan: Plan | None  # two-operand fast path only
    network_plan: NetworkPlan | None  # network / outer-product case

    @property
    def path(self) -> list[tuple[int, int]] | None:
        """The frozen pairwise order (``None`` on the two-operand fast
        path, which has no binarization to freeze)."""
        if self.network_plan is None:
            return None
        return self.network_plan.path

    def __call__(self, *operands: COOTensor) -> COOTensor:
        if len(operands) != len(self.shapes):
            raise PlanError(
                f"expression expects {len(self.shapes)} operands, "
                f"got {len(operands)}"
            )
        for k, (t, shape) in enumerate(zip(operands, self.shapes)):
            if tuple(t.shape) != shape:
                raise ShapeError(
                    f"operand {k} has shape {tuple(t.shape)} but the "
                    f"expression was compiled for {shape}"
                )
        if self.plan is not None:
            # Two-operand fast path: reuse the precomputed plan's
            # decisions (accumulator + tile) directly.
            inputs, out_sub = parse_subscripts(self.subscripts, 2)
            sub_a, sub_b = inputs
            shared = [ch for ch in sub_a if ch in sub_b]
            pairs = [(sub_a.index(ch), sub_b.index(ch)) for ch in shared]
            result = contract(
                operands[0], operands[1], pairs,
                machine=self.machine, method=self.method,
                accumulator=self.plan.accumulator,
                tile_size=self.plan.tile_l,
            )
            # Remap to the requested output subscripts via einsum's
            # bookkeeping only when the natural order differs.
            natural = "".join(ch for ch in sub_a if ch not in shared) + "".join(
                ch for ch in sub_b if ch not in shared
            )
            if natural != out_sub:
                if set(natural) != set(out_sub):
                    # Summed-out or dropped indices: fall back.
                    return einsum(
                        self.subscripts, *operands,
                        machine=self.machine, method=self.method,
                    )
                perm = [natural.index(ch) for ch in out_sub]
                result = result.permute_modes(perm)
            return result
        out, _report = default_executor(self.machine).execute(
            self.network_plan, operands, method=self.method
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        detail = (
            f"plan={self.plan.accumulator}/T{self.plan.tile_l}"
            if self.plan is not None
            else f"path={self.path}"
        )
        return f"ContractExpression({self.subscripts!r}, {detail})"


def contract_expression(
    subscripts: str,
    *shapes: Sequence[int],
    nnz: Sequence[int] | None = None,
    machine: MachineSpec = DESKTOP,
    method: str = "fastcc",
    optimizer: str = "auto",
) -> ContractExpression:
    """Pre-plan a contraction for repeated execution.

    Parameters
    ----------
    subscripts:
        Einsum string, e.g. ``"imk,jnk->imjn"``.
    shapes:
        One shape tuple per operand.
    nnz:
        Expected nonzero count per operand (defaults to 1% density);
        drives the accumulator/tile model exactly as at run time.
    optimizer:
        Path optimizer for the network case (``"auto"``, ``"left"``,
        ``"greedy"``, ``"dp"``, ``"sparsity"``).
    """
    shapes_t = tuple(tuple(int(s) for s in shape) for shape in shapes)
    inputs, _out_sub = parse_subscripts(subscripts, len(shapes_t))
    for sub, shape in zip(inputs, shapes_t):
        if len(sub) != len(shape):
            raise ShapeError(
                f"subscript {sub!r} names {len(sub)} modes; shape {shape} "
                f"has {len(shape)}"
            )
    if nnz is not None and len(nnz) != len(shapes_t):
        raise PlanError("need one nnz estimate per operand")
    metas = [
        OperandMeta.declared(
            sub, shape, None if nnz is None else int(nnz[k])
        )
        for k, (sub, shape) in enumerate(zip(inputs, shapes_t))
    ]
    network = TensorNetwork(metas, _out_sub)

    if len(shapes_t) == 2:
        sub_a, sub_b = inputs
        shared = [ch for ch in sub_a if ch in sub_b]
        if shared:
            pairs = [(sub_a.index(ch), sub_b.index(ch)) for ch in shared]
            spec = ContractionSpec(shapes_t[0], shapes_t[1], pairs)
            plan = choose_plan(spec, metas[0].nnz, metas[1].nnz, machine)
            return ContractExpression(
                subscripts, shapes_t, machine, method, plan, None
            )
        # Disconnected pair: plan it as a (trivial) network so the call
        # path runs the explicit outer product.

    net_plan = build_plan(
        network, machine, resolve_optimizer(optimizer, network)
    )
    # Seed the shared executor's plan cache so einsum-style calls with
    # matching signatures replay the same frozen plan.
    default_executor(machine).seed_plan(net_plan)
    return ContractExpression(
        subscripts, shapes_t, machine, method, None, net_plan
    )
