"""The FaSTCC kernel: 2-D tiled contraction-index-outer contraction.

Implements Algorithms 5 and 6 of the paper.  The output index space
``L x R`` is partitioned into ``NL x NR`` tiles; each input is split
into per-tile hash tables keyed by the contraction index
(``HL_i : C -> P({0..T_L-1} x V)``), and every tile pair ``(i, j)`` is an
independent task:

1. **construction** — build the tiled tables (parallelizable; the paper
   splits threads between the two operands);
2. **co-iteration** — for each ``c`` present in both ``HL_i`` and
   ``HR_j``, form the outer product of the two slices;
3. **accumulation** — upsert partial products into a dense or sparse
   tile workspace (chosen by the model);
4. **drain** — walk the workspace's active entries, remap intra-tile to
   global indices, and append to a thread-local COO builder; the master
   concatenates builders at the end.

The per-``c`` outer products of all matched keys are expanded with the
vectorized :func:`repro.util.groups.grouped_cartesian` kernel in bounded
chunks, so peak extra memory is ``O(chunk_pairs)`` regardless of how many
multiply-accumulates a tile performs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.backends.base import KernelBackend
from repro.backends.registry import resolve_backend
from repro.core.accumulators import DEFAULT_DENSE_CELL_GUARD, make_accumulator
from repro.core.plan import LinearizedOperand, Plan
from repro.errors import ConfigError, PlanError, ShapeError, WorkspaceLimitError
from repro.hashing.slice_table import SliceTable
from repro.parallel.memory_pool import COOBuilder
from repro.parallel.taskqueue import TaskQueue
from repro.util.arrays import ceil_div
from repro.util.groups import grouped_cartesian

__all__ = [
    "TiledTables",
    "ContractionStats",
    "tiled_co_contract",
    "build_tiled_tables",
    "build_tiled_tables_pair",
]

#: Upper bound on the outer-product expansion processed per chunk.
DEFAULT_CHUNK_PAIRS = 1 << 21

#: Upper bound on the number of tile-pair tasks.  A dense accumulator
#: forced onto an ultra-sparse output explodes the tile grid (the paper's
#: Table 3 reports DNF for NIPS mode 2 in exactly this configuration);
#: the guard turns that into a clean WorkspaceLimitError.
DEFAULT_MAX_TASKS = 1 << 21


class TiledTables:
    """One operand's per-tile hash tables (``HL_i`` of Section 4.1)."""

    __slots__ = ("tile", "num_tiles", "tables", "nnz")

    def __init__(self, tile: int, num_tiles: int, tables: list[SliceTable | None], nnz: int):
        self.tile = tile
        self.num_tiles = num_tiles
        self.tables = tables
        self.nnz = nnz

    def nonempty_tiles(self) -> list[int]:
        return [i for i, t in enumerate(self.tables) if t is not None]


def build_tiled_tables(
    operand: LinearizedOperand,
    tile: int,
    *,
    n_workers: int = 1,
    counters: Counters | None = None,
) -> TiledTables:
    """Split an operand into per-tile contraction-indexed hash tables.

    An element with external index ``e`` lands in table ``e // tile``
    under intra-tile index ``e % tile`` (Section 4.2's parallel
    construction).  Table construction for distinct tiles is dispatched
    through the task queue, mirroring the paper's per-thread tile
    ownership.
    """
    if tile < 1:
        raise ConfigError(f"tile must be >= 1, got {tile}")
    counters = ensure_counters(counters)
    num_tiles = max(1, ceil_div(operand.ext_extent, tile))
    tables: list[SliceTable | None] = [None] * num_tiles
    if operand.nnz == 0:
        return TiledTables(tile, num_tiles, tables, 0)

    tile_of = operand.ext // np.int64(tile)
    intra = operand.ext % np.int64(tile)
    order = np.argsort(tile_of, kind="stable")
    sorted_tiles = tile_of[order]
    sorted_intra = intra[order]
    sorted_con = operand.con[order]
    sorted_vals = operand.values[order]

    from repro.util.groups import group_boundaries

    tile_ids, offsets = group_boundaries(sorted_tiles)

    def make_task(g: int):
        def task() -> None:
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            tables[int(tile_ids[g])] = SliceTable(
                sorted_con[lo:hi],
                sorted_intra[lo:hi],
                sorted_vals[lo:hi],
                counters=counters,
            )

        return task

    TaskQueue(n_workers).run([make_task(g) for g in range(tile_ids.shape[0])])
    return TiledTables(tile, num_tiles, tables, operand.nnz)


def build_tiled_tables_pair(
    left: LinearizedOperand,
    right: LinearizedOperand,
    tile_l: int,
    tile_r: int,
    *,
    n_workers: int = 1,
    counters: Counters | None = None,
) -> tuple[TiledTables, TiledTables]:
    """Build both operands' tile tables with a split thread team.

    The paper's Section 4.2: half the threads construct ``HL`` while
    the other half construct ``HR`` (OpenMP nested parallel regions).
    With one worker the two builds simply run back to back.
    """
    if n_workers <= 1:
        return (
            build_tiled_tables(left, tile_l, counters=counters),
            build_tiled_tables(right, tile_r, counters=counters),
        )
    left_team = max(1, n_workers // 2)
    right_team = max(1, n_workers - left_team)
    results: list[TiledTables | None] = [None, None]
    errors: list[BaseException] = []

    def build(slot: int, operand: LinearizedOperand, tile: int, team: int) -> None:
        try:
            results[slot] = build_tiled_tables(
                operand, tile, n_workers=team, counters=counters
            )
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [
        threading.Thread(target=build, args=(0, left, tile_l, left_team)),
        threading.Thread(target=build, args=(1, right, tile_r, right_team)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    assert results[0] is not None and results[1] is not None
    return results[0], results[1]


@dataclass
class ContractionStats:
    """Everything measured during one kernel execution.

    ``task_costs`` (seconds per tile-pair task, in dispatch order) feed
    the scheduling simulator; ``phase_seconds`` breaks the run into the
    paper's four steps.
    """

    plan: Plan | None = None
    counters: Counters = field(default_factory=Counters)
    task_costs: np.ndarray = field(default_factory=lambda: np.empty(0))
    task_pairs: list = field(default_factory=list)  # (i, j) in dispatch order
    phase_seconds: dict[str, float] = field(default_factory=dict)
    output_nnz: int = 0
    num_tasks: int = 0

    @property
    def kernel_seconds(self) -> float:
        """Co-iteration + accumulation + drain (the parallel section)."""
        return self.phase_seconds.get("contract", 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


def tiled_co_contract(
    left: LinearizedOperand,
    right: LinearizedOperand,
    plan: Plan,
    *,
    n_workers: int = 1,
    counters: Counters | None = None,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    dense_cell_guard: int = DEFAULT_DENSE_CELL_GUARD,
    max_tasks: int = DEFAULT_MAX_TASKS,
    builder_chunk_rows: int = 1 << 16,
    trace=None,
    schedule: str = "heavy_first",
    tables: "tuple[TiledTables, TiledTables] | None" = None,
    check_hazards: bool = False,
    backend: "str | KernelBackend | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, ContractionStats]:
    """Run Algorithm 6 on linearized operands.

    Returns ``(l_idx, r_idx, values, stats)`` with unique output
    coordinates (each output tile is disjoint, and each tile's drain
    emits unique positions).

    ``schedule`` orders the tile-pair task queue: ``"heavy_first"``
    (default) dispatches tasks by descending estimated cost
    (``nnz(HL_i) * nnz(HR_j)``, an upper bound on the tile's multiply-
    accumulates) — the LPT heuristic that tightens greedy dynamic
    scheduling's makespan when a few heavy tiles dominate;
    ``"fifo"`` keeps grid order (Algorithm 5's nested loops verbatim).

    ``tables`` injects prebuilt :class:`TiledTables` for both operands
    (from :func:`build_tiled_tables_pair`), skipping the construction
    phase entirely — the runtime layer's table-reuse path for batched
    contractions that share an operand.  Tile sizes must match the plan.

    ``check_hazards`` hands the dispatch list's per-task write sets to
    the task queue, which statically verifies the disjoint-tile
    invariant (:mod:`repro.staticcheck.graph_lint`) before executing —
    raising :class:`~repro.errors.SchedulerError` instead of racing if a
    tile pair is ever repeated.

    ``backend`` selects the kernel backend (name, instance, or ``None``
    for the environment default; see :mod:`repro.backends`).  A backend
    with a native pairwise path (scipy's SpGEMM, the array-API dense
    GEMM) short-circuits the tiled loop entirely when it accepts the
    problem; otherwise its element ops run inside Algorithm 6.
    """
    if schedule not in ("heavy_first", "fifo"):
        raise ConfigError(f"schedule must be heavy_first|fifo, got {schedule!r}")
    if left.con_extent != right.con_extent:
        raise ShapeError(
            f"contraction extents differ: {left.con_extent} vs {right.con_extent}"
        )
    counters = ensure_counters(counters)
    stats = ContractionStats(plan=plan, counters=counters)
    tile_l, tile_r = plan.tile_l, plan.tile_r
    backend = resolve_backend(backend)

    # A backend-native pairwise path replaces the whole tiled loop.
    # Instrumented runs (``trace``) stay on the tiled kernel — the trace
    # records accumulator access patterns the native path doesn't have.
    if trace is None:
        t0 = time.perf_counter()
        native = backend.contract_linearized(left, right, plan, counters=counters)
        if native is not None:
            l_idx, r_idx, values = native
            stats.phase_seconds["contract"] = time.perf_counter() - t0
            stats.output_nnz = int(values.shape[0])
            return l_idx, r_idx, values, stats

    # Step 1: parallel construction of the tiled hash tables, with the
    # thread pool split between the two operands (paper Section 4.2).
    # Prebuilt tables (the runtime's reuse path) skip this phase.
    t0 = time.perf_counter()
    if tables is not None:
        hl, hr = tables
        if hl.tile != tile_l or hr.tile != tile_r:
            raise PlanError(
                f"prebuilt tables tiled {hl.tile}x{hr.tile} but the plan "
                f"wants {tile_l}x{tile_r}"
            )
        if hl.nnz != left.nnz or hr.nnz != right.nnz:
            raise PlanError(
                "prebuilt tables do not match the operands: "
                f"table nnz ({hl.nnz}, {hr.nnz}) vs operand nnz "
                f"({left.nnz}, {right.nnz})"
            )
    else:
        hl, hr = build_tiled_tables_pair(
            left, right, tile_l, tile_r, n_workers=n_workers, counters=counters
        )
    stats.phase_seconds["build_tables"] = time.perf_counter() - t0

    expected_tile_nnz = max(8, int(plan.est_output_density * tile_l * tile_r) + 1)
    tile_r_np = np.int64(tile_r)

    # Per-worker state: a reusable accumulator and a COO builder.
    local = threading.local()
    all_builders: list[COOBuilder] = []
    builders_lock = threading.Lock()

    def get_state():
        acc = getattr(local, "acc", None)
        if acc is None:
            acc = make_accumulator(
                plan.accumulator,
                tile_l,
                tile_r,
                expected_nnz=expected_tile_nnz,
                counters=counters,
                cell_guard=dense_cell_guard,
                trace=trace,
                backend=backend,
            )
            builder = COOBuilder(chunk_rows=builder_chunk_rows)
            local.acc = acc
            local.builder = builder
            with builders_lock:
                all_builders.append(builder)
        return local.acc, local.builder

    def make_task(i: int, j: int):
        hl_i = hl.tables[i]
        hr_j = hr.tables[j]

        def task() -> None:
            acc, builder = get_state()
            acc.reset()
            # Co-iteration: scan HL_i's own keys, hash-probe HR_j.
            keys_l = hl_i.keys()
            found, starts_r, counts_r = hr_j.query_batch(keys_l)
            starts_l, counts_l = hl_i.spans_for_all_keys()
            sel = found
            if not sel.any():
                return
            g_sl = starts_l[sel]
            g_cl = counts_l[sel]
            g_sr = starts_r[sel]
            g_cr = counts_r[sel]
            counters.data_volume += int(g_cl.sum() + g_cr.sum())

            idx_l_payload, vals_l = hl_i.payload
            idx_r_payload, vals_r = hr_j.payload

            # Expand matched outer products in bounded chunks of groups.
            pair_counts = g_cl * g_cr
            cum = np.cumsum(pair_counts)
            chunk_start = 0
            n_groups = pair_counts.shape[0]
            base = 0
            while chunk_start < n_groups:
                limit = base + chunk_pairs
                chunk_end = int(np.searchsorted(cum, limit, side="right"))
                chunk_end = max(chunk_end, chunk_start + 1)
                sl = slice(chunk_start, chunk_end)
                ia, ib = grouped_cartesian(g_sl[sl], g_cl[sl], g_sr[sl], g_cr[sl])
                if ia.shape[0]:
                    positions = (
                        backend.gather(idx_l_payload, ia) * tile_r_np
                        + backend.gather(idx_r_payload, ib)
                    )
                    vals = backend.multiply(
                        backend.gather(vals_l, ia), backend.gather(vals_r, ib)
                    )
                    acc.update_batch(positions, vals)
                base = int(cum[chunk_end - 1])
                chunk_start = chunk_end

            # Drain: intra-tile positions back to global output indices.
            positions, values = acc.drain()
            if positions.shape[0]:
                l_global = np.int64(i) * tile_l + positions // tile_r_np
                r_global = np.int64(j) * tile_r + positions % tile_r_np
                builder.append_batch(l_global, r_global, values)
                counters.output_nnz += positions.shape[0]

        return task

    nonempty_l = hl.nonempty_tiles()
    nonempty_r = hr.nonempty_tiles()
    n_pairs = len(nonempty_l) * len(nonempty_r)
    if n_pairs > max_tasks:
        raise WorkspaceLimitError(
            f"tile grid of {len(nonempty_l)}x{len(nonempty_r)} nonempty tiles "
            f"({n_pairs} tasks) exceeds the task guard ({max_tasks}); this "
            "configuration is the paper's DNF regime — use a sparse "
            "accumulator (larger tiles) instead"
        )
    pairs_order = [(i, j) for i in nonempty_l for j in nonempty_r]
    if schedule == "heavy_first" and len(pairs_order) > 1:
        # Estimated tile cost: product of the two tables' nonzero counts
        # (the outer-product upper bound).  Descending order = LPT.
        weights = np.array(
            [hl.tables[i].nnz * hr.tables[j].nnz for i, j in pairs_order],
            dtype=np.int64,
        )
        pairs_order = [pairs_order[k] for k in np.argsort(-weights, kind="stable")]
    tasks = [make_task(i, j) for i, j in pairs_order]
    counters.tasks += len(tasks)
    stats.num_tasks = len(tasks)
    stats.task_pairs = pairs_order

    t0 = time.perf_counter()
    write_sets = (
        [frozenset([p]) for p in pairs_order] if check_hazards else None
    )
    records = TaskQueue(n_workers).run(tasks, write_sets=write_sets)
    stats.phase_seconds["contract"] = time.perf_counter() - t0
    stats.task_costs = np.array([r.cost for r in records], dtype=np.float64)

    # Step 4 epilogue: the master concatenates the thread-local lists.
    t0 = time.perf_counter()
    l_idx, r_idx, values = COOBuilder.merge(all_builders)
    stats.phase_seconds["merge_output"] = time.perf_counter() - t0
    stats.output_nnz = int(values.shape[0])
    return l_idx, r_idx, values, stats
