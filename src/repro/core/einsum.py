"""Einsum-style front end over the :mod:`repro.network` subsystem.

Historically this module carried its own greedy binarization; it is now
a thin compatibility layer.  Parsing lives in :mod:`repro.network.ir`,
path optimization in :mod:`repro.network.optimize` (``left``/``greedy``/
``dp``/``sparsity``/``auto``), and execution in
:mod:`repro.network.executor` — through a shared per-machine
:class:`~repro.network.executor.NetworkExecutor`, so repeated
:func:`einsum` calls replay cached :class:`~repro.network.plan.NetworkPlan`
objects and hit the runtime :class:`~repro.runtime.plan_cache.PlanCache`
for every pairwise step.

Supported subscript semantics (the tensor-network subset of einsum):

* every index appears in exactly one or two operands;
* an index in two operands and absent from the output is contracted;
* an index in one operand and absent from the output is summed out;
* an index in the output must appear in exactly one operand (no
  element-wise/Hadamard sharing, no traces, no broadcasting).

Disconnected networks (outer products) are supported: components are
planned independently and combined with explicit sparse outer products.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine.specs import DESKTOP, MachineSpec
from repro.network.executor import default_executor, sum_out_modes
from repro.network.ir import TensorNetwork, parse_subscripts
from repro.network.optimize import optimize_path, resolve_optimizer
from repro.tensors.coo import COOTensor

__all__ = ["einsum", "parse_subscripts", "contraction_path"]

# Backwards-compatible alias (pre-network name, still used by tests and
# downstream callers).
_sum_out_modes = sum_out_modes


def contraction_path(
    subscripts: str,
    operands: Sequence[COOTensor],
    *,
    machine: MachineSpec = DESKTOP,
    optimizer: str = "greedy",
) -> list[tuple[int, int]]:
    """The pairwise contraction order for a network.

    Returns a list of position pairs into the (shrinking) operand list,
    ``numpy.einsum_path`` style: each step contracts the two named
    operands and appends the intermediate at the end.  ``operands`` may
    be live tensors, :class:`~repro.network.ir.OperandMeta`, or bare
    shape tuples; ``optimizer`` is any of
    :data:`repro.network.optimize.OPTIMIZERS` or ``"auto"``.
    """
    network = TensorNetwork.parse(subscripts, operands)
    return optimize_path(network, machine, resolve_optimizer(optimizer, network))


def einsum(
    subscripts: str,
    *operands: COOTensor,
    machine: MachineSpec = DESKTOP,
    method: str = "fastcc",
    optimize: str = "greedy",
    backend=None,
) -> COOTensor:
    """Sparse einsum over COO tensors through the FaSTCC kernel.

    Examples
    --------
    >>> out = einsum("iak,kaj->ij", a, b)          # pairwise contraction
    >>> out = einsum("ij,jk,kl->il", a, b, c)      # 3-tensor network
    >>> out = einsum("ij,kl->ijkl", a, b)          # outer product

    ``optimize`` selects the path optimizer: ``"greedy"`` (default,
    model-scored pair ordering), ``"left"`` (left-to-right, for
    reproducible cost comparisons), ``"dp"`` (optimal search for small
    networks), ``"sparsity"`` (density-through-cost-model scoring), or
    ``"auto"``.  ``backend`` selects the kernel backend for every
    pairwise step (a name, ``"auto"``, or an instance; see
    :mod:`repro.backends`).
    """
    executor = default_executor(machine)
    return executor.contract(
        subscripts, *operands, optimizer=optimize, method=method,
        backend=backend,
    )
