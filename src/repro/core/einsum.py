"""Einsum-style front end and sparse tensor-network contraction.

The paper's related work (Section 7: CoNST, SparseLNR) and conclusion
point at *sequences* of sparse contractions — tensor networks — as the
natural extension of a fast pairwise kernel.  This module provides:

* :func:`einsum` — an ``numpy.einsum``-like string interface over
  sparse COO tensors, executing through the FaSTCC kernel.  Two-operand
  expressions map directly onto :func:`repro.core.contraction.contract`;
  multi-operand expressions are binarized into pairwise contractions.
* A greedy contraction-order optimizer that scores candidate pairs with
  the paper's own output-density model (Section 5.1), favoring pairs
  whose intermediate result is predicted smallest — the standard
  cost-based binarization, driven by the reproduction's cost machinery.

Supported subscript semantics (a deliberate subset of full einsum,
matching tensor-network contraction):

* every index appears in exactly one or two operands;
* an index in two operands and absent from the output is contracted;
* an index in one operand and absent from the output is summed out;
* an index in the output must appear in exactly one operand (no
  element-wise/Hadamard sharing, no traces, no broadcasting).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.contraction import contract
from repro.core.model import estimate_output_density
from repro.errors import PlanError, ShapeError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.tensors.coo import COOTensor
from repro.tensors.linearize import ModeLinearizer
from repro.util.groups import segment_sum

__all__ = ["einsum", "parse_subscripts", "contraction_path"]


def parse_subscripts(subscripts: str, n_operands: int) -> tuple[list[str], str]:
    """Split and validate an einsum subscript string.

    Returns ``(input_subscripts, output_subscript)``.  The output part
    is mandatory (no implicit mode): sparse outputs need an explicit
    mode order.
    """
    if "->" not in subscripts:
        raise PlanError(
            "explicit output subscripts are required, e.g. 'ij,jk->ik'"
        )
    lhs, out = subscripts.replace(" ", "").split("->")
    inputs = lhs.split(",")
    if len(inputs) != n_operands:
        raise PlanError(
            f"subscripts name {len(inputs)} operands but {n_operands} were given"
        )
    for sub in inputs:
        if not sub.isalpha():
            raise PlanError(f"subscripts must be letters, got {sub!r}")
        if len(set(sub)) != len(sub):
            raise PlanError(f"repeated index within one operand (trace) "
                            f"is unsupported: {sub!r}")
    if not (out.isalpha() or out == ""):
        raise PlanError(f"output subscripts must be letters, got {out!r}")
    if len(set(out)) != len(out):
        raise PlanError(f"repeated output index: {out!r}")

    counts: dict[str, int] = {}
    for sub in inputs:
        for ch in sub:
            counts[ch] = counts.get(ch, 0) + 1
    for ch, n in counts.items():
        if n > 2:
            raise PlanError(
                f"index {ch!r} appears in {n} operands; tensor-network "
                "contraction allows at most two"
            )
        if n == 2 and ch in out:
            raise PlanError(
                f"index {ch!r} is shared by two operands AND kept in the "
                "output (Hadamard semantics) — unsupported"
            )
    for ch in out:
        if ch not in counts:
            raise PlanError(f"output index {ch!r} appears in no operand")
    return inputs, out


def _sum_out_modes(tensor: COOTensor, modes: Sequence[int]) -> COOTensor:
    """Sum a tensor over the given modes (marginalization)."""
    keep = [m for m in range(tensor.ndim) if m not in set(modes)]
    lin = ModeLinearizer([tensor.shape[m] for m in keep])
    flat = lin.encode(tensor.coords[keep, :])
    uniq, sums = segment_sum(flat, tensor.values)
    return COOTensor(
        lin.decode(uniq), sums, tuple(tensor.shape[m] for m in keep), check=False
    )


def _pair_cost(
    a: COOTensor, sub_a: str, b: COOTensor, sub_b: str, machine: MachineSpec
) -> float:
    """Greedy score for contracting (a, b): predicted intermediate nnz
    plus the input volumes (Section 5.1's estimate as the oracle)."""
    shared = [ch for ch in sub_a if ch in sub_b]
    ext_a = 1
    for m, ch in enumerate(sub_a):
        if ch not in shared:
            ext_a *= a.shape[m]
    ext_b = 1
    for m, ch in enumerate(sub_b):
        if ch not in shared:
            ext_b *= b.shape[m]
    con = 1
    for ch in shared:
        con *= a.shape[sub_a.index(ch)]
    if not shared:
        # Outer product: worst case, score by full output size.
        return float(a.nnz) * b.nnz + a.nnz + b.nnz
    density = estimate_output_density(ext_a, ext_b, con, a.nnz, b.nnz)
    return density * ext_a * ext_b + a.nnz + b.nnz


def contraction_path(
    subscripts: str,
    operands: Sequence[COOTensor],
    *,
    machine: MachineSpec = DESKTOP,
) -> list[tuple[int, int]]:
    """The greedy pairwise contraction order for a network.

    Returns a list of position pairs into the (shrinking) operand list,
    ``numpy.einsum_path`` style: each step contracts the two named
    operands and appends the intermediate at the end.
    """
    inputs, out = parse_subscripts(subscripts, len(operands))
    # Track (subscript, shape, estimated nnz) per live operand; the
    # estimates keep the greedy scoring going after intermediates.
    subs = list(inputs)
    shapes = [t.shape for t in operands]
    nnzs = [float(t.nnz) for t in operands]
    path: list[tuple[int, int]] = []

    def score(i: int, j: int) -> tuple[bool, float]:
        import math

        shared = [ch for ch in subs[i] if ch in subs[j]]
        ext_i = math.prod(shapes[i][m] for m, ch in enumerate(subs[i])
                          if ch not in shared)
        ext_j = math.prod(shapes[j][m] for m, ch in enumerate(subs[j])
                          if ch not in shared)
        con = math.prod(shapes[i][subs[i].index(ch)] for ch in shared)
        if not shared:
            return True, nnzs[i] * nnzs[j]
        density = estimate_output_density(
            int(ext_i), int(ext_j), int(con),
            max(1, int(nnzs[i])), max(1, int(nnzs[j])),
        )
        return False, float(density * ext_i * ext_j + nnzs[i] + nnzs[j])

    while len(subs) > 1:
        best = None
        for i in range(len(subs)):
            for j in range(i + 1, len(subs)):
                key = score(i, j)
                if best is None or key < best[0]:
                    best = (key, i, j)
        _, i, j = best
        path.append((i, j))
        shared = [ch for ch in subs[i] if ch in subs[j]]
        new_sub = "".join(ch for ch in subs[i] if ch not in shared) + "".join(
            ch for ch in subs[j] if ch not in shared
        )
        new_shape = tuple(shapes[i][subs[i].index(ch)] for ch in subs[i]
                          if ch not in shared) + tuple(
            shapes[j][subs[j].index(ch)] for ch in subs[j] if ch not in shared
        )
        _, est_cost = score(i, j)
        new_nnz = min(est_cost, float(np.prod(new_shape)) if new_shape else 1.0)
        for k in sorted((i, j), reverse=True):
            del subs[k]
            del shapes[k]
            del nnzs[k]
        subs.append(new_sub)
        shapes.append(new_shape)
        nnzs.append(new_nnz)
    return path


def _contract_pair(a, sub_a, b, sub_b, *, still_needed, **kw):
    """Contract two network operands over all shared indices."""
    shared = [ch for ch in sub_a if ch in sub_b]
    if not shared:
        raise PlanError(
            "disconnected tensor networks (outer products) are unsupported"
        )
    pairs = [(sub_a.index(ch), sub_b.index(ch)) for ch in shared]
    result = contract(a, b, pairs, **kw)
    keep_a = [ch for ch in sub_a if ch not in shared]
    keep_b = [ch for ch in sub_b if ch not in shared]
    new_sub = "".join(keep_a) + "".join(keep_b)
    # Sum out indices no longer referenced anywhere.
    dead = [m for m, ch in enumerate(new_sub) if ch not in still_needed]
    if dead:
        result = _sum_out_modes(result, dead)
        new_sub = "".join(ch for ch in new_sub if ch in still_needed)
    return result, new_sub


def einsum(
    subscripts: str,
    *operands: COOTensor,
    machine: MachineSpec = DESKTOP,
    method: str = "fastcc",
    optimize: str = "greedy",
) -> COOTensor:
    """Sparse einsum over COO tensors through the FaSTCC kernel.

    Examples
    --------
    >>> out = einsum("iak,kaj->ij", a, b)          # pairwise contraction
    >>> out = einsum("ij,jk,kl->il", a, b, c)      # 3-tensor network

    ``optimize`` is ``"greedy"`` (model-scored pair ordering) or
    ``"left"`` (left-to-right, for reproducible cost comparisons).
    """
    inputs, out_sub = parse_subscripts(subscripts, len(operands))
    if optimize not in ("greedy", "left"):
        raise PlanError(f"optimize must be greedy|left, got {optimize!r}")
    for sub, t in zip(inputs, operands):
        if len(sub) != t.ndim:
            raise ShapeError(
                f"operand with shape {t.shape} has {t.ndim} modes but "
                f"subscript {sub!r} names {len(sub)}"
            )
    # Validate shared extents up front.
    extent: dict[str, int] = {}
    for sub, t in zip(inputs, operands):
        for m, ch in enumerate(sub):
            if ch in extent and extent[ch] != t.shape[m]:
                raise ShapeError(
                    f"index {ch!r} has conflicting extents "
                    f"{extent[ch]} and {t.shape[m]}"
                )
            extent[ch] = t.shape[m]

    tensors = list(operands)
    subs = list(inputs)

    # Pre-reduce: sum out single-occurrence indices absent from the output.
    counts: dict[str, int] = {}
    for sub in subs:
        for ch in sub:
            counts[ch] = counts.get(ch, 0) + 1
    for k in range(len(tensors)):
        dead = [m for m, ch in enumerate(subs[k])
                if counts[ch] == 1 and ch not in out_sub]
        if dead:
            tensors[k] = _sum_out_modes(tensors[k], dead)
            subs[k] = "".join(ch for m, ch in enumerate(subs[k]) if m not in dead)

    kw = dict(machine=machine, method=method)
    while len(tensors) > 1:
        if optimize == "left":
            i, j = 0, 1
        else:
            best = None
            for i_ in range(len(tensors)):
                for j_ in range(i_ + 1, len(tensors)):
                    shared = any(ch in subs[j_] for ch in subs[i_])
                    cost = _pair_cost(tensors[i_], subs[i_], tensors[j_],
                                      subs[j_], machine)
                    key = (not shared, cost)
                    if best is None or key < best[0]:
                        best = (key, i_, j_)
            _, i, j = best
        still_needed = set(out_sub)
        for k, s in enumerate(subs):
            if k not in (i, j):
                still_needed |= set(s)
        result, new_sub = _contract_pair(
            tensors[i], subs[i], tensors[j], subs[j],
            still_needed=still_needed, **kw,
        )
        for k in sorted((i, j), reverse=True):
            del tensors[k]
            del subs[k]
        tensors.append(result)
        subs.append(new_sub)

    final, final_sub = tensors[0], subs[0]
    if set(final_sub) != set(out_sub):
        # Only possible when the output drops a kept index: sum it out.
        dead = [m for m, ch in enumerate(final_sub) if ch not in out_sub]
        final = _sum_out_modes(final, dead)
        final_sub = "".join(ch for ch in final_sub if ch in out_sub)
    if final_sub != out_sub:
        perm = [final_sub.index(ch) for ch in out_sub]
        final = final.permute_modes(perm)
    return final
