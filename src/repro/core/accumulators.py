"""Output tile accumulators (paper Section 4.2).

A tile accumulator receives the partial products of one output tile and
is then *drained* into the output COO list.  Two designs, selected by
the probabilistic model:

* :class:`DenseTileAccumulator` — the paper's dense tile structure:
  a value buffer ``nnz`` of ``T_L * T_R`` cells, an active-position
  array ``apos``, and a bitmask ``bm``.  An update test-and-sets the
  bit, appends fresh positions to ``apos``, and adds into the buffer —
  constant time, three random accesses into dense storage.  The drain
  walks only ``apos`` (not the whole tile), the design choice the drain
  ablation benchmark quantifies.

* :class:`SparseTileAccumulator` — an open-addressing hash table whose
  upsert is the paper's constant-expected-time update; used when a dense
  tile would be mostly empty.

Both accept *batches* of flattened intra-tile positions, matching the
vectorized kernels.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.backends.base import KernelBackend
from repro.errors import ConfigError, ShapeError, WorkspaceLimitError
from repro.hashing.open_addressing import OpenAddressingMap
from repro.util.arrays import INDEX_DTYPE, VALUE_DTYPE


def _default_backend() -> KernelBackend:
    from repro.backends.registry import get_backend

    return get_backend("numpy")

__all__ = [
    "DenseTileAccumulator",
    "SparseTileAccumulator",
    "make_accumulator",
    "DEFAULT_DENSE_CELL_GUARD",
]

#: Refuse dense tiles above this cell count; reproduces the paper's DNF
#: entries (Table 3, NIPS mode 2) as a clean error instead of thrashing.
DEFAULT_DENSE_CELL_GUARD = 1 << 26


class DenseTileAccumulator:
    """Dense tile: value buffer + active-position list + bitmask.

    ``bitmask="bool"`` (default) tracks activity with a byte-per-cell
    bool array — fastest in NumPy; ``bitmask="packed"`` uses the paper's
    exact 1-bit-per-cell layout (``T_L * T_R / 8`` bytes, Section 4.2)
    via :class:`repro.util.bitmask.PackedBitmask`.  Both are covered by
    the equivalence tests.
    """

    __slots__ = ("tile_l", "tile_r", "buf", "bm", "apos", "_napos", "counters",
                 "_packed", "trace", "backend")

    def __init__(
        self,
        tile_l: int,
        tile_r: int,
        *,
        counters: Counters | None = None,
        cell_guard: int = DEFAULT_DENSE_CELL_GUARD,
        bitmask: str = "bool",
        trace=None,
        backend: KernelBackend | None = None,
    ):
        cells = int(tile_l) * int(tile_r)
        if cells > cell_guard:
            raise WorkspaceLimitError(
                f"dense tile of {tile_l}x{tile_r} = {cells} cells exceeds the "
                f"memory guard ({cell_guard}); the model should have chosen a "
                "sparse accumulator"
            )
        if bitmask not in ("bool", "packed"):
            raise ConfigError(f"bitmask must be bool|packed, got {bitmask!r}")
        self.tile_l = int(tile_l)
        self.tile_r = int(tile_r)
        self.backend = backend if backend is not None else _default_backend()
        self.buf = self.backend.zeros(cells, dtype=VALUE_DTYPE)
        self._packed = bitmask == "packed"
        if self._packed:
            from repro.util.bitmask import PackedBitmask

            self.bm = PackedBitmask(cells)
        else:
            self.bm = np.zeros(cells, dtype=bool)
        self.apos = np.empty(min(cells, 1024), dtype=INDEX_DTYPE)
        self._napos = 0
        self.counters = ensure_counters(counters)
        self.counters.note_workspace(cells)
        self.trace = trace

    @property
    def cells(self) -> int:
        return self.buf.shape[0]

    @property
    def nnz(self) -> int:
        """Active (touched) positions so far."""
        return self._napos

    def update_batch(self, positions: np.ndarray, values: np.ndarray) -> None:
        """Accumulate ``values`` at flattened intra-tile ``positions``.

        The scatter itself (duplicate handling, the batch-size
        heuristic) lives in the backend's ``scatter_accumulate``; this
        method keeps the bookkeeping: fresh positions — bit not yet
        set — are appended to ``apos`` exactly once even when repeated
        within the batch.
        """
        positions = np.asarray(positions, dtype=INDEX_DTYPE)
        values = np.asarray(values, dtype=VALUE_DTYPE)
        if positions.shape != values.shape:
            raise ShapeError("positions and values must be equal length")
        if positions.size == 0:
            return
        self.counters.accum_updates += positions.shape[0]
        if self.trace is not None:
            self.trace.record(positions)
        if self._packed:
            self.backend.scatter_accumulate(self.buf, positions, values)
            fresh_mask = self.bm.test_and_set(positions)
            if fresh_mask.any():
                self._append_apos(positions[fresh_mask])
            return
        touched = self.backend.scatter_accumulate(
            self.buf, positions, values, return_touched=True
        )
        if not self.backend.native_numpy:
            touched = np.asarray(
                self.backend.to_numpy(touched), dtype=INDEX_DTYPE
            )
        fresh = touched[~self.bm[touched]]
        if fresh.shape[0]:
            self.bm[fresh] = True
            self._append_apos(fresh)

    def _append_apos(self, fresh: np.ndarray) -> None:
        need = self._napos + fresh.shape[0]
        if need > self.apos.shape[0]:
            new_cap = max(need, 2 * self.apos.shape[0])
            grown = np.empty(min(new_cap, self.cells), dtype=INDEX_DTYPE)
            grown[: self._napos] = self.apos[: self._napos]
            self.apos = grown
        self.apos[self._napos : need] = fresh
        self._napos = need

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Extract ``(positions, values)`` by walking only ``apos``.

        Iterates the active nonzeros instead of the whole ``T_L * T_R``
        area (Section 4.2's fast drain).
        """
        active = self.apos[: self._napos]
        return active.copy(), self._read_buf(active)

    def _read_buf(self, positions: np.ndarray) -> np.ndarray:
        """Gather buffer cells as a fresh NumPy value array."""
        if self.backend.native_numpy:
            return self.buf[positions].copy()
        gathered = self.backend.gather(self.buf, positions)
        return np.array(self.backend.to_numpy(gathered), dtype=VALUE_DTYPE)

    def drain_full_scan(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain by scanning the entire tile (ablation baseline only)."""
        mask = self.bm.to_bool_array() if self._packed else self.bm
        positions = np.flatnonzero(mask).astype(INDEX_DTYPE)
        return positions, self._read_buf(positions)

    def reset(self) -> None:
        """Clear for reuse on the next tile (clears only touched cells)."""
        active = self.apos[: self._napos]
        self.buf[active] = 0.0
        if self._packed:
            self.bm.clear(active)
        else:
            self.bm[active] = False
        self._napos = 0


class SparseTileAccumulator:
    """Sparse tile: an open-addressing upsert table."""

    __slots__ = ("tile_l", "tile_r", "_table", "counters", "trace", "backend")

    def __init__(
        self,
        tile_l: int,
        tile_r: int,
        *,
        expected_nnz: int = 64,
        counters: Counters | None = None,
        trace=None,
        backend: KernelBackend | None = None,
    ):
        self.tile_l = int(tile_l)
        self.tile_r = int(tile_r)
        self.counters = ensure_counters(counters)
        self.backend = backend if backend is not None else _default_backend()
        self._table = OpenAddressingMap(
            max(8, int(expected_nnz / 0.7) + 1), counters=self.counters
        )
        self.trace = trace

    @property
    def nnz(self) -> int:
        return len(self._table)

    def update_batch(self, positions: np.ndarray, values: np.ndarray) -> None:
        """Upsert: insert-or-add each (position, value) pair."""
        positions = np.asarray(positions, dtype=INDEX_DTYPE)
        self.counters.accum_updates += positions.shape[0]
        if self.trace is not None:
            self.trace.record(positions)
        if not self.backend.native_numpy:
            # Pre-combine on the foreign substrate, then upsert the
            # (now duplicate-free) partial sums into the host table.
            uniq, sums = self.backend.hash_accumulate(
                self.backend.asarray(positions), self.backend.asarray(values)
            )
            positions = np.asarray(
                self.backend.to_numpy(uniq), dtype=INDEX_DTYPE
            )
            values = np.asarray(self.backend.to_numpy(sums), dtype=VALUE_DTYPE)
        self._table.upsert_batch(positions, values)
        self.counters.note_workspace(self._table.capacity)

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Extract ``(positions, values)`` by iterating the hash table."""
        return self._table.items_sorted()

    def reset(self) -> None:
        self._table = OpenAddressingMap(
            max(8, self._table.capacity // 2), counters=self.counters
        )


def make_accumulator(
    kind: str,
    tile_l: int,
    tile_r: int,
    *,
    expected_nnz: int = 64,
    counters: Counters | None = None,
    cell_guard: int = DEFAULT_DENSE_CELL_GUARD,
    trace=None,
    backend: KernelBackend | None = None,
):
    """Factory dispatching on the plan's accumulator kind."""
    if kind == "dense":
        return DenseTileAccumulator(
            tile_l, tile_r, counters=counters, cell_guard=cell_guard,
            trace=trace, backend=backend,
        )
    if kind == "sparse":
        return SparseTileAccumulator(
            tile_l, tile_r, expected_nnz=expected_nnz, counters=counters,
            trace=trace, backend=backend,
        )
    raise ConfigError(f"unknown accumulator kind {kind!r}")
