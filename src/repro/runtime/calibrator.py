"""Cost-model calibration from measured contractions.

The analytic model (`repro.machine.cost_model`) converts data-access
counts into time through hard-coded per-event costs — assumptions about
a machine nobody measured.  The calibrator closes the loop SparseAuto-
style: every instrumented run contributes one ``(access counts,
measured kernel seconds)`` sample, and :meth:`CostCalibrator.fit`
refits the :class:`~repro.machine.cost_model.CostWeights` so predictions
converge toward the observed host instead of the DESKTOP/SERVER specs.

The fit is evaluated by :meth:`CostCalibrator.relative_errors`: the
predicted-vs-measured error under the calibrated weights must shrink
against the uncalibrated baseline (asserted by the runtime tests, not
just logged).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.counters import Counters
from repro.core.plan import Plan
from repro.core.tiled_co import ContractionStats
from repro.machine.cost_model import (
    DEFAULT_WEIGHTS,
    AccessCostModel,
    CostWeights,
    ProblemShape,
    fit_cost_weights,
)
from repro.machine.specs import MachineSpec

__all__ = ["CostSample", "CostCalibrator"]


@dataclass(frozen=True)
class CostSample:
    """One measured kernel execution, reduced to model terms."""

    queries: float
    data_volume: float
    accum_updates: float
    workspace_fits: bool
    seconds: float

    @property
    def features(self) -> tuple[float, float, float, bool]:
        return (self.queries, self.data_volume, self.accum_updates,
                self.workspace_fits)

    @property
    def usable(self) -> bool:
        """Finite, positive-time, non-empty — fit-worthy.

        A ``nan`` from a broken clock or an ``inf`` from a counter
        overflow must never reach the least squares: one such row turns
        every fitted weight into ``nan``/``inf`` and the *calibrated*
        model then misprices every plan until restart.
        """
        return (
            math.isfinite(self.seconds) and self.seconds > 0
            and math.isfinite(self.queries)
            and math.isfinite(self.data_volume)
            and math.isfinite(self.accum_updates)
            and (self.queries > 0 or self.data_volume > 0
                 or self.accum_updates > 0)
        )


@dataclass
class CostCalibrator:
    """Accumulates measured runs and refits the cost-model constants.

    Parameters
    ----------
    machine:
        The spec whose assumptions are being calibrated (used for the
        workspace-fits classification of each sample).
    base:
        Starting weights; defaults to the model's hard-coded constants.
    refit_every:
        Automatic refit cadence: after every N observed samples the
        calibrated weights are recomputed.  ``fit()`` can always be
        called explicitly.
    """

    machine: MachineSpec
    base: CostWeights = DEFAULT_WEIGHTS
    refit_every: int = 8
    samples: list[CostSample] = field(default_factory=list)
    weights: CostWeights | None = None

    def observe(
        self,
        plan: Plan,
        stats: ContractionStats,
        counters: Counters,
        *,
        seconds: float | None = None,
    ) -> CostSample:
        """Record one executed contraction.

        ``counters`` must cover exactly this run (the runtime hands each
        call a private tally).  ``seconds`` defaults to the measured
        kernel phase (co-iteration + accumulation + drain), the part the
        access-cost model actually describes.
        """
        measured = stats.kernel_seconds if seconds is None else float(seconds)
        ws_cells = float(plan.tile_l) * plan.tile_r
        fits = ws_cells * self.machine.word_bytes <= self.machine.l3_bytes_per_core
        sample = CostSample(
            queries=float(counters.hash_queries),
            data_volume=float(counters.data_volume),
            accum_updates=float(counters.accum_updates),
            workspace_fits=fits,
            seconds=measured,
        )
        if sample.usable:
            self.samples.append(sample)
            if self.refit_every and len(self.samples) % self.refit_every == 0:
                self.fit()
        return sample

    def fit(self) -> CostWeights:
        """Refit weights from all recorded samples (see module doc).

        Non-usable samples (non-finite timings or counters, appended to
        ``samples`` directly rather than through :meth:`observe`) are
        skipped, never fitted — a corrupt row must not poison the
        weights every later prediction uses.
        """
        usable = [s for s in self.samples if s.usable]
        if not usable:
            raise ValueError("no usable samples recorded; nothing to fit")
        self.weights = fit_cost_weights(
            [s.features for s in usable],
            [s.seconds for s in usable],
            base=self.base,
        )
        return self.weights

    @property
    def calibrated(self) -> CostWeights:
        """Best current weights: fitted if available, else the base."""
        return self.weights if self.weights is not None else self.base

    # -- evaluation -----------------------------------------------------

    def _predicted(self, sample: CostSample, weights: CostWeights) -> float:
        return weights.seconds(
            sample.queries, sample.data_volume, sample.accum_updates,
            workspace_fits=sample.workspace_fits,
        )

    def relative_errors(self, weights: CostWeights | None = None) -> list[float]:
        """Per-sample ``|predicted - measured| / measured`` under ``weights``
        (default: the calibrated weights)."""
        weights = weights if weights is not None else self.calibrated
        return [
            abs(self._predicted(s, weights) - s.seconds) / s.seconds
            for s in self.samples
            if s.usable
        ]

    def mean_relative_error(self, weights: CostWeights | None = None) -> float:
        errors = self.relative_errors(weights)
        return sum(errors) / len(errors) if errors else 0.0

    def improvement(self) -> tuple[float, float]:
        """``(uncalibrated_error, calibrated_error)`` over the samples."""
        return (
            self.mean_relative_error(self.base),
            self.mean_relative_error(self.calibrated),
        )

    def model_for(self, shape: ProblemShape) -> AccessCostModel:
        """An :class:`AccessCostModel` carrying the calibrated weights."""
        return AccessCostModel(shape, self.machine, weights=self.calibrated)
