"""Adaptive contraction runtime (serving layer).

Wraps the one-shot :func:`repro.core.contraction.contract` pipeline
with the pieces a repeated-traffic workload needs:

* :class:`PlanCache` — LRU cache of Algorithm 7 decisions keyed by the
  problem's structural signature, optionally persisted to JSON;
* :class:`CostCalibrator` — refits the analytic cost model's constants
  from measured runs, so predictions track the observed machine;
* :class:`ContractionRuntime` / :class:`BatchExecutor` — cache-aware
  execution that reuses linearized operands and tiled tables across
  calls sharing an operand, reporting hit rates through the standard
  :class:`~repro.analysis.counters.Counters`.

Quick start::

    from repro.runtime import ContractionRuntime

    rt = ContractionRuntime(cache_path="plans.json")
    out1 = rt.contract(a, b, pairs=[(2, 2)])   # cold: plans + builds
    out2 = rt.contract(a, b, pairs=[(2, 2)])   # warm: all reused
    print(rt.metrics())
    rt.flush()                                  # persist plans
"""

from repro.runtime.calibrator import CostCalibrator, CostSample
from repro.runtime.executor import (
    BatchExecutor,
    BatchItem,
    BatchReport,
    ContractionRuntime,
    RunRecord,
)
from repro.runtime.plan_cache import CachedPlan, PlanCache
from repro.runtime.signature import ProblemSignature, signature_for

__all__ = [
    "ContractionRuntime",
    "BatchExecutor",
    "BatchItem",
    "BatchReport",
    "RunRecord",
    "PlanCache",
    "CachedPlan",
    "CostCalibrator",
    "CostSample",
    "ProblemSignature",
    "signature_for",
]
