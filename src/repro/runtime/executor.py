"""The adaptive contraction runtime: cached plans, reused tables,
batched execution, and measurement-driven calibration.

``contract()`` recomputes everything on every call: it linearizes both
operands, runs Algorithm 7, builds both operands' tiled hash tables,
and only then contracts.  In a serving workload the same structural
problem — and frequently the very same operand tensor — recurs over and
over (the DLPNO pipeline contracts ``TE_vv`` against two different
partners back to back), so the runtime keeps three caches:

* a :class:`~repro.runtime.plan_cache.PlanCache` keyed by the problem's
  structural signature (skips Algorithm 7 on recurrence, optionally
  persisted across processes);
* an operand cache holding each recently-seen tensor's linearized form
  and tiled tables per (role, tile size) — a repeat call, or a batched
  neighbor sharing the operand, skips linearization *and* table
  construction;
* a :class:`~repro.runtime.calibrator.CostCalibrator` fed by every
  instrumented run, refitting the cost model toward the observed host.

All reuse is observable through the standard
:class:`~repro.analysis.counters.Counters` fields
(``plan_cache_hits``/``misses``, ``table_reuse_hits``/``table_builds``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.counters import Counters
from repro.backends.base import KernelBackend
from repro.backends.registry import resolve_backend
from repro.core.contraction import contract
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec, LinearizedOperand
from repro.core.tiled_co import (
    TiledTables,
    build_tiled_tables,
    tiled_co_contract,
)
from repro.machine.specs import DESKTOP, MachineSpec
from repro.runtime.calibrator import CostCalibrator
from repro.runtime.plan_cache import PlanCache
from repro.runtime.signature import signature_for
from repro.tensors.coo import COOTensor

__all__ = [
    "ContractionRuntime",
    "BatchExecutor",
    "BatchItem",
    "BatchReport",
    "RunRecord",
]


class _OperandEntry:
    """Cached derived state of one live tensor."""

    __slots__ = ("tensor", "linearized", "tables", "seconds_saved_source")

    def __init__(self, tensor: COOTensor):
        self.tensor = tensor
        # lin_key -> (LinearizedOperand, linearize_seconds)
        self.linearized: dict = {}
        # (lin_key, tile) -> (TiledTables, build_seconds)
        self.tables: dict = {}


class _OperandCache:
    """LRU over recently-seen operand tensors, by identity.

    Keys are ``id(tensor)``; each entry pins a strong reference to its
    tensor so a recycled address can never alias a dead one.  Hitting
    requires ``entry.tensor is tensor`` — identity, not equality: COO
    comparison would cost as much as the linearization being skipped.

    A *pinned* entry (refcounted, see :meth:`pin`/:meth:`unpin`) is
    exempt from LRU eviction: a prepared network execution pins its
    hoisted operands so churn from per-step intermediates cannot evict
    the tables it spent time building.  Pinned entries may carry the
    cache above ``maxsize``; normal eviction resumes once they unpin.
    """

    def __init__(self, maxsize: int = 8):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[int, _OperandEntry] = OrderedDict()
        self._pins: dict[int, int] = {}
        # The serve worker pool shares one runtime: LRU reordering and
        # eviction must not interleave across threads.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _evict_locked(self) -> None:
        while len(self._entries) > self.maxsize:
            victim = next(
                (k for k in self._entries if not self._pins.get(k)), None
            )
            if victim is None:  # everything oversize is pinned
                break
            del self._entries[victim]

    def entry(self, tensor: COOTensor) -> _OperandEntry:
        key = id(tensor)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.tensor is tensor:
                self._entries.move_to_end(key)
                return entry
            entry = _OperandEntry(tensor)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._evict_locked()
            return entry

    def pin(self, tensor: COOTensor) -> _OperandEntry:
        """Fetch (or create) the entry and raise its pin refcount."""
        key = id(tensor)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.tensor is not tensor:
                entry = _OperandEntry(tensor)
                self._entries[key] = entry
            self._entries.move_to_end(key)
            self._pins[key] = self._pins.get(key, 0) + 1
            return entry

    def unpin(self, tensor: COOTensor) -> None:
        """Drop one pin; at refcount zero the entry rejoins normal LRU."""
        key = id(tensor)
        with self._lock:
            count = self._pins.get(key, 0)
            if count > 1:
                self._pins[key] = count - 1
            else:
                self._pins.pop(key, None)
                self._evict_locked()

    def pinned_count(self) -> int:
        with self._lock:
            return len(self._pins)

    def invalidate(self, tensor: COOTensor) -> bool:
        """Drop one tensor's cached state, pinned or not.

        The streaming layer calls this when a delta replaces a tensor:
        the old object's linearized forms and tiled tables describe a
        snapshot that no longer exists, so keeping them (even pinned)
        would serve stale reads.  Returns whether an entry was dropped.
        """
        key = id(tensor)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.tensor is not tensor:
                return False
            del self._entries[key]
            self._pins.pop(key, None)
            return True

    def clear(self) -> None:
        """Drop every entry, pinned or not (explicit maintenance)."""
        with self._lock:
            self._entries.clear()
            self._pins.clear()


def _lin_key(role: str, spec: ContractionSpec) -> tuple:
    """What the linearized form of one operand depends on.

    The left mapping is a function of the left shape and the sequence of
    contracted left modes; ditto on the right (the contraction-index
    linearizer's extents are the paired extents, equal on both sides by
    construction).  Two contractions agreeing on this key produce
    byte-identical linearizations for that operand.
    """
    if role == "L":
        return ("L", spec.left_shape, tuple(a for a, _ in spec.pairs))
    return ("R", spec.right_shape, tuple(b for _, b in spec.pairs))


@dataclass
class RunRecord:
    """What the runtime did for one contraction call."""

    name: str
    seconds: float
    output_nnz: int
    plan_source: str  # "planner" | "cache"
    accumulator: str
    tile: int
    tables_reused: tuple[bool, bool]
    seconds_saved: float  # measured cost of the skipped phases
    phase_seconds: dict = field(default_factory=dict)
    backend: str = "numpy"  # kernel backend that executed the call


class ContractionRuntime:
    """Adaptive wrapper around :func:`repro.core.contraction.contract`.

    Parameters
    ----------
    machine:
        Platform model used for planning (and calibrated against).
    plan_cache:
        A shared :class:`PlanCache`; built fresh when omitted
        (``cache_path``/``cache_size`` configure the private one).
    cache_path:
        JSON persistence file for the private plan cache.
    calibrate:
        Feed every run into the cost calibrator (cheap; on by default).
    n_workers:
        Worker threads handed to the kernel.
    operand_cache_size:
        How many distinct operand tensors keep their linearized forms
        and tiled tables alive.
    backend:
        Default kernel backend for every call: a registered name,
        ``"auto"`` (per-signature policy), an instance, or ``None``
        (``$REPRO_BACKEND`` → ``numpy``).  Overridable per call.
    """

    def __init__(
        self,
        machine: MachineSpec = DESKTOP,
        *,
        plan_cache: PlanCache | None = None,
        cache_path=None,
        cache_size: int = 128,
        calibrate: bool = True,
        n_workers: int = 1,
        operand_cache_size: int = 8,
        backend: "str | KernelBackend | None" = None,
    ):
        self.machine = machine
        self.backend = backend
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(maxsize=cache_size, path=cache_path)
        )
        self.calibrator = CostCalibrator(machine=machine) if calibrate else None
        self.n_workers = int(n_workers)
        self.counters = Counters()
        self.records: list[RunRecord] = []
        self._operands = _OperandCache(maxsize=operand_cache_size)
        # Online autotuner hook; set via OnlineTuner.attach(runtime).
        # When present, default-parameter calls may be routed to a
        # challenger plan and every measured outcome is fed back.
        self.tuner = None

    # -- cache-aware pipeline pieces ------------------------------------

    def _linearized(
        self, tensor: COOTensor, role: str, spec: ContractionSpec
    ) -> tuple[LinearizedOperand, float]:
        """The deduplicated linearized operand, cached per tensor."""
        entry = self._operands.entry(tensor)
        key = _lin_key(role, spec)
        hit = entry.linearized.get(key)
        if hit is not None:
            return hit[0], 0.0
        t0 = time.perf_counter()
        lin = (
            spec.linearize_left(tensor) if role == "L" else spec.linearize_right(tensor)
        )
        lin = lin.sum_duplicates()
        dt = time.perf_counter() - t0
        entry.linearized[key] = (lin, dt)
        return lin, dt

    def _tables(
        self,
        tensor: COOTensor,
        role: str,
        spec: ContractionSpec,
        operand: LinearizedOperand,
        tile: int,
        counters: Counters,
    ) -> tuple[TiledTables, bool, float]:
        """Tiled tables for one operand at one tile size, cached.

        Returns ``(tables, reused, seconds_saved)`` where
        ``seconds_saved`` is the measured construction (plus
        linearization) cost this call skipped.
        """
        entry = self._operands.entry(tensor)
        key = (_lin_key(role, spec), int(tile))
        hit = entry.tables.get(key)
        if hit is not None:
            counters.table_reuse_hits += 1
            tables, build_seconds = hit
            lin_seconds = entry.linearized[key[0]][1]
            return tables, True, build_seconds + lin_seconds
        t0 = time.perf_counter()
        tables = build_tiled_tables(
            operand, tile, n_workers=self.n_workers, counters=counters
        )
        dt = time.perf_counter() - t0
        entry.tables[key] = (tables, dt)
        counters.table_builds += 1
        return tables, False, 0.0

    # -- the public call ------------------------------------------------

    def contract(
        self,
        left: COOTensor,
        right: COOTensor,
        pairs: Sequence[tuple[int, int]],
        *,
        name: str = "",
        accumulator: str = "auto",
        tile_size: int | None = None,
        counters: Counters | None = None,
        return_stats: bool = False,
        return_record: bool = False,
        canonical: bool = True,
        backend: "str | KernelBackend | None" = None,
    ):
        """Contract through the plan/table caches (FaSTCC method only).

        Mirrors :func:`repro.core.contraction.contract`'s interface and
        output; the difference is where the plan and the tiled tables
        come from.  ``return_record`` appends this call's
        :class:`RunRecord` to the return value — under a multi-threaded
        caller (the serve worker pool) this is the only race-free way
        to read the record, since ``self.records`` interleaves calls.
        ``backend`` overrides the runtime's default kernel backend for
        this call (``"auto"`` resolves from the problem signature).
        """
        call_counters = Counters()
        t_call = time.perf_counter()

        sig = signature_for(
            left, right, pairs, self.machine,
            accumulator=accumulator, tile_size=tile_size,
        )

        # Autotuning applies only to *championable* calls — ones where
        # every decision was left to the model.  A caller-pinned
        # accumulator/tile/backend is an explicit instruction, not a
        # decision the bandit owns.
        championable = (
            self.tuner is not None
            and accumulator == "auto"
            and tile_size is None
            and backend is None
        )
        champion_sig = sig
        explored_arm = None
        if championable:
            explored = self.tuner.route_pairwise(sig)
            if explored is not None:
                explored_arm = explored.arm_id
                accumulator = explored.accumulator
                tile_size = explored.tile_size
                backend = explored.backend
                if accumulator != "auto" or tile_size is not None:
                    # Re-key the call: the explored plan caches under
                    # its own signature, never the champion's entry.
                    sig = signature_for(
                        left, right, pairs, self.machine,
                        accumulator=accumulator, tile_size=tile_size,
                    )
            else:
                backend = self.tuner.preferred_backend(sig)

        kernel_backend = resolve_backend(
            backend if backend is not None else self.backend, signature=sig
        )
        cached = self.plan_cache.get(sig)
        spec = ContractionSpec(left.shape, right.shape, pairs)

        left_op, lin_l_s = self._linearized(left, "L", spec)
        right_op, lin_r_s = self._linearized(right, "R", spec)

        if cached is not None:
            plan = cached.materialize(spec)
            call_counters.plan_cache_hits += 1
            plan_source = "cache"
        else:
            plan = choose_plan(
                spec, left_op.nnz, right_op.nnz, self.machine,
                accumulator=accumulator, tile_size=tile_size,
            )
            self.plan_cache.put(sig, plan)
            call_counters.plan_cache_misses += 1
            plan_source = "planner"

        if kernel_backend.has_native_path(left_op, right_op, plan):
            # The backend will run the whole contraction itself; tiled
            # tables would be built and then ignored, so skip them.
            reused_l = reused_r = False
            saved_l = saved_r = 0.0
            l_idx, r_idx, values, stats = tiled_co_contract(
                left_op, right_op, plan,
                n_workers=self.n_workers, counters=call_counters,
                backend=kernel_backend,
            )
        else:
            hl, reused_l, saved_l = self._tables(
                left, "L", spec, left_op, plan.tile_l, call_counters
            )
            hr, reused_r, saved_r = self._tables(
                right, "R", spec, right_op, plan.tile_r, call_counters
            )

            l_idx, r_idx, values, stats = tiled_co_contract(
                left_op, right_op, plan,
                n_workers=self.n_workers, counters=call_counters,
                tables=(hl, hr), backend=kernel_backend,
            )

        t0 = time.perf_counter()
        out = spec.delinearize_output(l_idx, r_idx, values)
        if canonical:
            out = out.sum_duplicates()
        stats.phase_seconds["delinearize"] = time.perf_counter() - t0
        stats.phase_seconds["linearize"] = lin_l_s + lin_r_s
        stats.output_nnz = out.nnz

        if self.calibrator is not None:
            self.calibrator.observe(plan, stats, call_counters)

        record = RunRecord(
            name=name,
            seconds=time.perf_counter() - t_call,
            output_nnz=out.nnz,
            plan_source=plan_source,
            accumulator=plan.accumulator,
            tile=plan.tile_l,
            tables_reused=(reused_l, reused_r),
            seconds_saved=saved_l + saved_r,
            phase_seconds=dict(stats.phase_seconds),
            backend=kernel_backend.name,
        )
        self.records.append(record)
        self.counters.merge(call_counters)
        if counters is not None:
            counters.merge(call_counters)

        if championable:
            self.tuner.observe_pairwise(
                champion_sig, explored_arm, record.seconds
            )

        if return_stats and return_record:
            return out, stats, record
        if return_stats:
            return out, stats
        if return_record:
            return out, record
        return out

    # -- preparation (hoisted, pinned operand state) --------------------

    def prepare_pairwise(
        self,
        left: COOTensor,
        right: COOTensor,
        pairs: Sequence[tuple[int, int]],
        *,
        accumulator: str = "auto",
        tile_size: int | None = None,
        backend: "str | KernelBackend | None" = None,
        pin: bool = True,
    ) -> dict:
        """Precompute everything invariant about one pairwise problem.

        Linearizes both operands, resolves (and caches) the Algorithm 7
        plan, and builds both tiled tables — exactly the artifacts a
        later :meth:`contract` on the same tensors would build — then
        pins both operands so LRU churn cannot evict them.  Callers
        must balance every pin with :meth:`unpin_operand`.
        """
        sig = signature_for(
            left, right, pairs, self.machine,
            accumulator=accumulator, tile_size=tile_size,
        )
        kernel_backend = resolve_backend(
            backend if backend is not None else self.backend, signature=sig
        )
        spec = ContractionSpec(left.shape, right.shape, pairs)
        if pin:
            self._operands.pin(left)
            self._operands.pin(right)
        left_op, _ = self._linearized(left, "L", spec)
        right_op, _ = self._linearized(right, "R", spec)
        cached = self.plan_cache.get(sig)
        if cached is not None:
            plan = cached.materialize(spec)
        else:
            plan = choose_plan(
                spec, left_op.nnz, right_op.nnz, self.machine,
                accumulator=accumulator, tile_size=tile_size,
            )
            self.plan_cache.put(sig, plan)
        built = 0
        if not kernel_backend.has_native_path(left_op, right_op, plan):
            counters = Counters()
            self._tables(left, "L", spec, left_op, plan.tile_l, counters)
            self._tables(right, "R", spec, right_op, plan.tile_r, counters)
            built = counters.table_builds
            self.counters.merge(counters)
        return {
            "tables_built": built,
            "backend": kernel_backend.name,
            "pinned": bool(pin),
        }

    def prepare_operand(
        self,
        tensor: COOTensor,
        role: str,
        other_shape: Sequence[int],
        pairs: Sequence[tuple[int, int]],
        *,
        pin: bool = True,
    ) -> None:
        """Pre-linearize one side when its partner is not yet known.

        The linearized form depends only on this side's shape and the
        contracted-mode sequence (see :func:`_lin_key`), so it can be
        hoisted even when the partner is an intermediate that will only
        exist mid-execution; the partner's *shape* is statically known
        from the plan.  Tables are left to first execution (their tile
        size depends on both operands' nnz) — pinning keeps them alive
        once built.
        """
        if role == "L":
            spec = ContractionSpec(tensor.shape, tuple(other_shape), pairs)
        else:
            spec = ContractionSpec(tuple(other_shape), tensor.shape, pairs)
        if pin:
            self._operands.pin(tensor)
        self._linearized(tensor, role, spec)

    def unpin_operand(self, tensor: COOTensor) -> None:
        """Balance one :meth:`prepare_pairwise`/:meth:`prepare_operand`
        pin; at refcount zero the operand rejoins normal LRU."""
        self._operands.unpin(tensor)

    # -- maintenance ----------------------------------------------------

    def clear_operand_cache(self) -> None:
        """Drop cached linearizations and tables (plans are kept)."""
        self._operands.clear()

    def invalidate_operand(self, tensor: COOTensor) -> bool:
        """Drop one tensor's cached linearizations and tiled tables.

        The streaming invalidation hook: after a delta replaces a
        tensor object, its cached derived state must not be served
        again (pins included — a pinned stale table is still stale).
        Returns whether anything was dropped.
        """
        return self._operands.invalidate(tensor)

    def flush(self):
        """Persist the plan cache to its configured path, if any."""
        return self.plan_cache.flush()

    def warm_start(self, path) -> int:
        """Merge persisted Algorithm 7 decisions into the plan cache.

        The cross-process half of plan-cache reuse: a shard (or any
        fresh runtime) loads another process's exported cache and its
        first call on a covered signature is already warm.  Returns the
        number of entries in the file; corruption is a recorded no-op.
        """
        return self.plan_cache.load(path)

    def export_plans(self, path) -> str:
        """Write the current plan cache to ``path`` (atomic JSON)."""
        return self.plan_cache.save(path)

    def metrics(self) -> dict:
        """Aggregate runtime metrics (counter-derived, JSON-friendly)."""
        c = self.counters
        plan_total = c.plan_cache_hits + c.plan_cache_misses
        table_total = c.table_reuse_hits + c.table_builds
        measured = sum(r.seconds for r in self.records)
        saved = sum(r.seconds_saved for r in self.records)
        return {
            "calls": len(self.records),
            "plan_cache_hits": c.plan_cache_hits,
            "plan_cache_misses": c.plan_cache_misses,
            "plan_hit_rate": c.plan_cache_hits / plan_total if plan_total else 0.0,
            "table_reuse_hits": c.table_reuse_hits,
            "table_builds": c.table_builds,
            "table_reuse_rate": (
                c.table_reuse_hits / table_total if table_total else 0.0
            ),
            "operands_pinned": self._operands.pinned_count(),
            "measured_seconds": measured,
            "seconds_saved": saved,
            "estimated_speedup": (
                (measured + saved) / measured if measured > 0 else 1.0
            ),
        }


@dataclass(frozen=True)
class BatchItem:
    """One contraction in a batched sequence."""

    left: COOTensor
    right: COOTensor
    pairs: tuple[tuple[int, int], ...]
    name: str = ""

    @classmethod
    def coerce(cls, item) -> "BatchItem":
        if isinstance(item, BatchItem):
            return item
        left, right, pairs = item
        return cls(left, right, tuple((int(a), int(b)) for a, b in pairs))


@dataclass
class BatchReport:
    """Per-item records plus aggregate reuse metrics for one batch."""

    records: list[RunRecord]
    metrics: dict
    outputs: list[COOTensor]

    def summary(self) -> str:
        m = self.metrics
        lines = []
        for r in self.records:
            reuse = "+".join(
                side for side, hit in zip("LR", r.tables_reused) if hit
            ) or "-"
            lines.append(
                f"  {r.name or '(unnamed)':<12} plan={r.plan_source:<7} "
                f"acc={r.accumulator:<6} tables_reused={reuse:<3} "
                f"nnz={r.output_nnz:<9} {r.seconds:8.4f}s"
                + (f" (saved {r.seconds_saved:.4f}s)" if r.seconds_saved else "")
            )
        lines.append(
            f"plan cache: {m['plan_cache_hits']} hits / "
            f"{m['plan_cache_misses']} misses "
            f"(hit rate {m['plan_hit_rate']:.0%})"
        )
        lines.append(
            f"tiled tables: {m['table_reuse_hits']} reused / "
            f"{m['table_builds']} built "
            f"(reuse rate {m['table_reuse_rate']:.0%})"
        )
        lines.append(
            f"batch time {m['measured_seconds']:.4f}s, work skipped "
            f"{m['seconds_saved']:.4f}s (estimated speedup "
            f"{m['estimated_speedup']:.2f}x)"
        )
        return "\n".join(lines)


class BatchExecutor:
    """Run a sequence of contractions through one shared runtime.

    Consecutive items that share an operand tensor (the DLPNO pipeline's
    shape: ``TE_vv`` feeds both the ``vvoo`` and ``vvov`` integrals)
    reuse its linearized form and tiled tables; recurring structural
    problems reuse their plans.  The report carries per-item records and
    the aggregate hit-rate/speedup metrics.
    """

    def __init__(self, runtime: ContractionRuntime | None = None, **runtime_kw):
        self.runtime = (
            runtime if runtime is not None else ContractionRuntime(**runtime_kw)
        )

    def run(self, items: Sequence) -> BatchReport:
        items = [BatchItem.coerce(it) for it in items]
        start = len(self.runtime.records)
        outputs = []
        for k, item in enumerate(items):
            out = self.runtime.contract(
                item.left, item.right, item.pairs,
                name=item.name or f"step{k}",
            )
            outputs.append(out)
        records = self.runtime.records[start:]
        return BatchReport(
            records=records, metrics=self.runtime.metrics(), outputs=outputs
        )


# Re-exported convenience: a one-shot reference run without any caching,
# used by benchmarks to compare against the runtime path.
def cold_contract(left, right, pairs, *, machine=DESKTOP, **kw):
    """Plain ``contract`` call (no runtime caches); benchmark baseline."""
    return contract(left, right, pairs, machine=machine, **kw)
