"""LRU plan cache with optional JSON persistence.

Maps :class:`~repro.runtime.signature.ProblemSignature` keys to frozen
Algorithm 7 decisions.  A hit skips planning entirely; entries survive
across processes through :meth:`PlanCache.save` / the ``path`` argument
(a serving process warms from the previous run's decisions on startup).

A cache file that fails to parse — truncated write, hand-edit, version
skew — must never take the service down: loading falls back to an empty
(cold) cache and records the problem in :attr:`PlanCache.load_error`.

Thread-safety: the serve worker pool shares one cache across threads,
so every mutation of the in-memory LRU (``get`` reorders recency,
``put`` inserts and evicts, ``save`` snapshots) happens under an
internal lock.  ``save``'s file write was already crash-safe via the
atomic ``os.replace``; the lock additionally makes the snapshot it
serializes consistent.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Callable

from repro.core.plan import ContractionSpec, Plan
from repro.runtime.signature import ProblemSignature

__all__ = ["CachedPlan", "PlanCache"]

_FORMAT_VERSION = 1

#: The ``|n<nnz_l>,<nnz_r>|`` segment of a signature key (the only
#: value-ish part of the otherwise structural key).
_NNZ_SEGMENT = re.compile(r"\|n(\d+),(\d+)\|")


def _mask_nnz(key: str) -> str:
    """The signature key with its nnz segment wildcarded.

    Two keys with equal masks describe the same *structure* (shapes,
    pairs, machine, pinned accumulator/tile) at possibly different
    nonzero counts — the drift-reuse candidate relation.
    """
    return _NNZ_SEGMENT.sub("|n*|", key, count=1)


def _key_nnz(key: str) -> tuple[int, int] | None:
    """Parse ``(nnz_l, nnz_r)`` out of a signature key, if present."""
    match = _NNZ_SEGMENT.search(key)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def _relative_drift(a: tuple[int, int], b: tuple[int, int]) -> float:
    """Max per-operand relative nnz change between two keys."""
    return max(
        abs(a[0] - b[0]) / max(b[0], 1),
        abs(a[1] - b[1]) / max(b[1], 1),
    )


@dataclass(frozen=True)
class CachedPlan:
    """The spec-independent part of a :class:`~repro.core.plan.Plan`.

    Everything Algorithm 7 decided, minus the ``ContractionSpec`` (which
    is rebuilt from the live operands on every call — specs hold mode
    linearizers, not decisions).
    """

    accumulator: str
    tile_l: int
    tile_r: int
    machine_name: str
    p_l: float = 0.0
    p_r: float = 0.0
    est_output_density: float = 0.0
    expected_tile_nnz: float = 0.0

    @classmethod
    def from_plan(cls, plan: Plan) -> "CachedPlan":
        return cls(
            accumulator=plan.accumulator,
            tile_l=int(plan.tile_l),
            tile_r=int(plan.tile_r),
            machine_name=plan.machine_name,
            p_l=float(plan.p_l),
            p_r=float(plan.p_r),
            est_output_density=float(plan.est_output_density),
            expected_tile_nnz=float(plan.expected_tile_nnz),
        )

    def materialize(self, spec: ContractionSpec) -> Plan:
        """Attach a live spec, yielding an executable :class:`Plan`."""
        return Plan(
            spec=spec,
            accumulator=self.accumulator,
            tile_l=self.tile_l,
            tile_r=self.tile_r,
            machine_name=self.machine_name,
            p_l=self.p_l,
            p_r=self.p_r,
            est_output_density=self.est_output_density,
            expected_tile_nnz=self.expected_tile_nnz,
            notes={"source": "plan_cache"},
        )


class PlanCache:
    """LRU map from problem signatures to cached plan decisions.

    Parameters
    ----------
    maxsize:
        Entry capacity; the least-recently-*used* entry is evicted first
        (both hits and inserts refresh recency).
    path:
        Optional JSON file.  When given, the cache warms itself from the
        file at construction (silently starting cold if the file is
        missing or corrupt) and :meth:`flush` writes back to it.
    drift_rtol:
        Nonzero-count drift tolerance for structural reuse.  A lookup
        that misses exactly may still hit an entry for the *same
        structure* at a different nnz (the persisted key embeds the
        operand nnz at save time, so warm-started entries carry their
        provenance).  Within the tolerance the entry is reused and
        re-keyed under the live signature (``drift_hits``); beyond it
        the lookup misses so the caller re-prices through Algorithm 7
        instead of blindly replaying a decision made for a tensor that
        has since drifted (``drift_repriced``).  ``None`` disables
        structural reuse entirely (exact-key hits only).
    """

    def __init__(
        self,
        maxsize: int = 128,
        path: str | os.PathLike | None = None,
        *,
        drift_rtol: float | None = 0.25,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if drift_rtol is not None and drift_rtol < 0:
            raise ValueError(f"drift_rtol must be >= 0, got {drift_rtol}")
        self.maxsize = int(maxsize)
        self.path = os.fspath(path) if path is not None else None
        self.drift_rtol = drift_rtol
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        # Masked structure key -> most recently inserted exact key.
        self._structure: dict[str, str] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.drift_hits = 0
        self.drift_repriced = 0
        self.invalidated = 0
        self.load_error: str | None = None
        if self.path is not None and os.path.exists(self.path):
            self._load(self.path)

    # -- core mapping ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, signature: ProblemSignature) -> bool:
        with self._lock:
            return signature.key in self._entries

    def keys(self) -> list[str]:
        """Cached keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def _insert_locked(self, key: str, cached: CachedPlan) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = cached
        self._structure[_mask_nnz(key)] = key
        while len(self._entries) > self.maxsize:
            victim, _ = self._entries.popitem(last=False)
            self.evictions += 1
            self._drop_structure_locked(victim)

    def _drop_structure_locked(self, key: str) -> None:
        masked = _mask_nnz(key)
        if self._structure.get(masked) == key:
            del self._structure[masked]

    def _rebuild_structure_locked(self) -> None:
        self._structure = {}
        for key in self._entries:
            self._structure[_mask_nnz(key)] = key

    def get(self, signature: ProblemSignature) -> CachedPlan | None:
        """Look up a cached decision; refreshes LRU recency on hit.

        An exact-key miss falls through to the structural drift probe
        (see ``drift_rtol``): the same structure cached at a nearby nnz
        is reused and re-keyed; one cached beyond the tolerance stays a
        miss so the caller re-prices the plan for the drifted operands.
        """
        key = signature.key
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            if self.drift_rtol is not None:
                candidate = self._structure.get(_mask_nnz(key))
                if candidate is not None and candidate != key:
                    cached = self._entries.get(candidate)
                    want = _key_nnz(key)
                    have = _key_nnz(candidate)
                    if cached is not None and want is not None and have is not None:
                        if _relative_drift(want, have) <= self.drift_rtol:
                            self._insert_locked(key, cached)
                            self.drift_hits += 1
                            self.hits += 1
                            return cached
                        self.drift_repriced += 1
            self.misses += 1
            return None

    def put(self, signature: ProblemSignature, plan: Plan | CachedPlan) -> CachedPlan:
        """Insert (or refresh) a decision, evicting LRU entries at capacity."""
        cached = plan if isinstance(plan, CachedPlan) else CachedPlan.from_plan(plan)
        with self._lock:
            self._insert_locked(signature.key, cached)
        return cached

    def peek_key(self, key: str) -> CachedPlan | None:
        """Look up by raw key without touching recency or hit counters.

        Used by the autotuner to snapshot the entry a promotion is about
        to displace; a peek must not make a cold entry look hot.
        """
        with self._lock:
            return self._entries.get(key)

    def put_key(self, key: str, plan: Plan | CachedPlan) -> CachedPlan:
        """Insert (or refresh) a decision under a raw signature key.

        Same LRU semantics as :meth:`put`; the autotuner promotes and
        rolls back by key because it stores keys, not live signatures.
        """
        cached = plan if isinstance(plan, CachedPlan) else CachedPlan.from_plan(plan)
        with self._lock:
            self._insert_locked(key, cached)
        return cached

    # -- invalidation ---------------------------------------------------

    def invalidate(self, signature: ProblemSignature) -> bool:
        """Drop one signature's entry; returns whether it existed."""
        return self.invalidate_key(signature.key)

    def invalidate_key(self, key: str) -> bool:
        """Drop one entry by raw key (streaming invalidation hook)."""
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self._drop_structure_locked(key)
            self.invalidated += 1
            return True

    def invalidate_where(self, predicate: Callable[[str], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        The fan-out form: a stream that knows its operands' shapes can
        drop every cached decision mentioning them without holding live
        signatures.  Returns the number of entries dropped.
        """
        with self._lock:
            victims = [k for k in self._entries if predicate(k)]
            for key in victims:
                del self._entries[key]
                self._drop_structure_locked(key)
            self.invalidated += len(victims)
            return len(victims)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "drift_hits": self.drift_hits,
                "drift_repriced": self.drift_repriced,
                "invalidated": self.invalidated,
                "hit_rate": self.hits / (self.hits + self.misses)
                if self.hits + self.misses else 0.0,
            }

    # -- persistence ----------------------------------------------------

    def save(self, path: str | os.PathLike | None = None) -> str:
        """Write the cache to JSON (atomic rename); returns the path."""
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the cache has no default path")
        # The whole write stays under the lock: two concurrent saves
        # would otherwise interleave on the shared ``.tmp`` scratch file
        # before either atomic rename happens.
        with self._lock:
            payload = {
                "version": _FORMAT_VERSION,
                "entries": [[k, asdict(v)] for k, v in self._entries.items()],
            }
            tmp = f"{target}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1)
            os.replace(tmp, target)
        return target

    def flush(self) -> str | None:
        """Persist to the default path, if one was configured."""
        return self.save() if self.path is not None else None

    def load(self, path: str | os.PathLike, *, replace: bool = False) -> int:
        """Warm-start from a JSON cache file; returns entries loaded.

        By default loaded entries *merge under* the live ones (an entry
        already decided in this process wins over the persisted copy —
        it is at least as fresh).  ``replace=True`` drops the live
        entries first.  Corrupt files degrade to a no-op with the
        problem recorded on :attr:`load_error`, same as construction.
        """
        loaded = self._parse(os.fspath(path))
        if loaded is None:
            return 0
        with self._lock:
            if replace:
                self._entries = loaded
            else:
                for key, cached in loaded.items():
                    self._entries.setdefault(key, cached)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            self._rebuild_structure_locked()
        return len(loaded)

    def _parse(self, path: str) -> "OrderedDict[str, CachedPlan] | None":
        """Parse one cache file; ``None`` (plus ``load_error``) on corruption."""
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("version") != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported cache format version {payload.get('version')!r}"
                )
            entries = OrderedDict()
            for key, fields in payload["entries"]:
                entries[str(key)] = CachedPlan(**fields)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # json.JSONDecodeError subclasses ValueError; a bad field
            # set raises TypeError from the dataclass constructor.
            self.load_error = f"{type(exc).__name__}: {exc}"
            return None
        return entries

    def _load(self, path: str) -> None:
        """Warm from a JSON file; corruption degrades to a cold cache."""
        entries = self._parse(path)
        if entries is None:
            return
        with self._lock:
            self._entries = entries
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            self._rebuild_structure_locked()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(entries={len(self)}, maxsize={self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
