"""LRU plan cache with optional JSON persistence.

Maps :class:`~repro.runtime.signature.ProblemSignature` keys to frozen
Algorithm 7 decisions.  A hit skips planning entirely; entries survive
across processes through :meth:`PlanCache.save` / the ``path`` argument
(a serving process warms from the previous run's decisions on startup).

A cache file that fails to parse — truncated write, hand-edit, version
skew — must never take the service down: loading falls back to an empty
(cold) cache and records the problem in :attr:`PlanCache.load_error`.

Thread-safety: the serve worker pool shares one cache across threads,
so every mutation of the in-memory LRU (``get`` reorders recency,
``put`` inserts and evicts, ``save`` snapshots) happens under an
internal lock.  ``save``'s file write was already crash-safe via the
atomic ``os.replace``; the lock additionally makes the snapshot it
serializes consistent.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass

from repro.core.plan import ContractionSpec, Plan
from repro.runtime.signature import ProblemSignature

__all__ = ["CachedPlan", "PlanCache"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CachedPlan:
    """The spec-independent part of a :class:`~repro.core.plan.Plan`.

    Everything Algorithm 7 decided, minus the ``ContractionSpec`` (which
    is rebuilt from the live operands on every call — specs hold mode
    linearizers, not decisions).
    """

    accumulator: str
    tile_l: int
    tile_r: int
    machine_name: str
    p_l: float = 0.0
    p_r: float = 0.0
    est_output_density: float = 0.0
    expected_tile_nnz: float = 0.0

    @classmethod
    def from_plan(cls, plan: Plan) -> "CachedPlan":
        return cls(
            accumulator=plan.accumulator,
            tile_l=int(plan.tile_l),
            tile_r=int(plan.tile_r),
            machine_name=plan.machine_name,
            p_l=float(plan.p_l),
            p_r=float(plan.p_r),
            est_output_density=float(plan.est_output_density),
            expected_tile_nnz=float(plan.expected_tile_nnz),
        )

    def materialize(self, spec: ContractionSpec) -> Plan:
        """Attach a live spec, yielding an executable :class:`Plan`."""
        return Plan(
            spec=spec,
            accumulator=self.accumulator,
            tile_l=self.tile_l,
            tile_r=self.tile_r,
            machine_name=self.machine_name,
            p_l=self.p_l,
            p_r=self.p_r,
            est_output_density=self.est_output_density,
            expected_tile_nnz=self.expected_tile_nnz,
            notes={"source": "plan_cache"},
        )


class PlanCache:
    """LRU map from problem signatures to cached plan decisions.

    Parameters
    ----------
    maxsize:
        Entry capacity; the least-recently-*used* entry is evicted first
        (both hits and inserts refresh recency).
    path:
        Optional JSON file.  When given, the cache warms itself from the
        file at construction (silently starting cold if the file is
        missing or corrupt) and :meth:`flush` writes back to it.
    """

    def __init__(self, maxsize: int = 128, path: str | os.PathLike | None = None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.path = os.fspath(path) if path is not None else None
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.load_error: str | None = None
        if self.path is not None and os.path.exists(self.path):
            self._load(self.path)

    # -- core mapping ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, signature: ProblemSignature) -> bool:
        with self._lock:
            return signature.key in self._entries

    def keys(self) -> list[str]:
        """Cached keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def get(self, signature: ProblemSignature) -> CachedPlan | None:
        """Look up a cached decision; refreshes LRU recency on hit."""
        with self._lock:
            entry = self._entries.get(signature.key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(signature.key)
            self.hits += 1
            return entry

    def put(self, signature: ProblemSignature, plan: Plan | CachedPlan) -> CachedPlan:
        """Insert (or refresh) a decision, evicting LRU entries at capacity."""
        cached = plan if isinstance(plan, CachedPlan) else CachedPlan.from_plan(plan)
        key = signature.key
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = cached
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return cached

    def peek_key(self, key: str) -> CachedPlan | None:
        """Look up by raw key without touching recency or hit counters.

        Used by the autotuner to snapshot the entry a promotion is about
        to displace; a peek must not make a cold entry look hot.
        """
        with self._lock:
            return self._entries.get(key)

    def put_key(self, key: str, plan: Plan | CachedPlan) -> CachedPlan:
        """Insert (or refresh) a decision under a raw signature key.

        Same LRU semantics as :meth:`put`; the autotuner promotes and
        rolls back by key because it stores keys, not live signatures.
        """
        cached = plan if isinstance(plan, CachedPlan) else CachedPlan.from_plan(plan)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = cached
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return cached

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / (self.hits + self.misses)
                if self.hits + self.misses else 0.0,
            }

    # -- persistence ----------------------------------------------------

    def save(self, path: str | os.PathLike | None = None) -> str:
        """Write the cache to JSON (atomic rename); returns the path."""
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the cache has no default path")
        # The whole write stays under the lock: two concurrent saves
        # would otherwise interleave on the shared ``.tmp`` scratch file
        # before either atomic rename happens.
        with self._lock:
            payload = {
                "version": _FORMAT_VERSION,
                "entries": [[k, asdict(v)] for k, v in self._entries.items()],
            }
            tmp = f"{target}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1)
            os.replace(tmp, target)
        return target

    def flush(self) -> str | None:
        """Persist to the default path, if one was configured."""
        return self.save() if self.path is not None else None

    def load(self, path: str | os.PathLike, *, replace: bool = False) -> int:
        """Warm-start from a JSON cache file; returns entries loaded.

        By default loaded entries *merge under* the live ones (an entry
        already decided in this process wins over the persisted copy —
        it is at least as fresh).  ``replace=True`` drops the live
        entries first.  Corrupt files degrade to a no-op with the
        problem recorded on :attr:`load_error`, same as construction.
        """
        loaded = self._parse(os.fspath(path))
        if loaded is None:
            return 0
        with self._lock:
            if replace:
                self._entries = loaded
            else:
                for key, cached in loaded.items():
                    self._entries.setdefault(key, cached)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return len(loaded)

    def _parse(self, path: str) -> "OrderedDict[str, CachedPlan] | None":
        """Parse one cache file; ``None`` (plus ``load_error``) on corruption."""
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("version") != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported cache format version {payload.get('version')!r}"
                )
            entries = OrderedDict()
            for key, fields in payload["entries"]:
                entries[str(key)] = CachedPlan(**fields)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # json.JSONDecodeError subclasses ValueError; a bad field
            # set raises TypeError from the dataclass constructor.
            self.load_error = f"{type(exc).__name__}: {exc}"
            return None
        return entries

    def _load(self, path: str) -> None:
        """Warm from a JSON file; corruption degrades to a cold cache."""
        entries = self._parse(path)
        if entries is None:
            return
        with self._lock:
            self._entries = entries
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(entries={len(self)}, maxsize={self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
