"""Structural problem signatures for plan reuse.

A serving workload re-issues the *same structural contraction* — the
mode extents, nonzero counts, contracted mode pairs, and target machine
— thousands of times over different numeric values.  Algorithm 7's
decision depends only on that structure, so a plan computed once can be
replayed for every recurrence.  :class:`ProblemSignature` is the cache
key: two contractions with the same signature get the same plan.

The signature is deliberately *value-blind*: permuting the coordinate
order of an operand (COO is unordered) or changing its numeric values
does not change the key, while changing a shape, the contracted pairs,
the nonzero count (hence density), or the machine does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.machine.specs import MachineSpec
from repro.tensors.coo import COOTensor

__all__ = ["ProblemSignature", "signature_for"]


@dataclass(frozen=True)
class ProblemSignature:
    """Hashable structural identity of one contraction problem."""

    left_shape: tuple[int, ...]
    right_shape: tuple[int, ...]
    pairs: tuple[tuple[int, int], ...]
    nnz_l: int
    nnz_r: int
    machine: tuple  # (name, n_cores, l3_bytes, l2_bytes_per_core, word_bytes)
    accumulator: str = "auto"
    tile_size: int | None = None

    @property
    def key(self) -> str:
        """Stable string form, usable as a JSON object key."""
        shape_l = "x".join(map(str, self.left_shape))
        shape_r = "x".join(map(str, self.right_shape))
        pairs = ",".join(f"{a}:{b}" for a, b in self.pairs)
        name, cores, l3, l2, word = self.machine
        return (
            f"L{shape_l}|R{shape_r}|P{pairs}|n{self.nnz_l},{self.nnz_r}"
            f"|M{name};{cores};{l3};{l2};{word}"
            f"|A{self.accumulator}|T{self.tile_size or 0}"
        )

    @property
    def density_l(self) -> float:
        cells = 1
        for s in self.left_shape:
            cells *= s
        return self.nnz_l / cells if cells else 0.0

    @property
    def density_r(self) -> float:
        cells = 1
        for s in self.right_shape:
            cells *= s
        return self.nnz_r / cells if cells else 0.0


def _machine_token(machine: MachineSpec) -> tuple:
    return (
        machine.name,
        machine.n_cores,
        machine.l3_bytes,
        machine.l2_bytes_per_core,
        machine.word_bytes,
    )


def signature_for(
    left: COOTensor,
    right: COOTensor,
    pairs: Sequence[tuple[int, int]],
    machine: MachineSpec,
    *,
    accumulator: str = "auto",
    tile_size: int | None = None,
) -> ProblemSignature:
    """Build the cache key for one concrete contraction call.

    Uses the raw (pre-deduplication) nonzero counts: they are invariant
    under coordinate permutation, which is the property the cache needs
    — identical logical problems must collide on the same key.
    """
    return ProblemSignature(
        left_shape=tuple(int(s) for s in left.shape),
        right_shape=tuple(int(s) for s in right.shape),
        pairs=tuple((int(a), int(b)) for a, b in pairs),
        nnz_l=int(left.nnz),
        nnz_r=int(right.nnz),
        machine=_machine_token(machine),
        accumulator=accumulator,
        tile_size=tile_size,
    )
