"""Tensor versions and tile-granular dependency tracking.

Every cache in the system — linearized operands and tiled tables in the
:class:`~repro.runtime.executor.ContractionRuntime`, plan-cache entries,
:class:`~repro.network.executor.PreparedNetwork` operand pins, and the
:class:`~repro.streaming.engine.IncrementalEngine`'s stored outputs —
was built against a *snapshot* of some tensor.  Once that tensor
mutates, the artifact is stale; reading it anyway returns silently
wrong results.  The :class:`DependencyTracker` makes the dependency
explicit and checkable:

* every named tensor has a monotonic **version** (bumped per delta);
* every artifact registers the ``(tensor, tiles)`` pairs it was derived
  from — tile-granular where the artifact is tiled (a delta touching
  tiles ``{3, 7}`` leaves a table for tile 5 fresh), whole-tensor
  (``tiles=None``) otherwise;
* :meth:`DependencyTracker.bump` marks every artifact whose dependency
  intersects the mutation and returns the invalidated ids, so callers
  can fan the invalidation out to the owning caches;
* consumers guard reads with :meth:`DependencyTracker.assert_fresh`,
  which raises :class:`~repro.errors.StaleReadError` — the dynamic twin
  of the static ``FSTC701`` lint (:mod:`repro.staticcheck.stream_lint`).

The tracker is deliberately cache-agnostic: it stores opaque artifact
ids and never holds the artifacts themselves, so it cannot leak memory
on behalf of the caches it audits.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.errors import StaleReadError, StreamError

__all__ = [
    "ARTIFACT_KINDS",
    "Artifact",
    "DependencyTracker",
    "TensorVersion",
    "close_stale_prepared",
    "watch_prepared",
]

#: The artifact kinds the system registers (free-form strings are also
#: accepted; these are the ones the built-in integrations use).
ARTIFACT_KINDS = (
    "tiled_table",
    "linearized",
    "plan_cache",
    "prepared_network",
    "output",
)


class TensorVersion:
    """Monotonic version of one named tensor (value object)."""

    __slots__ = ("name", "version")

    def __init__(self, name: str, version: int = 0):
        self.name = str(name)
        self.version = int(version)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TensorVersion({self.name!r}, v{self.version})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TensorVersion)
            and self.name == other.name
            and self.version == other.version
        )

    def __hash__(self) -> int:
        return hash((self.name, self.version))


class Artifact:
    """One registered derived object and what it was built from.

    ``deps`` maps tensor name -> frozenset of tile ids (``None`` means
    the artifact depends on the whole tensor); ``seen`` records the
    tensor versions the artifact was last (re)built against.
    """

    __slots__ = ("artifact_id", "kind", "deps", "seen", "fresh")

    def __init__(
        self,
        artifact_id: str,
        kind: str,
        deps: dict[str, frozenset | None],
        seen: dict[str, int],
    ):
        self.artifact_id = artifact_id
        self.kind = kind
        self.deps = deps
        self.seen = seen
        self.fresh = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fresh" if self.fresh else "STALE"
        return f"Artifact({self.artifact_id!r}, {self.kind}, {state})"


_MISSING = object()


class DependencyTracker:
    """Thread-safe registry of tensor versions and dependent artifacts."""

    def __init__(self) -> None:
        self._versions: dict[str, int] = {}
        self._artifacts: dict[str, Artifact] = {}
        self._lock = threading.RLock()
        self.bumps = 0
        self.invalidations = 0

    # -- versions -------------------------------------------------------

    def version(self, name: str) -> TensorVersion:
        with self._lock:
            return TensorVersion(name, self._versions.get(name, 0))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    # -- artifacts ------------------------------------------------------

    def register(
        self,
        artifact_id: str,
        kind: str,
        deps: Mapping[str, Iterable[int] | None],
    ) -> Artifact:
        """Record (or re-record) an artifact and its dependencies.

        ``deps`` maps each dependency tensor's name to the tile ids the
        artifact was derived from, or ``None`` for a whole-tensor
        dependency.  An artifact with an empty ``deps`` mapping is
        refused: nothing could ever invalidate it (the ``FSTC702``
        condition), so registering it is a programming error.
        """
        if not deps:
            raise StreamError(
                f"artifact {artifact_id!r} registered with no dependencies; "
                "it could never be invalidated"
            )
        norm: dict[str, frozenset | None] = {}
        for name, tiles in deps.items():
            norm[str(name)] = (
                None if tiles is None else frozenset(int(t) for t in tiles)
            )
        with self._lock:
            seen = {
                name: self._versions.setdefault(name, 0) for name in norm
            }
            artifact = Artifact(str(artifact_id), str(kind), norm, seen)
            self._artifacts[artifact.artifact_id] = artifact
            return artifact

    def unregister(self, artifact_id: str) -> bool:
        with self._lock:
            return self._artifacts.pop(artifact_id, None) is not None

    def bump(
        self, name: str, tiles: Iterable[int] | None = None
    ) -> list[str]:
        """Advance one tensor's version; returns invalidated artifact ids.

        ``tiles`` narrows the mutation to specific tile ids — an
        artifact depending on disjoint tiles of the same tensor stays
        fresh.  ``None`` means the whole tensor changed.
        """
        tile_set = None if tiles is None else frozenset(int(t) for t in tiles)
        hit: list[str] = []
        with self._lock:
            self._versions[name] = self._versions.get(name, 0) + 1
            self.bumps += 1
            version = self._versions[name]
            for artifact in self._artifacts.values():
                dep = artifact.deps.get(name, _MISSING)
                if dep is _MISSING:
                    continue
                artifact.seen[name] = version  # it has observed the bump...
                overlaps = (
                    dep is None or tile_set is None or bool(dep & tile_set)
                )
                if overlaps and artifact.fresh:
                    artifact.fresh = False  # ...and is invalidated by it
                    self.invalidations += 1
                    hit.append(artifact.artifact_id)
        return hit

    def refresh(self, artifact_id: str, deps: Mapping[str, Iterable[int] | None] | None = None) -> Artifact:
        """Mark an artifact rebuilt (optionally with new dependencies)."""
        with self._lock:
            artifact = self._artifacts.get(artifact_id)
            if artifact is None:
                raise StreamError(f"unknown artifact {artifact_id!r}")
            if deps is not None:
                return self.register(artifact_id, artifact.kind, deps)
            artifact.seen = {
                name: self._versions.get(name, 0) for name in artifact.deps
            }
            artifact.fresh = True
            return artifact

    def is_fresh(self, artifact_id: str) -> bool:
        with self._lock:
            artifact = self._artifacts.get(artifact_id)
            if artifact is None:
                raise StreamError(f"unknown artifact {artifact_id!r}")
            return artifact.fresh

    def assert_fresh(self, artifact_id: str) -> None:
        """Guard a read: raise :class:`StaleReadError` on a stale artifact."""
        with self._lock:
            artifact = self._artifacts.get(artifact_id)
            if artifact is None:
                raise StreamError(f"unknown artifact {artifact_id!r}")
            if not artifact.fresh:
                moved = [
                    f"{name} v{artifact.seen.get(name, 0)} != "
                    f"v{self._versions.get(name, 0)}"
                    for name in artifact.deps
                    if artifact.seen.get(name, 0) != self._versions.get(name, 0)
                ]
                raise StaleReadError(
                    f"artifact {artifact_id!r} ({artifact.kind}) is stale: "
                    + (", ".join(moved) if moved else "invalidated dependency")
                )

    # -- introspection --------------------------------------------------

    def artifacts(self, kind: str | None = None) -> list[Artifact]:
        with self._lock:
            return [
                a for a in self._artifacts.values()
                if kind is None or a.kind == kind
            ]

    def stale_ids(self) -> list[str]:
        with self._lock:
            return sorted(
                a.artifact_id for a in self._artifacts.values() if not a.fresh
            )

    def stats(self) -> dict:
        with self._lock:
            return {
                "tensors": len(self._versions),
                "artifacts": len(self._artifacts),
                "stale": sum(
                    1 for a in self._artifacts.values() if not a.fresh
                ),
                "bumps": self.bumps,
                "invalidations": self.invalidations,
            }


def watch_prepared(
    tracker: DependencyTracker,
    prepared,
    deps: Mapping[str, Iterable[int] | None],
    *,
    artifact_id: str | None = None,
) -> str:
    """Track a :class:`~repro.network.executor.PreparedNetwork`'s pins.

    Registers the prepared execution as a ``prepared_network`` artifact;
    :func:`close_stale_prepared` (or any caller holding the returned id)
    can then close it when a dependency bump lands.  The id defaults to
    the prepared object's identity.
    """
    ident = artifact_id if artifact_id is not None else f"prepared:{id(prepared)}"
    tracker.register(ident, "prepared_network", deps)
    return ident


def close_stale_prepared(
    tracker: DependencyTracker, prepared_by_id: Mapping[str, object]
) -> list[str]:
    """Close every tracked prepared network whose dependencies moved.

    ``prepared_by_id`` maps artifact ids (from :func:`watch_prepared`)
    to live ``PreparedNetwork`` objects.  Returns the ids closed; each
    is unregistered from the tracker so a later rebuild re-registers
    cleanly.
    """
    closed: list[str] = []
    for artifact in tracker.artifacts("prepared_network"):
        if artifact.fresh:
            continue
        prepared = prepared_by_id.get(artifact.artifact_id)
        if prepared is None:
            continue
        prepared.close()  # type: ignore[attr-defined]
        tracker.unregister(artifact.artifact_id)
        closed.append(artifact.artifact_id)
    return closed
