"""Streaming tensors: delta ingestion and incremental re-contraction.

Production traffic mutates tensors far more often than it replaces
them.  This package makes sparse tensors *evolving* objects:

* :mod:`repro.streaming.delta` — :class:`DeltaBatch` (canonical
  insert/update/delete batches, applicable to COO/CSF/HiCOO) and the
  bounded per-tensor :class:`MutationLog`;
* :mod:`repro.streaming.version` — :class:`DependencyTracker`, the
  tile-granular registry of which cached artifacts (tiled tables,
  linearized operands, plan-cache entries, prepared-network pins,
  outputs) depend on which ``(tensor, tile)`` pairs;
* :mod:`repro.streaming.engine` — :class:`IncrementalEngine`, which
  re-contracts only the tiles a delta touched and patches the cached
  output, falling back to full recompute past a staleness threshold
  priced through the paper's Section 5.1 density model.

The serve layer exposes this as the ``stream`` request kind (see
:mod:`repro.serve.request`), with shard affinity by stream name so one
shard owns each tensor's mutation log.
"""

from repro.streaming.delta import (
    DELETE,
    INSERT,
    UPDATE,
    DeltaBatch,
    MutationLog,
    apply_delta,
)
from repro.streaming.engine import (
    DEFAULT_STALENESS_THRESHOLD,
    IncrementalEngine,
    StreamState,
    StreamStats,
)
from repro.streaming.version import (
    ARTIFACT_KINDS,
    Artifact,
    DependencyTracker,
    TensorVersion,
    close_stale_prepared,
    watch_prepared,
)

__all__ = [
    "ARTIFACT_KINDS",
    "DEFAULT_STALENESS_THRESHOLD",
    "DELETE",
    "INSERT",
    "UPDATE",
    "Artifact",
    "DeltaBatch",
    "DependencyTracker",
    "IncrementalEngine",
    "MutationLog",
    "StreamState",
    "StreamStats",
    "TensorVersion",
    "apply_delta",
    "close_stale_prepared",
    "watch_prepared",
]
