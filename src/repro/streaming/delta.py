"""Delta batches: canonical nonzero mutations of sparse tensors.

A streaming workload mutates tensors far more often than it replaces
them: a handful of coordinates gain, change, or lose their values while
the other 99.9% of the structure stays put.  :class:`DeltaBatch` is the
wire format for one such mutation — an ordered list of
insert/update/delete operations on explicit coordinates — with two key
properties:

* **canonicalization** (:meth:`DeltaBatch.canonicalize`): any op
  sequence collapses to at most one resolved op per coordinate, with
  last-write-wins semantics (inserts *accumulate*, updates and deletes
  *override*), sorted in row-major coordinate order.  Two batches that
  canonicalize identically have identical effect on every tensor.
* **application** (:meth:`DeltaBatch.apply` / :func:`apply_delta`):
  vectorized replay onto a :class:`~repro.tensors.coo.COOTensor` (and,
  through the COO interchange format, CSF and HiCOO), producing a
  canonical (sorted, duplicate-free) result.

:class:`MutationLog` is the bounded per-tensor history a serving shard
keeps for the streams it owns (see :mod:`repro.serve`): appended batches
get monotonic sequence numbers, and old entries are compacted away once
the bound is reached.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError, FormatError, ShapeError, StreamError
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor
from repro.tensors.hicoo import HiCOOTensor
from repro.tensors.linearize import ModeLinearizer
from repro.util.arrays import as_index_array, as_value_array
from repro.util.groups import group_boundaries

__all__ = ["DELETE", "INSERT", "UPDATE", "DeltaBatch", "MutationLog", "apply_delta"]

#: Operation kinds, stored as one int8 per op.
INSERT = 0  # value += v (absent coordinates start at 0; creates the entry)
UPDATE = 1  # value = v (creates or overwrites the entry)
DELETE = 2  # the entry is removed outright (not set to explicit zero)

_KIND_NAMES = {INSERT: "insert", UPDATE: "update", DELETE: "delete"}


class DeltaBatch:
    """An ordered batch of coordinate mutations against one tensor shape.

    Parameters
    ----------
    kinds:
        Int array of shape ``(n_ops,)`` over {:data:`INSERT`,
        :data:`UPDATE`, :data:`DELETE`}, in application order.
    coords:
        Integer array of shape ``(ndim, n_ops)``; column ``e`` is the
        coordinate op ``e`` touches.
    values:
        Float array of shape ``(n_ops,)``; ignored (forced to 0.0) for
        deletes.
    shape:
        Mode extents of the tensor the batch targets.
    """

    __slots__ = ("kinds", "coords", "values", "shape", "_canonical")

    def __init__(self, kinds, coords, values, shape: Sequence[int], *, check: bool = True):
        kinds = np.ascontiguousarray(kinds, dtype=np.int8)
        if kinds.ndim != 1:
            raise ShapeError(f"kinds must be 1-D; got shape {kinds.shape}")
        coords = as_index_array(coords)
        if coords.ndim == 1:
            coords = coords.reshape(1, -1)
        values = as_value_array(values)
        shape = tuple(int(s) for s in shape)
        if coords.ndim != 2 or coords.shape[0] != len(shape):
            raise ShapeError(
                f"coords must have shape ({len(shape)}, n_ops); got {coords.shape}"
            )
        if values.shape != kinds.shape or coords.shape[1] != kinds.shape[0]:
            raise ShapeError(
                f"kinds/coords/values disagree on op count: "
                f"{kinds.shape[0]}/{coords.shape[1]}/{values.shape[0]}"
            )
        if check:
            if kinds.shape[0] and (kinds.min() < INSERT or kinds.max() > DELETE):
                bad = sorted(set(kinds.tolist()) - set(_KIND_NAMES))
                raise FormatError(f"unknown delta op kinds: {bad}")
            if coords.shape[1]:
                lo = coords.min(axis=1)
                hi = coords.max(axis=1)
                for k, (l, h, ext) in enumerate(zip(lo, hi, shape)):
                    if l < 0 or h >= ext:
                        raise ShapeError(
                            f"mode {k} delta coordinates span [{l}, {h}] "
                            f"outside extent {ext}"
                        )
        values = values.copy()
        values[kinds == DELETE] = 0.0
        self.kinds = kinds
        self.coords = coords
        self.values = values
        self.shape = shape
        self._canonical = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "DeltaBatch":
        ndim = len(tuple(shape))
        return cls(
            np.empty(0, dtype=np.int8),
            np.empty((ndim, 0), dtype=np.int64),
            np.empty(0),
            shape,
        )

    @classmethod
    def from_ops(
        cls,
        ops: Iterable[tuple[str, Sequence[int], float]],
        shape: Sequence[int],
    ) -> "DeltaBatch":
        """Build from ``("insert"|"update"|"delete", coord, value)`` rows.

        Deletes may pass any value (it is ignored); the slow path for
        tests and hand-built demos.
        """
        names = {name: kind for kind, name in _KIND_NAMES.items()}
        rows = list(ops)
        ndim = len(tuple(shape))
        if not rows:
            return cls.empty(shape)
        kinds = np.empty(len(rows), dtype=np.int8)
        coords = np.empty((ndim, len(rows)), dtype=np.int64)
        values = np.zeros(len(rows))
        for e, row in enumerate(rows):
            name, coord = row[0], row[1]
            if name not in names:
                raise ConfigError(
                    f"delta op must be insert|update|delete, got {name!r}"
                )
            if len(coord) != ndim:
                raise ShapeError(
                    f"op {e} coordinate has {len(coord)} modes, expected {ndim}"
                )
            kinds[e] = names[name]
            coords[:, e] = [int(c) for c in coord]
            if names[name] != DELETE:
                values[e] = float(row[2])
        return cls(kinds, coords, values, shape)

    @classmethod
    def inserts(cls, coords, values, shape: Sequence[int]) -> "DeltaBatch":
        """An all-insert batch (the common streaming-append case)."""
        coords = as_index_array(coords)
        if coords.ndim == 1:
            coords = coords.reshape(1, -1)
        kinds = np.full(coords.shape[1], INSERT, dtype=np.int8)
        return cls(kinds, coords, values, shape)

    @classmethod
    def deletes(cls, coords, shape: Sequence[int]) -> "DeltaBatch":
        """An all-delete batch."""
        coords = as_index_array(coords)
        if coords.ndim == 1:
            coords = coords.reshape(1, -1)
        n = coords.shape[1]
        kinds = np.full(n, DELETE, dtype=np.int8)
        return cls(kinds, coords, np.zeros(n), shape)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def n_ops(self) -> int:
        return int(self.kinds.shape[0])

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __len__(self) -> int:
        return self.n_ops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaBatch(shape={self.shape}, n_ops={self.n_ops}, "
            f"canonical={self._canonical})"
        )

    def linearized(self) -> np.ndarray:
        """Row-major linear index of every op's coordinate."""
        return ModeLinearizer(self.shape).encode(self.coords)

    # ------------------------------------------------------------------
    # Canonicalization
    # ------------------------------------------------------------------

    def canonicalize(self) -> "DeltaBatch":
        """Collapse to at most one resolved op per coordinate.

        Per coordinate, ops are replayed in batch order: inserts
        accumulate, an update or delete overrides everything before it.
        The residue is one of:

        * ``INSERT s`` — only inserts touched the coordinate (``s`` is
          their sum);
        * ``UPDATE v`` — the last update/delete was an update with value
          ``u`` (``v = u +`` inserts after it), *or* a delete followed by
          inserts summing to ``v`` (delete-then-insert sets the value);
        * ``DELETE`` — the last update/delete was a delete with no
          inserts after it.

        The result is sorted by row-major coordinate order with unique
        coordinates, and applying it to any tensor is equivalent to
        applying the original batch.  Idempotent.
        """
        if self._canonical or self.n_ops == 0:
            out = DeltaBatch(
                self.kinds.copy(), self.coords.copy(), self.values.copy(),
                self.shape, check=False,
            )
            out._canonical = True
            return out
        lin = self.linearized()
        order = np.argsort(lin, kind="stable")  # stable: keeps batch order per coord
        slin = lin[order]
        skinds = self.kinds[order]
        svals = self.values[order]
        uniq, offsets = group_boundaries(slin)
        n_groups = uniq.shape[0]
        counts = np.diff(offsets)

        # Position of each group's last barrier (update/delete), -1 if none.
        pos = np.arange(slin.shape[0], dtype=np.int64)
        barrier_pos = np.where(skinds != INSERT, pos, np.int64(-1))
        last_barrier = np.maximum.reduceat(barrier_pos, offsets[:-1])

        # Sum of insert values strictly after the group's last barrier.
        after = pos > np.repeat(last_barrier, counts)
        live_insert = (skinds == INSERT) & after
        insert_sums = np.add.reduceat(np.where(live_insert, svals, 0.0), offsets[:-1])
        has_insert = np.add.reduceat(live_insert.astype(np.int64), offsets[:-1]) > 0

        out_kinds = np.empty(n_groups, dtype=np.int8)
        out_vals = np.empty(n_groups)
        no_barrier = last_barrier < offsets[:-1]  # group's max position < its start
        barrier_kind = np.where(no_barrier, np.int8(INSERT), skinds[last_barrier])
        barrier_val = np.where(no_barrier, 0.0, svals[last_barrier])

        is_insert = no_barrier
        is_delete = (~no_barrier) & (barrier_kind == DELETE) & ~has_insert
        is_update = ~is_insert & ~is_delete
        out_kinds[is_insert] = INSERT
        out_kinds[is_update] = UPDATE
        out_kinds[is_delete] = DELETE
        # Delete-then-insert contributes 0 base; update contributes its value.
        base = np.where(barrier_kind == UPDATE, barrier_val, 0.0)
        out_vals[:] = np.where(is_delete, 0.0, base + insert_sums)

        coords = ModeLinearizer(self.shape).decode(uniq)
        out = DeltaBatch(out_kinds, coords, out_vals, self.shape, check=False)
        out._canonical = True
        return out

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, tensor: COOTensor) -> COOTensor:
        """Replay the batch onto a COO tensor; returns a canonical result.

        The input is canonicalized first (duplicates summed), then
        update/delete coordinates are cleared from it, and the resolved
        update/insert entries are merged back in.  Explicit zeros
        written by ``UPDATE 0.0`` are kept (matching the paper's COO
        handling); ``DELETE`` removes the entry outright.
        """
        if tuple(tensor.shape) != self.shape:
            raise ShapeError(
                f"delta targets shape {self.shape} but tensor has {tensor.shape}"
            )
        delta = self.canonicalize()
        base = tensor.sum_duplicates()
        if delta.n_ops == 0:
            return base
        dlin = delta.linearized()  # sorted: canonical batches are coordinate-ordered
        barrier = delta.kinds != INSERT
        if base.nnz and barrier.any():
            blin = base.linearized()
            overridden = dlin[barrier]
            hit = np.searchsorted(overridden, blin)
            hit = np.minimum(hit, overridden.shape[0] - 1)
            keep = overridden[hit] != blin
            base = COOTensor(
                base.coords[:, keep], base.values[keep], self.shape, check=False
            )
        alive = delta.kinds != DELETE
        coords = np.concatenate([base.coords, delta.coords[:, alive]], axis=1)
        values = np.concatenate([base.values, delta.values[alive]])
        return COOTensor(coords, values, self.shape, check=False).sum_duplicates()

    def touched_linear(self) -> np.ndarray:
        """Sorted unique row-major indices of every touched coordinate.

        Deliberately an over-approximation: deletes of absent
        coordinates still count as touched — invalidation must be sound,
        not minimal.
        """
        return np.unique(self.linearized())


def apply_delta(tensor, delta: DeltaBatch):
    """Apply a delta to a COO, CSF, or HiCOO tensor, preserving format.

    CSF and HiCOO round-trip through the COO interchange format (the
    same path every kernel input takes); HiCOO keeps its block size,
    CSF its mode order.
    """
    if isinstance(tensor, COOTensor):
        return delta.apply(tensor)
    if isinstance(tensor, CSFTensor):
        out = delta.apply(tensor.to_coo())
        return CSFTensor.from_coo(out, mode_order=tensor.mode_order)
    if isinstance(tensor, HiCOOTensor):
        out = delta.apply(tensor.to_coo())
        return HiCOOTensor.from_coo(out, block_bits=tensor.block_bits)
    raise StreamError(
        f"cannot apply a delta to {type(tensor).__name__}; expected "
        "COOTensor, CSFTensor, or HiCOOTensor"
    )


class _LogEntry:
    __slots__ = ("seq", "delta")

    def __init__(self, seq: int, delta: DeltaBatch):
        self.seq = seq
        self.delta = delta


class MutationLog:
    """Bounded, thread-safe history of canonical deltas for one tensor.

    The owning shard appends every accepted batch; replicas (or a shard
    re-adopting a stream after a ring rebalance) replay ``since(seq)``.
    When the bound is exceeded the oldest entries are dropped and
    ``compacted`` counts them — a replay older than the log's horizon
    must fall back to full state transfer.
    """

    def __init__(self, maxlen: int = 256):
        if maxlen < 1:
            raise ConfigError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = int(maxlen)
        self._entries: list[_LogEntry] = []
        self._next_seq = 0
        self.compacted = 0
        self._lock = threading.Lock()

    def append(self, delta: DeltaBatch) -> int:
        """Record one canonical batch; returns its sequence number."""
        entry = _LogEntry(0, delta.canonicalize())
        with self._lock:
            entry.seq = self._next_seq
            self._next_seq += 1
            self._entries.append(entry)
            while len(self._entries) > self.maxlen:
                self._entries.pop(0)
                self.compacted += 1
            return entry.seq

    def since(self, seq: int) -> list[tuple[int, DeltaBatch]]:
        """Entries with sequence number >= ``seq``, oldest first.

        Raises :class:`StreamError` when ``seq`` predates the log
        horizon (those entries were compacted away).
        """
        with self._lock:
            if self._entries and seq < self._entries[0].seq and seq < self._next_seq:
                raise StreamError(
                    f"sequence {seq} predates the log horizon "
                    f"{self._entries[0].seq} ({self.compacted} compacted)"
                )
            return [(e.seq, e.delta) for e in self._entries if e.seq >= seq]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._next_seq
