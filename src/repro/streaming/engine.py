"""Incremental re-contraction of streamed tensors.

The FaSTCC kernel's 2-D tiling (Section 4) makes contraction outputs
*block-decomposable*: output tile ``(i, j)`` is a pure function of the
left operand's tile-``i`` table, the right operand's tile-``j`` table,
and the pinned plan.  A delta whose coordinates land in ``k`` left tiles
therefore only perturbs the ``k x NR`` affected tile-pairs — the other
``(NL - k) x NR`` output tiles are byte-for-byte unchanged.

:class:`IncrementalEngine` exploits this: it registers a contraction
once (pinning the plan and backend, caching canonical linearized
operands, both tiled tables, and the raw linearized output rows), then
services each :class:`~repro.streaming.delta.DeltaBatch` by

1. applying the delta to the canonical operand,
2. *restricting* the new linearized operand to the touched tiles,
3. re-running the kernel on the restriction against the partner's
   cached full tables (only the affected tile-pairs produce tasks), and
4. patching the cached output rows: unaffected tiles keep their stored
   rows, affected tiles take the freshly computed ones.

Because each tile-pair task is deterministic given its two tables and
the plan, the patched output is **bit-identical** to a from-scratch
contraction of the mutated operands under the same plan (the
differential fuzzer in ``tests/streaming`` asserts this per backend).

Past a staleness threshold the incremental path stops paying: the
work it saves is priced through the paper's Section 5.1 density model
(multiply-accumulate volume per tile plus the modeled patched-row
count), and once the modeled incremental fraction exceeds the
threshold the engine falls back to a full recompute — which refreshes
every cached artifact at once.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.counters import Counters
from repro.backends.base import KernelBackend
from repro.backends.registry import resolve_backend
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec, LinearizedOperand, Plan
from repro.core.tiled_co import TiledTables, build_tiled_tables, tiled_co_contract
from repro.errors import ConfigError, StreamError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.runtime.signature import signature_for
from repro.streaming.delta import DeltaBatch, MutationLog
from repro.streaming.version import DependencyTracker
from repro.tensors.coo import COOTensor

__all__ = ["IncrementalEngine", "StreamState", "StreamStats"]

#: Default modeled-work fraction above which a delta triggers a full
#: recompute instead of tile patching (see Section 5.1 pricing below).
DEFAULT_STALENESS_THRESHOLD = 0.35


@dataclass
class StreamStats:
    """What one :meth:`IncrementalEngine.apply_delta` call did."""

    name: str
    side: str
    mode: str  # "incremental" | "full" | "noop"
    seq: int  # mutation-log sequence number of the applied batch
    tiles_touched: int
    tiles_total: int
    modeled_fraction: float
    seconds: float
    output_nnz: int


class StreamState:
    """Everything cached for one registered streaming contraction."""

    __slots__ = (
        "name", "spec", "plan", "backend", "left", "right",
        "left_op", "right_op", "hl", "hr",
        "l_idx", "r_idx", "values", "output", "logs", "artifact_ids",
    )

    def __init__(self, name: str, spec: ContractionSpec, plan: Plan,
                 backend: KernelBackend):
        self.name = name
        self.spec = spec
        self.plan = plan
        self.backend = backend
        self.left: COOTensor | None = None
        self.right: COOTensor | None = None
        self.left_op: LinearizedOperand | None = None
        self.right_op: LinearizedOperand | None = None
        self.hl: TiledTables | None = None
        self.hr: TiledTables | None = None
        # Linearized output rows, sorted by combined index l * R + r
        # (row-major output order) — the patchable representation.
        self.l_idx = np.empty(0, dtype=np.int64)
        self.r_idx = np.empty(0, dtype=np.int64)
        self.values = np.empty(0)
        self.output: COOTensor | None = None
        self.logs = {"left": MutationLog(), "right": MutationLog()}
        self.artifact_ids: list[str] = []


class IncrementalEngine:
    """Delta-driven incremental contraction over registered streams.

    Parameters
    ----------
    machine:
        Platform model for planning (Algorithm 7) when no plan/runtime
        supplies one.
    staleness_threshold:
        Modeled incremental-work fraction (0, 1] above which a delta
        falls back to full recompute.
    n_workers:
        Worker threads for table construction and the kernel.
    backend:
        Default kernel backend (name, instance, or ``None`` for the
        environment default); resolved and *pinned* per stream at
        registration so every re-contraction runs identically.
    runtime:
        Optional :class:`~repro.runtime.executor.ContractionRuntime` to
        integrate with: plans are shared through its
        :class:`~repro.runtime.plan_cache.PlanCache`, and every applied
        delta invalidates the runtime's cached linearizations/tables
        for the replaced tensor object.
    tracker:
        Dependency tracker to record artifacts in; a private one is
        created when omitted.
    log_maxlen:
        Bound on each stream side's :class:`MutationLog`.
    """

    def __init__(
        self,
        machine: MachineSpec = DESKTOP,
        *,
        staleness_threshold: float = DEFAULT_STALENESS_THRESHOLD,
        n_workers: int = 1,
        backend: "str | KernelBackend | None" = None,
        runtime=None,
        tracker: DependencyTracker | None = None,
        log_maxlen: int = 256,
    ):
        if not 0.0 < staleness_threshold <= 1.0:
            raise ConfigError(
                f"staleness_threshold must be in (0, 1], got {staleness_threshold}"
            )
        if log_maxlen < 1:
            raise ConfigError(f"log_maxlen must be >= 1, got {log_maxlen}")
        self.machine = machine
        self.staleness_threshold = float(staleness_threshold)
        self.n_workers = int(n_workers)
        self.backend = backend
        self.runtime = runtime
        self.tracker = tracker if tracker is not None else DependencyTracker()
        self.log_maxlen = int(log_maxlen)
        self.counters = Counters()
        self.records: list[StreamStats] = []
        self._states: dict[str, StreamState] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        left: COOTensor,
        right: COOTensor,
        pairs: Sequence[tuple[int, int]],
        *,
        accumulator: str = "auto",
        tile_size: int | None = None,
        plan: Plan | None = None,
    ) -> COOTensor:
        """Register a streaming contraction and compute its first output.

        The chosen plan and resolved backend are pinned for the stream's
        lifetime — incremental patching is only sound against a fixed
        tiling.  Returns the canonical initial output.
        """
        spec = ContractionSpec(left.shape, right.shape, pairs)
        left = left.sum_duplicates()
        right = right.sum_duplicates()
        sig = signature_for(
            left, right, pairs, self.machine,
            accumulator=accumulator, tile_size=tile_size,
        )
        if plan is None:
            cached = (
                self.runtime.plan_cache.get(sig)
                if self.runtime is not None else None
            )
            if cached is not None:
                plan = cached.materialize(spec)
            else:
                plan = choose_plan(
                    spec, left.nnz, right.nnz, self.machine,
                    accumulator=accumulator, tile_size=tile_size,
                )
                if self.runtime is not None:
                    self.runtime.plan_cache.put(sig, plan)
        backend = resolve_backend(
            self.backend, signature=sig,
        ) if not isinstance(self.backend, KernelBackend) else self.backend

        state = StreamState(str(name), spec, plan, backend)
        state.logs = {
            "left": MutationLog(self.log_maxlen),
            "right": MutationLog(self.log_maxlen),
        }
        state.left = left
        state.right = right
        state.left_op = spec.linearize_left(left).sum_duplicates()
        state.right_op = spec.linearize_right(right).sum_duplicates()
        state.hl = build_tiled_tables(
            state.left_op, plan.tile_l, n_workers=self.n_workers,
            counters=self.counters,
        )
        state.hr = build_tiled_tables(
            state.right_op, plan.tile_r, n_workers=self.n_workers,
            counters=self.counters,
        )
        l_idx, r_idx, values = self._contract_rows(
            state, state.left_op, state.right_op, state.hl, state.hr
        )
        self._store_rows(state, l_idx, r_idx, values)

        with self._lock:
            if str(name) in self._states:
                raise StreamError(f"stream {name!r} is already registered")
            ln, rn = self._tensor_keys(str(name))
            state.artifact_ids = [
                f"{name}:lin:left", f"{name}:lin:right",
                f"{name}:tables:left", f"{name}:tables:right",
                f"{name}:out",
            ]
            self.tracker.register(f"{name}:lin:left", "linearized", {ln: None})
            self.tracker.register(f"{name}:lin:right", "linearized", {rn: None})
            self.tracker.register(f"{name}:tables:left", "tiled_table", {ln: None})
            self.tracker.register(f"{name}:tables:right", "tiled_table", {rn: None})
            self.tracker.register(f"{name}:out", "output", {ln: None, rn: None})
            self._states[str(name)] = state
        assert state.output is not None
        return state.output

    @staticmethod
    def _tensor_keys(name: str) -> tuple[str, str]:
        """Tracker tensor names for a stream's two operands."""
        return f"{name}.left", f"{name}.right"

    def streams(self) -> list[str]:
        with self._lock:
            return sorted(self._states)

    def _state(self, name: str) -> StreamState:
        with self._lock:
            state = self._states.get(str(name))
        if state is None:
            raise StreamError(
                f"unknown stream {name!r}; register it first "
                f"(known: {self.streams()})"
            )
        return state

    # ------------------------------------------------------------------
    # Kernel plumbing
    # ------------------------------------------------------------------

    def _contract_rows(
        self,
        state: StreamState,
        left_op: LinearizedOperand,
        right_op: LinearizedOperand,
        hl: TiledTables,
        hr: TiledTables,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the pinned-plan kernel; returns raw linearized rows."""
        l_idx, r_idx, values, _ = tiled_co_contract(
            left_op, right_op, state.plan,
            n_workers=self.n_workers, counters=self.counters,
            tables=(hl, hr), backend=state.backend,
        )
        return l_idx, r_idx, values

    def _store_rows(
        self, state: StreamState,
        l_idx: np.ndarray, r_idx: np.ndarray, values: np.ndarray,
    ) -> None:
        """Sort rows into row-major output order and refresh the output.

        Output positions are unique (disjoint tile pairs, unique drains
        within each task), so sorting by the combined index ``l * R +
        r`` fully canonicalizes the representation — the thread/merge
        order of the producing tasks is erased, which is what makes
        patched and from-scratch outputs comparable bit-for-bit — and
        the delinearized tensor is already in canonical COO order, so
        no duplicate-merging pass is needed.  Rows and ``state.output``
        columns stay index-aligned (patching relies on it).
        """
        combined = l_idx * np.int64(state.spec.R) + r_idx
        order = np.argsort(combined, kind="stable")
        state.l_idx = l_idx[order]
        state.r_idx = r_idx[order]
        state.values = values[order]
        out = state.spec.delinearize_output(state.l_idx, state.r_idx, state.values)
        if combined.size > 1 and not np.all(np.diff(combined[order]) > 0):
            # Colliding output keys (no tiled kernel produces these, but
            # a foreign backend could): canonicalize the slow way and
            # re-derive the rows so alignment holds.
            out = out.sum_duplicates()
            self._rows_from_output(state, out)
            return
        state.output = out

    def _rows_from_output(self, state: StreamState, out: COOTensor) -> None:
        """Re-derive the linearized row arrays from a canonical output."""
        n_left = len(state.spec.left_external)
        state.l_idx = state.spec.lin_l.encode(out.coords[:n_left, :])
        state.r_idx = state.spec.lin_r.encode(out.coords[n_left:, :])
        state.values = out.values
        state.output = out

    def _merge_rows(
        self, state: StreamState, keep: np.ndarray,
        l_new: np.ndarray, r_new: np.ndarray, v_new: np.ndarray,
    ) -> None:
        """Splice freshly contracted rows into the kept (sorted) rows.

        The kept rows are a subsequence of an already-canonical store,
        so one sort of the (small) new block plus a linear merge
        replaces the full re-sort — and the output tensor's coordinate
        columns are spliced the same way, skipping the full-output
        delinearization.  Falls back to :meth:`_store_rows` if the new
        block collides with a kept key (never the case for disjoint
        tile patches; kept for safety).
        """
        R = np.int64(state.spec.R)
        order = np.argsort(l_new * R + r_new, kind="stable")
        l_new, r_new, v_new = l_new[order], r_new[order], v_new[order]
        new_combined = l_new * R + r_new
        kept_l = state.l_idx[keep]
        kept_r = state.r_idx[keep]
        kept_combined = kept_l * R + kept_r
        unique_new = new_combined.size <= 1 or bool(
            np.all(np.diff(new_combined) > 0)
        )
        pos = np.searchsorted(kept_combined, new_combined)
        hit = pos < kept_combined.size
        collides = bool(
            np.any(new_combined[hit] == kept_combined[pos[hit]])
        )
        if not unique_new or collides:
            self._store_rows(
                state,
                np.concatenate([kept_l, l_new]),
                np.concatenate([kept_r, r_new]),
                np.concatenate([state.values[keep], v_new]),
            )
            return
        assert state.output is not None
        total = kept_combined.size + new_combined.size
        new_at = np.zeros(total, dtype=bool)
        new_at[pos + np.arange(new_combined.size)] = True

        def splice(kept_arr, new_arr):
            merged = np.empty(total, dtype=kept_arr.dtype)
            merged[~new_at] = kept_arr
            merged[new_at] = new_arr
            return merged

        state.l_idx = splice(kept_l, l_new)
        state.r_idx = splice(kept_r, r_new)
        state.values = splice(state.values[keep], v_new)
        kept_coords = state.output.coords[:, keep]
        new_coords = state.spec.delinearize_output(l_new, r_new, v_new).coords
        coords = np.empty((kept_coords.shape[0], total), dtype=kept_coords.dtype)
        coords[:, ~new_at] = kept_coords
        coords[:, new_at] = new_coords
        state.output = COOTensor(
            coords, state.values, state.output.shape, check=False
        )

    def _splice_segments(
        self, state: StreamState, touched: np.ndarray, tile: int,
        l_new: np.ndarray, r_new: np.ndarray, v_new: np.ndarray,
    ) -> None:
        """Left-side patch via contiguous-slice replacement.

        The store is sorted by ``l * R + r`` with ``l`` as the primary
        key, so every touched *left* tile's rows occupy one contiguous
        slice, and the fresh tile blocks land exactly where the old
        ones were.  The whole patch is then a handful of
        ``concatenate`` copies — no keep-mask, no gather/scatter, and
        only the new rows are delinearized.  (Right-side patches can't
        use this: ``r`` is the secondary key, so a right tile's rows
        interleave through the store.)
        """
        R = np.int64(state.spec.R)
        order = np.argsort(l_new * R + r_new, kind="stable")
        l_new, r_new, v_new = l_new[order], r_new[order], v_new[order]
        new_combined = l_new * R + r_new
        tiles = np.sort(touched)
        in_touched = np.isin(l_new // np.int64(tile), tiles)
        if (
            new_combined.size > 1
            and not bool(np.all(np.diff(new_combined) > 0))
        ) or not bool(np.all(in_touched)):
            # Colliding keys or rows escaping the touched tiles: no
            # tiled kernel produces either, but fall back to the
            # generic full re-sort rather than corrupt the store.
            keep = ~np.isin(state.l_idx // np.int64(tile), tiles)
            self._merge_rows(state, keep, l_new, r_new, v_new)
            return
        assert state.output is not None
        new_coords = state.spec.delinearize_output(l_new, r_new, v_new).coords
        pieces_l: list[np.ndarray] = []
        pieces_r: list[np.ndarray] = []
        pieces_v: list[np.ndarray] = []
        pieces_c: list[np.ndarray] = []
        cursor = 0
        for t in tiles.tolist():
            lo_l, hi_l = t * tile, (t + 1) * tile
            lo, hi = np.searchsorted(state.l_idx, [lo_l, hi_l], side="left")
            new_lo, new_hi = np.searchsorted(
                l_new, [lo_l, hi_l], side="left"
            )
            pieces_l += [state.l_idx[cursor:lo], l_new[new_lo:new_hi]]
            pieces_r += [state.r_idx[cursor:lo], r_new[new_lo:new_hi]]
            pieces_v += [state.values[cursor:lo], v_new[new_lo:new_hi]]
            pieces_c += [
                state.output.coords[:, cursor:lo],
                new_coords[:, new_lo:new_hi],
            ]
            cursor = int(hi)
        pieces_l.append(state.l_idx[cursor:])
        pieces_r.append(state.r_idx[cursor:])
        pieces_v.append(state.values[cursor:])
        pieces_c.append(state.output.coords[:, cursor:])
        state.l_idx = np.concatenate(pieces_l)
        state.r_idx = np.concatenate(pieces_r)
        state.values = np.concatenate(pieces_v)
        state.output = COOTensor(
            np.concatenate(pieces_c, axis=1), state.values,
            state.output.shape, check=False,
        )

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        name: str,
        delta: DeltaBatch,
        *,
        side: str = "left",
        force: str | None = None,
    ) -> StreamStats:
        """Apply one delta batch to a registered stream's operand.

        ``side`` selects which operand mutates.  ``force`` overrides the
        staleness decision (``"incremental"`` or ``"full"``; benchmarks
        use it to measure both paths on the same delta).  Returns the
        per-call :class:`StreamStats` (also appended to ``records``).
        """
        if side not in ("left", "right"):
            raise ConfigError(f"side must be left|right, got {side!r}")
        if force not in (None, "incremental", "full"):
            raise ConfigError(
                f"force must be incremental|full when given, got {force!r}"
            )
        state = self._state(name)
        t0 = time.perf_counter()
        delta = delta.canonicalize()
        seq = state.logs[side].append(delta)

        spec = state.spec
        plan = state.plan
        if side == "left":
            old_tensor, partner_op = state.left, state.right_op
            tile, num_tiles = plan.tile_l, state.hl.num_tiles
            own_ext, partner_ext = spec.L, spec.R
        else:
            old_tensor, partner_op = state.right, state.left_op
            tile, num_tiles = plan.tile_r, state.hr.num_tiles
            own_ext, partner_ext = spec.R, spec.L
        assert old_tensor is not None and partner_op is not None

        if delta.n_ops == 0:
            stats = StreamStats(
                name=state.name, side=side, mode="noop", seq=seq,
                tiles_touched=0, tiles_total=num_tiles,
                modeled_fraction=0.0,
                seconds=time.perf_counter() - t0,
                output_nnz=state.output.nnz if state.output is not None else 0,
            )
            self.records.append(stats)
            return stats

        # Touched tiles: the delta's coordinates mapped through the
        # spec's external linearizer onto this side's tile grid.
        if side == "left":
            ext = spec.lin_l.encode(delta.coords[list(spec.left_external), :])
        else:
            ext = spec.lin_r.encode(delta.coords[list(spec.right_external), :])
        touched = np.unique(ext // np.int64(tile))

        new_tensor = delta.apply(old_tensor)
        new_op = (
            spec.linearize_left(new_tensor) if side == "left"
            else spec.linearize_right(new_tensor)
        ).sum_duplicates()

        # -- Section 5.1 pricing of the incremental path ----------------
        # Work is modeled as multiply-accumulate volume: the kernel's
        # per-tile-pair cost bound is nnz(HL_i) * nnz(HR_j), so the
        # affected fraction is (nnz in touched tiles) / (total nnz) of
        # the mutated side (the partner's volume cancels), plus the
        # modeled cost of re-draining the patched output rows — the
        # plan's estimated output density (Eq. 5.1) times the patched
        # index space — against the full output's modeled row count.
        tile_of = new_op.ext // np.int64(tile)
        per_tile = np.bincount(tile_of, minlength=num_tiles)
        affected_nnz = int(per_tile[touched].sum())
        mults_full = float(new_op.nnz) * float(partner_op.nnz)
        mults_inc = float(affected_nnz) * float(partner_op.nnz)
        rows_full = plan.est_output_density * float(own_ext) * float(partner_ext)
        rows_inc = plan.est_output_density * float(
            min(touched.shape[0] * tile, own_ext)
        ) * float(partner_ext)
        denom = mults_full + rows_full
        fraction = (mults_inc + rows_inc) / denom if denom > 0 else 1.0

        mode = "incremental" if fraction <= self.staleness_threshold else "full"
        if force is not None:
            mode = force

        # Bump versions and fan invalidation out before recomputing.
        tensor_key = self._tensor_keys(state.name)[0 if side == "left" else 1]
        self.tracker.bump(tensor_key, tiles=touched.tolist())
        if self.runtime is not None:
            self.runtime.invalidate_operand(old_tensor)

        if mode == "incremental":
            self._patch(state, side, new_tensor, new_op, touched, tile)
            self.counters.stream_incremental += 1
        else:
            self._rebuild(state, side, new_tensor, new_op, tile)
            self.counters.stream_full += 1
        for artifact_id in state.artifact_ids:
            self.tracker.refresh(artifact_id)

        stats = StreamStats(
            name=state.name, side=side, mode=mode, seq=seq,
            tiles_touched=int(touched.shape[0]), tiles_total=num_tiles,
            modeled_fraction=float(fraction),
            seconds=time.perf_counter() - t0,
            output_nnz=state.output.nnz if state.output is not None else 0,
        )
        self.records.append(stats)
        return stats

    def _patch(
        self,
        state: StreamState,
        side: str,
        new_tensor: COOTensor,
        new_op: LinearizedOperand,
        touched: np.ndarray,
        tile: int,
    ) -> None:
        """Re-contract only the touched tiles and patch the stored rows."""
        mask = np.isin(new_op.ext // np.int64(tile), touched)
        restricted = LinearizedOperand(
            ext=new_op.ext[mask], con=new_op.con[mask],
            values=new_op.values[mask],
            ext_extent=new_op.ext_extent, con_extent=new_op.con_extent,
        )
        h_restricted = build_tiled_tables(
            restricted, tile, n_workers=self.n_workers, counters=self.counters
        )
        if side == "left":
            assert state.hl is not None and state.right_op is not None
            l_new, r_new, v_new = self._contract_rows(
                state, restricted, state.right_op, h_restricted, state.hr
            )
            tables = list(state.hl.tables)
            for t in touched.tolist():
                tables[t] = h_restricted.tables[t]
            state.hl = TiledTables(tile, state.hl.num_tiles, tables, new_op.nnz)
            state.left, state.left_op = new_tensor, new_op
            self._splice_segments(state, touched, tile, l_new, r_new, v_new)
            return
        else:
            assert state.hr is not None and state.left_op is not None
            l_new, r_new, v_new = self._contract_rows(
                state, state.left_op, restricted, state.hl, h_restricted
            )
            keep = ~np.isin(state.r_idx // np.int64(tile), touched)
            tables = list(state.hr.tables)
            for t in touched.tolist():
                tables[t] = h_restricted.tables[t]
            state.hr = TiledTables(tile, state.hr.num_tiles, tables, new_op.nnz)
            state.right, state.right_op = new_tensor, new_op
        self._merge_rows(state, keep, l_new, r_new, v_new)

    def _rebuild(
        self,
        state: StreamState,
        side: str,
        new_tensor: COOTensor,
        new_op: LinearizedOperand,
        tile: int,
    ) -> None:
        """Full recompute: fresh tables for the mutated side, full kernel."""
        h_new = build_tiled_tables(
            new_op, tile, n_workers=self.n_workers, counters=self.counters
        )
        if side == "left":
            state.left, state.left_op, state.hl = new_tensor, new_op, h_new
        else:
            state.right, state.right_op, state.hr = new_tensor, new_op, h_new
        assert state.left_op is not None and state.right_op is not None
        l_idx, r_idx, values = self._contract_rows(
            state, state.left_op, state.right_op, state.hl, state.hr
        )
        self._store_rows(state, l_idx, r_idx, values)

    # ------------------------------------------------------------------
    # Results and maintenance
    # ------------------------------------------------------------------

    def result(self, name: str) -> COOTensor:
        """The stream's current canonical output (freshness-guarded)."""
        state = self._state(name)
        self.tracker.assert_fresh(f"{state.name}:out")
        assert state.output is not None
        return state.output

    def log(self, name: str, side: str = "left") -> MutationLog:
        state = self._state(name)
        if side not in state.logs:
            raise ConfigError(f"side must be left|right, got {side!r}")
        return state.logs[side]

    def invalidate(self, name: str) -> int:
        """Drop a stream's cached state; returns artifacts released."""
        with self._lock:
            state = self._states.pop(str(name), None)
        if state is None:
            return 0
        released = 0
        for artifact_id in state.artifact_ids:
            released += self.tracker.unregister(artifact_id)
        return released

    def metrics(self) -> dict:
        """JSON-friendly aggregate metrics."""
        records = list(self.records)
        inc = [r for r in records if r.mode == "incremental"]
        full = [r for r in records if r.mode == "full"]
        with self._lock:
            streams = sorted(self._states)
        return {
            "streams": streams,
            "deltas_applied": len(records),
            "incremental": len(inc),
            "full": len(full),
            "incremental_seconds": sum(r.seconds for r in inc),
            "full_seconds": sum(r.seconds for r in full),
            "mean_modeled_fraction": (
                sum(r.modeled_fraction for r in records) / len(records)
                if records else 0.0
            ),
            "tracker": self.tracker.stats(),
        }
