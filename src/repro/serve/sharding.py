"""Consistent-hash signature routing for process-sharded serving.

The sharded front end (:mod:`repro.serve.router`) needs a stable map
from a request's structural signature key (the same
:class:`~repro.runtime.signature.ProblemSignature` /
:class:`~repro.network.plan.NetworkSignature` key micro-batching groups
by) onto N shard processes.  Consistent hashing gives that map three
properties the serving shape depends on:

* **signature affinity** — a given signature always routes to the same
  shard, so each shard sees a stable signature subset and its private
  plan cache converges to ~100% hit rate (signature affinity is PR 5's
  micro-batching generalized across processes);
* **minimal movement** — adding or removing a shard (scale-out,
  failure) remaps only the keys owned by the affected shard's ring
  arcs, so surviving shards keep their warm caches;
* **weighted placement** — per-shard weights scale the virtual-node
  count, which is the knob the load-driven rebalancing hook turns when
  the queue-depth/SLO metrics report a skewed ring.

The ring hashes with BLAKE2b (seeded only by the shard id and virtual
node index), so placement is deterministic across processes and runs —
a router restart routes every signature exactly as before.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Mapping, Sequence

from repro.errors import ConfigError

__all__ = [
    "HashRing",
    "ring_shares",
    "suggest_weights",
]

#: Default virtual nodes per unit of shard weight.  128 points per
#: shard keeps the expected per-shard share within a few percent of
#: fair for realistic shard counts while the ring stays tiny.
DEFAULT_REPLICAS = 128

#: Weight clamp for rebalancing: a shard can be asked to take between
#: a quarter and four times its fair share, never dropped to zero
#: (dropping is the failure path, not the rebalancing path).
MIN_WEIGHT = 0.25
MAX_WEIGHT = 4.0


def _hash64(text: str) -> int:
    """Deterministic 64-bit point for one ring label."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Weighted consistent-hash ring over shard identifiers.

    Parameters
    ----------
    shards:
        Initial shard identifiers (any hashable with a stable ``str``
        form — the router uses integer shard ids).
    replicas:
        Virtual nodes per unit weight (see :data:`DEFAULT_REPLICAS`).
    weights:
        Optional per-shard weight map; missing shards default to 1.0.
    """

    def __init__(
        self,
        shards: Iterable[Hashable] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
        weights: Mapping[Hashable, float] | None = None,
    ):
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._weights: dict[Hashable, float] = {}
        self._points: list[tuple[int, str, Hashable]] = []
        for shard in shards:
            weight = 1.0 if weights is None else float(weights.get(shard, 1.0))
            self.add_shard(shard, weight=weight)

    # -- membership -----------------------------------------------------

    @property
    def shards(self) -> list[Hashable]:
        """Current members, in insertion order."""
        return list(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, shard: Hashable) -> bool:
        return shard in self._weights

    def weight(self, shard: Hashable) -> float:
        return self._weights[shard]

    def _vnodes(self, weight: float) -> int:
        return max(1, round(self.replicas * weight))

    def add_shard(self, shard: Hashable, *, weight: float = 1.0) -> None:
        """Add (or re-weight) one shard; only its own points move."""
        if not weight > 0:
            raise ConfigError(f"shard weight must be > 0, got {weight}")
        if shard in self._weights:
            self.remove_shard(shard)
        self._weights[shard] = float(weight)
        for k in range(self._vnodes(weight)):
            label = f"{shard}#{k}"
            point = (_hash64(label), label, shard)
            bisect.insort(self._points, point)

    def remove_shard(self, shard: Hashable) -> None:
        """Drop one shard; its keys redistribute over the survivors."""
        if shard not in self._weights:
            raise ConfigError(f"shard {shard!r} is not on the ring")
        del self._weights[shard]
        self._points = [p for p in self._points if p[2] != shard]

    def set_weights(self, weights: Mapping[Hashable, float]) -> None:
        """Re-weight existing shards (the rebalancing hook's entry)."""
        unknown = set(weights) - set(self._weights)
        if unknown:
            raise ConfigError(f"unknown shard(s) in weights: {sorted(map(str, unknown))}")
        for shard, weight in weights.items():
            self.add_shard(shard, weight=weight)

    # -- routing --------------------------------------------------------

    def route(self, key: str) -> Hashable:
        """The shard owning ``key`` (clockwise-next virtual node)."""
        if not self._points:
            raise ConfigError("cannot route on an empty ring")
        point = _hash64(key)
        idx = bisect.bisect_right(self._points, (point, "￿", None))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][2]

    def assignment(
        self, keys: Sequence[str]
    ) -> dict[Hashable, list[str]]:
        """Bucket ``keys`` by owning shard (empty shards included)."""
        out: dict[Hashable, list[str]] = {s: [] for s in self._weights}
        for key in keys:
            out[self.route(key)].append(key)
        return out


def ring_shares(
    ring: HashRing, keys: Sequence[str]
) -> dict[Hashable, float]:
    """Fraction of ``keys`` each shard owns (the balance view).

    This is what the ``FSTC305`` lint and the rebalancing hook look at:
    for a *declared* signature set the shares are exact, not
    statistical, so a pathological split is knowable before any load
    is offered.
    """
    assignment = ring.assignment(keys)
    total = max(1, len(keys))
    return {shard: len(owned) / total for shard, owned in assignment.items()}


def suggest_weights(
    ring: HashRing,
    loads: Mapping[Hashable, float],
    *,
    gain: float = 0.5,
) -> dict[Hashable, float]:
    """Load-driven weight suggestion for :meth:`HashRing.set_weights`.

    ``loads`` is any nonnegative per-shard load measure — queue depth,
    busy seconds, completed-request share — typically read off the
    aggregated SLO metrics.  Overloaded shards (load above the mean)
    get their weight scaled down, underloaded shards up, by
    ``(mean / load) ** gain``; the result is clamped to
    ``[MIN_WEIGHT, MAX_WEIGHT]`` so one bad sample can never empty a
    shard.  Shards with no load sample keep their weight.
    """
    if not 0 < gain <= 1:
        raise ConfigError(f"gain must be in (0, 1], got {gain}")
    sampled = {s: max(0.0, float(v)) for s, v in loads.items() if s in ring}
    out = {s: ring.weight(s) for s in ring.shards}
    if not sampled:
        return out
    mean = sum(sampled.values()) / len(sampled)
    if mean <= 0:
        return out
    for shard, load in sampled.items():
        # A zero-load shard is maximally underloaded: treat as one
        # epsilon sample rather than dividing by zero.
        ratio = mean / max(load, mean * 1e-3)
        weight = out[shard] * ratio**gain
        out[shard] = min(MAX_WEIGHT, max(MIN_WEIGHT, weight))
    return out
