"""Request/response vocabulary of the contraction service.

A :class:`Request` is one unit of client work: a *pairwise*
contraction (two COO operands plus contracted mode pairs — the
:class:`~repro.runtime.ContractionRuntime` shape), a *network*
contraction (einsum subscripts plus N operands — the
:class:`~repro.network.NetworkExecutor` shape), or a *stream*
operation (register / delta / query / invalidate against a named
evolving contraction owned by an
:class:`~repro.streaming.IncrementalEngine`).  Requests optionally
carry a relative **deadline** (seconds of budget from admission) and an
integer **priority** (higher drains first).

Stream requests key their affinity on the *stream name* rather than a
structural signature: under the sharded front end every operation on
one stream consistently hashes to the same shard, so exactly one
process owns that stream's mutation log and incremental state.

Submitting a request yields a :class:`Ticket` — a small future the
service resolves exactly once with a :class:`Response`.  Every response
reaches one of the terminal statuses in :data:`TERMINAL_STATUSES`;
``shed`` and ``timeout`` responses carry no result, ``degraded``
responses carry a result computed down the degradation ladder (see
:mod:`repro.serve.service`), and ``failed`` wraps an execution error.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigError, SchedulerError
from repro.machine.specs import MachineSpec
from repro.tensors.coo import COOTensor

__all__ = [
    "PAIRWISE",
    "NETWORK",
    "STREAM",
    "STREAM_OPS",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "STATUS_FAILED",
    "TERMINAL_STATUSES",
    "Request",
    "Response",
    "Ticket",
    "Job",
]

#: Request kinds.
PAIRWISE = "pairwise"
NETWORK = "network"
STREAM = "stream"

#: Operations a stream request may carry.
STREAM_OPS = ("register", "delta", "query", "invalidate")

#: Terminal response statuses.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_SHED = "shed"
STATUS_TIMEOUT = "timeout"
STATUS_FAILED = "failed"

TERMINAL_STATUSES = (
    STATUS_OK, STATUS_DEGRADED, STATUS_SHED, STATUS_TIMEOUT, STATUS_FAILED,
)


@dataclass(frozen=True)
class Request:
    """One client contraction request (build via :meth:`pairwise` /
    :meth:`network`).

    ``deadline_s`` is a *relative* budget: the service stamps the
    admission time and enforces ``admission + deadline_s`` between
    pipeline stages.  ``priority`` orders draining (higher first; FIFO
    within a priority class) and protects against ``shed_oldest``
    eviction, which victimizes the lowest class first.
    """

    kind: str
    name: str = ""
    priority: int = 0
    deadline_s: float | None = None
    # pairwise fields
    left: COOTensor | None = None
    right: COOTensor | None = None
    pairs: tuple[tuple[int, int], ...] = ()
    # network fields
    subscripts: str = ""
    operands: tuple[COOTensor, ...] = ()
    # stream fields (the delta payload is a repro.streaming.DeltaBatch;
    # typed loosely to keep this module import-light)
    stream_name: str = ""
    stream_op: str = ""
    delta: object | None = None
    side: str = "left"

    @classmethod
    def pairwise(
        cls,
        left: COOTensor,
        right: COOTensor,
        pairs: Sequence[tuple[int, int]],
        *,
        name: str = "",
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> "Request":
        """A two-operand contraction request (``contract()`` shape)."""
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigError(f"deadline_s must be > 0, got {deadline_s}")
        return cls(
            kind=PAIRWISE,
            name=name,
            priority=int(priority),
            deadline_s=deadline_s,
            left=left,
            right=right,
            pairs=tuple((int(a), int(b)) for a, b in pairs),
        )

    @classmethod
    def network(
        cls,
        subscripts: str,
        *operands: COOTensor,
        name: str = "",
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> "Request":
        """A multi-operand einsum request (``einsum()`` shape)."""
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigError(f"deadline_s must be > 0, got {deadline_s}")
        if not operands:
            raise ConfigError("a network request needs at least one operand")
        return cls(
            kind=NETWORK,
            name=name,
            priority=int(priority),
            deadline_s=deadline_s,
            subscripts=subscripts,
            operands=tuple(operands),
        )

    @classmethod
    def stream(
        cls,
        stream_name: str,
        op: str,
        *,
        left: COOTensor | None = None,
        right: COOTensor | None = None,
        pairs: Sequence[tuple[int, int]] = (),
        delta=None,
        side: str = "left",
        name: str = "",
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> "Request":
        """A streaming-tensor request against a named evolving stream.

        ``op`` selects the operation:

        * ``"register"`` — establish the stream: contract ``left`` and
          ``right`` over ``pairs`` and retain the incremental state;
        * ``"delta"`` — apply a :class:`~repro.streaming.DeltaBatch`
          (``delta``) to the ``side`` operand and return the refreshed
          output (patched incrementally when cheap enough);
        * ``"query"`` — return the current output without mutating;
        * ``"invalidate"`` — drop the stream's state and caches.
        """
        if op not in STREAM_OPS:
            raise ConfigError(
                f"stream op must be one of {STREAM_OPS}, got {op!r}"
            )
        if not stream_name:
            raise ConfigError("a stream request needs a stream_name")
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigError(f"deadline_s must be > 0, got {deadline_s}")
        if op == "register" and (left is None or right is None or not pairs):
            raise ConfigError(
                "stream register needs left, right and contracted pairs"
            )
        if op == "delta" and delta is None:
            raise ConfigError("stream delta needs a DeltaBatch payload")
        if side not in ("left", "right"):
            raise ConfigError(f"side must be 'left' or 'right', got {side!r}")
        return cls(
            kind=STREAM,
            name=name or stream_name,
            priority=int(priority),
            deadline_s=deadline_s,
            left=left,
            right=right,
            pairs=tuple((int(a), int(b)) for a, b in pairs),
            stream_name=stream_name,
            stream_op=op,
            delta=delta,
            side=side,
        )

    def affinity_key(self, machine: MachineSpec) -> str:
        """The structural signature key micro-batching groups by.

        Pairwise requests use the runtime's
        :class:`~repro.runtime.signature.ProblemSignature`; network
        requests use the :class:`~repro.network.plan.NetworkSignature`.
        Two requests sharing a key replay the same cached plan, so
        running them back to back turns the whole group (minus the
        first) into warm-cache work.

        Stream requests key on the *stream name* instead: all
        operations on one stream share a key, so consistent hashing
        pins the stream — its mutation log, incremental tables and
        cached output — to exactly one shard.
        """
        if self.kind == STREAM:
            return f"stream:{self.stream_name}"
        if self.kind == PAIRWISE:
            from repro.runtime.signature import signature_for

            return signature_for(
                self.left, self.right, self.pairs, machine
            ).key
        from repro.network.ir import TensorNetwork
        from repro.network.plan import NetworkSignature

        network = TensorNetwork.parse(self.subscripts, self.operands)
        return NetworkSignature.for_network(network, machine).key


@dataclass
class Response:
    """Terminal outcome of one request.

    ``timings`` holds per-stage wall-clock seconds (``queue_wait``,
    ``execute``, ``total``); ``degrade_rung`` names which rung of the
    degradation ladder produced a ``degraded`` result (``"cached-plan"``
    replays a warm plan — numerically identical to the full path —
    while ``"cheap-path"`` skips expensive planning entirely).  A
    ``timeout`` response whose work finished just after the deadline
    still carries its (late) result, letting best-effort callers use it.
    """

    name: str
    status: str
    result: COOTensor | None = None
    detail: str = ""
    plan_source: str = ""
    accumulator: str = ""
    tile: int = 0
    degrade_rung: str | None = None
    timings: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True for statuses that delivered a usable result."""
        return self.status in (STATUS_OK, STATUS_DEGRADED)


class Ticket:
    """Single-resolution future handed back by ``submit()``."""

    __slots__ = ("_event", "_response")

    def __init__(self):
        self._event = threading.Event()
        self._response: Response | None = None

    def resolve(self, response: Response) -> None:
        """Deliver the terminal response (first resolution wins)."""
        if self._response is None:
            self._response = response
            self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Response:
        """Block for the response; :class:`SchedulerError` on wait timeout."""
        if not self._event.wait(timeout):
            raise SchedulerError(
                f"no response within {timeout}s (request still in flight)"
            )
        assert self._response is not None
        return self._response


@dataclass
class Job:
    """A request in flight: admission metadata the service stamps on.

    ``arrival``/``deadline_at`` are :func:`time.monotonic` stamps;
    ``seq`` is the global admission order (ties within a priority class
    break FIFO on it); ``affinity`` is the precomputed signature key.
    """

    request: Request
    ticket: Ticket
    seq: int
    arrival: float
    deadline_at: float | None
    affinity: str

    @property
    def priority(self) -> int:
        return self.request.priority
