"""Load generation against a :class:`ContractionService`.

Two classic generator shapes:

* **open loop** (:func:`run_open_loop`) — arrivals follow a seeded
  Poisson process at a fixed offered rate, independent of service
  progress.  This is the regime where overload is visible: offered
  load above capacity grows the queue until the admission policy sheds
  or blocks, so shed rate and p99 latency are the interesting outputs.
* **closed loop** (:func:`run_closed_loop`) — N synthetic clients each
  submit, wait, and repeat.  Throughput self-limits at service
  capacity, which makes the closed-loop rate a capacity *measurement*
  (the benchmarks calibrate offered loads against it).

:func:`synthetic_requests` builds the mixed-signature request stream
the batching layer is designed for: K structurally distinct problems
interleaved round-robin (the most cache-hostile FIFO order), each
recurrence reusing the *same* tensor objects — the serving shape where
one popular tensor is contracted by many users.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.random_tensors import random_coo
from repro.errors import ConfigError
from repro.serve.request import Request

__all__ = [
    "LoadReport",
    "synthetic_requests",
    "run_open_loop",
    "run_closed_loop",
]


@dataclass
class LoadReport:
    """Outcome of one load-generation run.

    ``seed`` records the RNG seed the generator actually ran with
    (``None`` when the caller supplied a pre-built generator), so a
    benchmark JSON document carries everything needed to reproduce the
    arrival process bit-for-bit.
    """

    mode: str                 # "open" | "closed"
    n_requests: int
    offered_rps: float        # open loop: target rate; closed: 0.0
    duration_s: float
    statuses: dict = field(default_factory=dict)
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    queue_high_water: int = 0
    seed: int | None = None

    @property
    def achieved_rps(self) -> float:
        return self.n_requests / self.duration_s if self.duration_s > 0 else 0.0

    def rate(self, status: str) -> float:
        return self.statuses.get(status, 0) / self.n_requests \
            if self.n_requests else 0.0

    @property
    def shed_rate(self) -> float:
        return self.rate("shed")

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "n_requests": self.n_requests,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "duration_s": self.duration_s,
            "statuses": dict(self.statuses),
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "queue_high_water": self.queue_high_water,
            "seed": self.seed,
        }

    def render(self) -> str:
        bits = ", ".join(f"{k}={v}" for k, v in self.statuses.items() if v)
        rate = (
            f"offered {self.offered_rps:.1f} rps, " if self.offered_rps else ""
        )
        return (
            f"{self.mode}-loop: {self.n_requests} requests in "
            f"{self.duration_s:.2f}s ({rate}achieved "
            f"{self.achieved_rps:.1f} rps)\n"
            f"  statuses: {bits or '(none)'}\n"
            f"  latency p50={self.p50_s * 1e3:.2f}ms "
            f"p95={self.p95_s * 1e3:.2f}ms p99={self.p99_s * 1e3:.2f}ms; "
            f"queue high-water {self.queue_high_water}"
        )


def synthetic_requests(
    n: int,
    *,
    n_signatures: int = 4,
    base_shape: tuple[int, int] = (40, 36),
    nnz: int = 150,
    seed: int = 0,
    deadline_s: float | None = None,
    priority_classes: int = 1,
) -> list[Request]:
    """A mixed-signature pairwise request stream, round-robin interleaved.

    ``n_signatures`` structurally distinct matrix contractions
    ``(m, c_k) x (c_k, m)`` are templated once (distinct contracted
    extents → distinct :class:`ProblemSignature` keys) and the stream
    cycles through them — the adversarial order for an LRU plan cache
    smaller than the signature count.  Recurrences share tensor
    *objects*, so the operand/table caches see the serving shape too.
    """
    if n_signatures < 1:
        raise ConfigError(f"n_signatures must be >= 1, got {n_signatures}")
    m, c = base_shape
    templates = []
    for k in range(n_signatures):
        ck = c + 2 * k  # distinct contracted extent → distinct signature
        left = random_coo((m, ck), nnz=nnz, seed=seed + 2 * k)
        right = random_coo((ck, m), nnz=nnz, seed=seed + 2 * k + 1)
        templates.append((left, right))
    out = []
    for i in range(n):
        left, right = templates[i % n_signatures]
        out.append(Request.pairwise(
            left, right, [(1, 0)],
            name=f"req{i}:sig{i % n_signatures}",
            priority=i % max(1, priority_classes),
            deadline_s=deadline_s,
        ))
    return out


def _resolve_rng(
    seed: int | None, rng: np.random.Generator | None
) -> tuple[np.random.Generator, int | None]:
    """One RNG for a generator run, plus the seed to document.

    An explicit ``rng`` wins (its seed is unknowable, so the report
    carries ``None``); otherwise the generator is built from ``seed``,
    which is what lands in the report/benchmark JSON — the whole
    arrival process is reproducible from that one integer.
    """
    if rng is not None:
        return rng, None
    used = 0 if seed is None else int(seed)
    return np.random.default_rng(used), used


def _queue_stats(service) -> dict:
    """Queue stats from either a service or a sharded router.

    :class:`ContractionService` exposes ``queue.stats()``; the
    process-sharded :class:`~repro.serve.router.ShardRouter` exposes
    the same shape as ``queue_stats()``.
    """
    stats = getattr(service, "queue_stats", None)
    if callable(stats):
        return stats()
    return service.queue.stats()


def _aggregate(
    service,
    tickets,
    requests,
    *,
    mode: str,
    offered_rps: float,
    duration_s: float,
    wait_timeout_s: float,
    seed: int | None = None,
) -> LoadReport:
    statuses: dict[str, int] = {}
    latencies = []
    for ticket in tickets:
        response = ticket.result(wait_timeout_s)
        statuses[response.status] = statuses.get(response.status, 0) + 1
        if "total" in response.timings:
            latencies.append(response.timings["total"])
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return LoadReport(
        mode=mode,
        n_requests=len(requests),
        offered_rps=offered_rps,
        duration_s=duration_s,
        statuses=statuses,
        p50_s=pct(0.50),
        p95_s=pct(0.95),
        p99_s=pct(0.99),
        queue_high_water=_queue_stats(service)["high_water"],
        seed=seed,
    )


def run_open_loop(
    service,
    requests,
    rate_rps: float,
    *,
    seed: int = 0,
    rng: np.random.Generator | None = None,
    wait_timeout_s: float = 60.0,
) -> LoadReport:
    """Submit with Poisson inter-arrival gaps at ``rate_rps``; wait all.

    Arrivals are fully determined by ``seed`` (or by an explicit
    ``rng``, which takes precedence); the seed used is recorded on the
    returned report so benchmark JSON documents the run.
    """
    if rate_rps <= 0:
        raise ConfigError(f"rate_rps must be > 0, got {rate_rps}")
    rng, used_seed = _resolve_rng(seed, rng)
    gaps = rng.exponential(1.0 / rate_rps, size=len(requests))
    tickets = []
    t_start = time.perf_counter()
    next_at = t_start
    for request, gap in zip(requests, gaps):
        next_at += gap
        pause = next_at - time.perf_counter()
        if pause > 0:
            time.sleep(pause)
        tickets.append(service.submit(request))
    submit_done = time.perf_counter()
    report = _aggregate(
        service, tickets, requests,
        mode="open", offered_rps=rate_rps,
        duration_s=submit_done - t_start, wait_timeout_s=wait_timeout_s,
        seed=used_seed,
    )
    return report


def run_closed_loop(
    service,
    requests,
    *,
    concurrency: int = 4,
    seed: int = 0,
    rng: np.random.Generator | None = None,
    think_time_s: float = 0.0,
    wait_timeout_s: float = 60.0,
) -> LoadReport:
    """N clients each submit-wait-repeat until the stream is drained.

    With ``think_time_s > 0`` each client sleeps an exponentially
    distributed think time (mean ``think_time_s``) between requests;
    the per-client think-time streams are split deterministically off
    ``seed``/``rng``, so a closed-loop run is reproducible from the one
    recorded seed exactly like the open-loop generator.
    """
    if concurrency < 1:
        raise ConfigError(f"concurrency must be >= 1, got {concurrency}")
    if think_time_s < 0:
        raise ConfigError(f"think_time_s must be >= 0, got {think_time_s}")
    root_rng, used_seed = _resolve_rng(seed, rng)
    client_rngs = root_rng.spawn(concurrency) if think_time_s > 0 else None
    tickets = [None] * len(requests)
    cursor = {"next": 0}
    cursor_lock = threading.Lock()

    def client(k: int) -> None:
        while True:
            with cursor_lock:
                i = cursor["next"]
                if i >= len(requests):
                    return
                cursor["next"] = i + 1
            ticket = service.submit(requests[i])
            tickets[i] = ticket
            ticket.result(wait_timeout_s)
            if client_rngs is not None:
                time.sleep(client_rngs[k].exponential(think_time_s))

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(k,), name=f"loadgen-client-{k}")
        for k in range(min(concurrency, max(1, len(requests))))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t_start
    return _aggregate(
        service, tickets, requests,
        mode="closed", offered_rps=0.0,
        duration_s=duration, wait_timeout_s=wait_timeout_s,
        seed=used_seed,
    )
