"""Load generation against a :class:`ContractionService`.

Two classic generator shapes:

* **open loop** (:func:`run_open_loop`) — arrivals follow a seeded
  Poisson process at a fixed offered rate, independent of service
  progress.  This is the regime where overload is visible: offered
  load above capacity grows the queue until the admission policy sheds
  or blocks, so shed rate and p99 latency are the interesting outputs.
* **closed loop** (:func:`run_closed_loop`) — N synthetic clients each
  submit, wait, and repeat.  Throughput self-limits at service
  capacity, which makes the closed-loop rate a capacity *measurement*
  (the benchmarks calibrate offered loads against it).

:func:`synthetic_requests` builds the mixed-signature request stream
the batching layer is designed for: K structurally distinct problems
interleaved round-robin (the most cache-hostile FIFO order), each
recurrence reusing the *same* tensor objects — the serving shape where
one popular tensor is contracted by many users.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.random_tensors import random_coo
from repro.errors import ConfigError
from repro.serve.request import Request
from repro.serve.service import ContractionService

__all__ = [
    "LoadReport",
    "synthetic_requests",
    "run_open_loop",
    "run_closed_loop",
]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str                 # "open" | "closed"
    n_requests: int
    offered_rps: float        # open loop: target rate; closed: 0.0
    duration_s: float
    statuses: dict = field(default_factory=dict)
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    queue_high_water: int = 0

    @property
    def achieved_rps(self) -> float:
        return self.n_requests / self.duration_s if self.duration_s > 0 else 0.0

    def rate(self, status: str) -> float:
        return self.statuses.get(status, 0) / self.n_requests \
            if self.n_requests else 0.0

    @property
    def shed_rate(self) -> float:
        return self.rate("shed")

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "n_requests": self.n_requests,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "duration_s": self.duration_s,
            "statuses": dict(self.statuses),
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "queue_high_water": self.queue_high_water,
        }

    def render(self) -> str:
        bits = ", ".join(f"{k}={v}" for k, v in self.statuses.items() if v)
        rate = (
            f"offered {self.offered_rps:.1f} rps, " if self.offered_rps else ""
        )
        return (
            f"{self.mode}-loop: {self.n_requests} requests in "
            f"{self.duration_s:.2f}s ({rate}achieved "
            f"{self.achieved_rps:.1f} rps)\n"
            f"  statuses: {bits or '(none)'}\n"
            f"  latency p50={self.p50_s * 1e3:.2f}ms "
            f"p95={self.p95_s * 1e3:.2f}ms p99={self.p99_s * 1e3:.2f}ms; "
            f"queue high-water {self.queue_high_water}"
        )


def synthetic_requests(
    n: int,
    *,
    n_signatures: int = 4,
    base_shape: tuple[int, int] = (40, 36),
    nnz: int = 150,
    seed: int = 0,
    deadline_s: float | None = None,
    priority_classes: int = 1,
) -> list[Request]:
    """A mixed-signature pairwise request stream, round-robin interleaved.

    ``n_signatures`` structurally distinct matrix contractions
    ``(m, c_k) x (c_k, m)`` are templated once (distinct contracted
    extents → distinct :class:`ProblemSignature` keys) and the stream
    cycles through them — the adversarial order for an LRU plan cache
    smaller than the signature count.  Recurrences share tensor
    *objects*, so the operand/table caches see the serving shape too.
    """
    if n_signatures < 1:
        raise ConfigError(f"n_signatures must be >= 1, got {n_signatures}")
    m, c = base_shape
    templates = []
    for k in range(n_signatures):
        ck = c + 2 * k  # distinct contracted extent → distinct signature
        left = random_coo((m, ck), nnz=nnz, seed=seed + 2 * k)
        right = random_coo((ck, m), nnz=nnz, seed=seed + 2 * k + 1)
        templates.append((left, right))
    out = []
    for i in range(n):
        left, right = templates[i % n_signatures]
        out.append(Request.pairwise(
            left, right, [(1, 0)],
            name=f"req{i}:sig{i % n_signatures}",
            priority=i % max(1, priority_classes),
            deadline_s=deadline_s,
        ))
    return out


def _aggregate(
    service: ContractionService,
    tickets,
    requests,
    *,
    mode: str,
    offered_rps: float,
    duration_s: float,
    wait_timeout_s: float,
) -> LoadReport:
    statuses: dict[str, int] = {}
    latencies = []
    for ticket in tickets:
        response = ticket.result(wait_timeout_s)
        statuses[response.status] = statuses.get(response.status, 0) + 1
        if "total" in response.timings:
            latencies.append(response.timings["total"])
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return LoadReport(
        mode=mode,
        n_requests=len(requests),
        offered_rps=offered_rps,
        duration_s=duration_s,
        statuses=statuses,
        p50_s=pct(0.50),
        p95_s=pct(0.95),
        p99_s=pct(0.99),
        queue_high_water=service.queue.stats()["high_water"],
    )


def run_open_loop(
    service: ContractionService,
    requests,
    rate_rps: float,
    *,
    seed: int = 0,
    wait_timeout_s: float = 60.0,
) -> LoadReport:
    """Submit with Poisson inter-arrival gaps at ``rate_rps``; wait all."""
    if rate_rps <= 0:
        raise ConfigError(f"rate_rps must be > 0, got {rate_rps}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=len(requests))
    tickets = []
    t_start = time.perf_counter()
    next_at = t_start
    for request, gap in zip(requests, gaps):
        next_at += gap
        pause = next_at - time.perf_counter()
        if pause > 0:
            time.sleep(pause)
        tickets.append(service.submit(request))
    submit_done = time.perf_counter()
    report = _aggregate(
        service, tickets, requests,
        mode="open", offered_rps=rate_rps,
        duration_s=submit_done - t_start, wait_timeout_s=wait_timeout_s,
    )
    return report


def run_closed_loop(
    service: ContractionService,
    requests,
    *,
    concurrency: int = 4,
    wait_timeout_s: float = 60.0,
) -> LoadReport:
    """N clients each submit-wait-repeat until the stream is drained."""
    if concurrency < 1:
        raise ConfigError(f"concurrency must be >= 1, got {concurrency}")
    tickets = [None] * len(requests)
    cursor = {"next": 0}
    cursor_lock = threading.Lock()

    def client() -> None:
        while True:
            with cursor_lock:
                i = cursor["next"]
                if i >= len(requests):
                    return
                cursor["next"] = i + 1
            ticket = service.submit(requests[i])
            tickets[i] = ticket
            ticket.result(wait_timeout_s)

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=client, name=f"loadgen-client-{k}")
        for k in range(min(concurrency, max(1, len(requests))))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t_start
    return _aggregate(
        service, tickets, requests,
        mode="closed", offered_rps=0.0,
        duration_s=duration, wait_timeout_s=wait_timeout_s,
    )
