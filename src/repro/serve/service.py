"""The contraction service: admission, workers, deadlines, degradation.

:class:`ContractionService` fronts the adaptive runtime and the network
executor with the serving machinery the ROADMAP's traffic shape needs:

* **bounded admission** through an :class:`~repro.serve.queueing.AdmissionQueue`
  (policies ``reject`` / ``shed_oldest`` / ``block``) — overload becomes
  explicit ``shed`` responses or submitter backpressure, never unbounded
  queue growth;
* a **worker pool** draining the queue in micro-batches reordered by
  :func:`~repro.serve.batching.affinity_order`, so requests sharing a
  :class:`~repro.runtime.signature.ProblemSignature` (across users, not
  just within one caller) replay warm plans and tables through the one
  shared :class:`~repro.runtime.ContractionRuntime`;
* **deadline enforcement with a degradation ladder** — cooperative
  checks between pipeline stages, and when the remaining budget is
  smaller than ``degrade_margin`` times the request's model-predicted
  cost floor, the worker steps down the ladder instead of running the
  full pipeline:

  1. *cached-plan*: replay the plan cache entry for the request's
     signature (numerically identical to the full path — only the
     planning work is skipped);
  2. *cheap-path*: no cached plan — pairwise requests run under the
     directly-chosen sparse accumulator (skipping Algorithm 7's dense
     probe estimate), network requests take the left-to-right path
     (skipping DP/greedy path search).

  Either rung marks the response ``degraded``; a deadline that expires
  before execution yields ``timeout`` without burning kernel time.
* **SLO metrics** (:class:`~repro.serve.slo.ServiceMetrics`): per-stage
  latency histograms, terminal status counts, queue stats and the
  runtime/network cache hit rates, exported as one JSON document.

Construction lints the configuration through
:func:`repro.staticcheck.lint_service_config` and — when autotuning is
enabled — :func:`repro.staticcheck.lint_autotune_config`, refusing
error-severity findings (``FSTC301``, ``FSTC601``, ``FSTC603``), so an
unbounded queue or a runaway exploration rate can not reach
production; warnings are kept on ``config_diagnostics``.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass

from repro.errors import ConfigError, ReproError, SchedulerError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.network.executor import NetworkExecutor, StepResultCache
from repro.network.ir import TensorNetwork
from repro.network.optimize import resolve_optimizer
from repro.network.plan import NetworkSignature
from repro.runtime.executor import ContractionRuntime
from repro.runtime.signature import signature_for
from repro.serve.batching import affinity_order
from repro.serve.queueing import BLOCK, POLICIES, AdmissionQueue
from repro.serve.request import (
    NETWORK,
    PAIRWISE,
    STREAM,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    Job,
    Request,
    Response,
    Ticket,
)
from repro.serve.slo import ServiceMetrics

__all__ = ["ServiceConfig", "ContractionService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`ContractionService`.

    ``degrade_margin`` scales the degradation trigger: a request enters
    the ladder when its remaining budget is below ``degrade_margin *
    cost_floor``.  ``force_degraded`` pins every request to the ladder
    regardless of budget — a test/bench knob for exercising the
    degraded paths deterministically.

    ``backend`` names the kernel backend the service's runtime executes
    on (``"numpy"`` reference, ``"scipy"``, ``"arrayapi"``, or
    ``"auto"`` for the per-signature policy; see
    :mod:`repro.backends`).  The default keeps served results
    bit-identical to direct ``contract()`` calls.

    ``cross_request_cse`` shares intermediate step results *across the
    network requests of one drained micro-batch*: each worker hands the
    batch a fresh :class:`~repro.network.executor.StepResultCache`, so
    two requests contracting the same subnetwork (verified by content
    digest) compute it once.  The cache dies with the batch — nothing
    leaks between batches or workers.

    ``autotune`` enables online bandit exploration
    (:mod:`repro.autotune`): a bounded fraction
    (``autotune_explore_rate``) of *eligible* requests — no deadline,
    not degraded, queue depth at most ``autotune_max_queue_depth`` —
    execute a challenger plan instead of the cached champion, and a
    challenger that wins by ``autotune_promote_margin`` over
    ``autotune_min_trials`` measured trials is promoted (with automatic
    rollback on regression).  ``autotune_state_path`` persists the
    learned state (calibrated weights, measurements, champions) across
    restarts; leaving it unset relearns from scratch every process
    (``FSTC602`` warns).
    """

    queue_capacity: int = 64
    policy: str = "reject"
    n_workers: int = 2
    max_batch: int = 8
    default_deadline_s: float | None = None
    default_priority: int = 0
    degrade_margin: float = 1.5
    force_degraded: bool = False
    drain_timeout_s: float = 0.05
    plan_cache_size: int = 128
    operand_cache_size: int = 16
    backend: str = "numpy"
    cross_request_cse: bool = True
    autotune: bool = False
    autotune_explore_rate: float = 0.05
    autotune_min_trials: int = 3
    autotune_promote_margin: float = 0.10
    autotune_state_path: str | None = None
    autotune_max_queue_depth: int = 4
    # Streaming (``stream`` request kind): fraction of the modeled full
    # recompute below which a delta is serviced by tile patching, and
    # the per-stream mutation-log bound.  Linted as FSTC703/FSTC704.
    stream_staleness_threshold: float = 0.35
    stream_log_maxlen: int = 256

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ConfigError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.degrade_margin < 0:
            raise ConfigError(
                f"degrade_margin must be >= 0, got {self.degrade_margin}"
            )
        from repro.backends.registry import known_backends

        if self.backend != "auto" and self.backend not in known_backends():
            raise ConfigError(
                f"backend must be 'auto' or one of {known_backends()}, "
                f"got {self.backend!r}"
            )


class ContractionService:
    """Concurrent contraction serving over one shared runtime.

    Parameters
    ----------
    machine:
        Platform model for planning, affinity signatures and the cost
        floor.
    config:
        A :class:`ServiceConfig`; defaults when omitted.
    runtime:
        A shared :class:`ContractionRuntime` (built fresh from the
        config's cache sizes when omitted).
    executor:
        A shared :class:`NetworkExecutor`; when omitted, one is built
        *over the same runtime*, so network steps and pairwise requests
        hit the same plan/table caches.
    """

    def __init__(
        self,
        machine: MachineSpec = DESKTOP,
        config: ServiceConfig | None = None,
        *,
        runtime: ContractionRuntime | None = None,
        executor: NetworkExecutor | None = None,
    ):
        from repro.staticcheck import (
            has_errors,
            lint_autotune_config,
            lint_service_config,
            lint_stream_config,
        )

        self.machine = machine
        self.config = config if config is not None else ServiceConfig()
        self.config_diagnostics = lint_service_config(self.config, machine)
        self.config_diagnostics += lint_autotune_config(
            self.config, location="service config"
        )
        self.config_diagnostics += lint_stream_config(
            self.config, location="service config"
        )
        if has_errors(self.config_diagnostics):
            findings = "; ".join(
                d.render() for d in self.config_diagnostics
                if d.severity == "error"
            )
            raise ConfigError(f"refusing unsafe service config: {findings}")

        self.runtime = runtime if runtime is not None else ContractionRuntime(
            machine=machine,
            cache_size=self.config.plan_cache_size,
            operand_cache_size=self.config.operand_cache_size,
            backend=self.config.backend,
        )
        self.executor = executor if executor is not None else NetworkExecutor(
            machine=machine, runtime=self.runtime
        )
        self.tuner = None
        if self.config.autotune:
            from repro.autotune import OnlineTuner, TunerConfig

            self.tuner = OnlineTuner(machine, TunerConfig(
                explore_rate=self.config.autotune_explore_rate,
                min_trials=self.config.autotune_min_trials,
                promote_margin=self.config.autotune_promote_margin,
                state_path=self.config.autotune_state_path,
            )).attach(self.runtime)
        # Streaming engine, created on first stream request.  One lock
        # serializes all stream operations: deltas against one stream
        # are order-sensitive, and the engine's state is shared across
        # the worker pool.
        self._stream_engine = None
        self._stream_lock = threading.Lock()
        self.queue = AdmissionQueue(
            self.config.queue_capacity, self.config.policy
        )
        self.metrics = ServiceMetrics()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._floors: dict[str, float] = {}
        self._floors_lock = threading.Lock()
        self._workers: list[threading.Thread] = []
        self._started = False
        self._stopped = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ContractionService":
        """Spawn the worker pool (idempotent until :meth:`stop`)."""
        if self._stopped:
            raise SchedulerError("a stopped service cannot be restarted")
        if not self._started:
            self._started = True
            for k in range(self.config.n_workers):
                t = threading.Thread(
                    target=self._worker_loop,
                    name=f"serve-worker-{k}",
                    daemon=True,
                )
                t.start()
                self._workers.append(t)
        return self

    def stop(self, *, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Close admission and wind the pool down.

        ``drain=True`` (default) lets workers finish every admitted
        request; ``drain=False`` sheds whatever is still queued.
        """
        if not self._started or self._stopped:
            self._stopped = True
            self.queue.close()
            return
        self._stopped = True
        self.queue.close()
        if not drain:
            for job in self.queue.drain_all():
                self._finish(job, Response(
                    name=job.request.name, status=STATUS_SHED,
                    detail="service stopped before execution",
                ), arrival=job.arrival)
        for t in self._workers:
            t.join(timeout)
        self._workers.clear()
        if self.tuner is not None:
            self.tuner.flush()

    def __enter__(self) -> "ContractionService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def close(self) -> None:
        """Tear down without draining (idempotent, interrupt-safe).

        The CLI calls this from a ``finally`` so a KeyboardInterrupt
        still sheds queued work and winds down worker threads; the
        sharded front end's :meth:`ShardRouter.close` additionally
        reaps shard processes.
        """
        self.stop(drain=False, timeout=5.0)

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    # -- client surface -------------------------------------------------

    def submit(self, request: Request) -> Ticket:
        """Admit one request; always returns a ticket that resolves.

        A refused admission (full queue under ``reject``, closed
        service, exhausted ``block`` wait) resolves the ticket as
        ``shed`` immediately; a ``shed_oldest`` eviction resolves the
        *victim's* ticket as ``shed``.
        """
        if not self._started:
            raise SchedulerError(
                "service is not running; use `with service:` or start()"
            )
        ticket = Ticket()
        now = time.monotonic()
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        job = Job(
            request=request,
            ticket=ticket,
            seq=self._next_seq(),
            arrival=now,
            deadline_at=None if deadline_s is None else now + deadline_s,
            affinity=request.affinity_key(self.machine),
        )
        self.metrics.note_submitted()
        block_timeout = deadline_s if self.config.policy == BLOCK else None
        admitted, evicted = self.queue.offer(job, timeout=block_timeout)
        if evicted is not None:
            self._finish(evicted, Response(
                name=evicted.request.name, status=STATUS_SHED,
                detail="evicted by a newer arrival (shed_oldest)",
            ), arrival=evicted.arrival)
        if not admitted:
            self._finish(job, Response(
                name=request.name, status=STATUS_SHED,
                detail=f"admission refused (policy {self.config.policy}, "
                       f"capacity {self.config.queue_capacity})",
            ), arrival=job.arrival)
        return ticket

    def call(
        self, request: Request, *, timeout: float | None = None
    ) -> Response:
        """Submit and block for the terminal response."""
        return self.submit(request).result(timeout)

    def invalidate_stream(self, name: str) -> int:
        """Drop one stream's cached state (idempotent, queue-bypassing).

        The sharded router fans this out to *every* shard: streams have
        shard affinity, but after a death/respawn or a ring rebalance a
        stream's state may survive on a shard that no longer owns it —
        broadcasting makes the invalidation reach any such orphan.
        Returns the number of tracked artifacts released (0 when this
        service holds no state for the stream).
        """
        with self._stream_lock:
            if self._stream_engine is None:
                return 0
            return self._stream_engine.invalidate(name)

    # -- metrics --------------------------------------------------------

    def metrics_json(self) -> dict:
        """One JSON document covering the whole serving stack."""
        payload = self.metrics.to_json()
        payload["queue"] = self.queue.stats()
        payload["runtime"] = self.runtime.metrics()
        payload["network"] = self.executor.metrics()
        payload["machine"] = self.machine.name
        if self.tuner is not None:
            payload["autotune"] = self.tuner.metrics()
        with self._stream_lock:
            if self._stream_engine is not None:
                payload["streaming"] = self._stream_engine.metrics()
        return payload

    # -- internals ------------------------------------------------------

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _cost_floor(self, job: Job) -> float:
        """Memoized model cost floor per affinity key."""
        from repro.staticcheck import cost_floor_seconds

        with self._floors_lock:
            floor = self._floors.get(job.affinity)
        if floor is None:
            floor = cost_floor_seconds(job.request, self.machine)
            with self._floors_lock:
                self._floors[job.affinity] = floor
        return floor

    def _worker_loop(self) -> None:
        while True:
            jobs = self.queue.drain(
                self.config.max_batch, timeout=self.config.drain_timeout_s
            )
            if jobs:
                batch_cache = (
                    StepResultCache() if self.config.cross_request_cse
                    else None
                )
                for job in affinity_order(jobs):
                    self._process(job, batch_cache=batch_cache)
                continue
            if self.queue.closed:
                return

    def _finish(
        self, job: Job, response: Response, *, arrival: float | None = None
    ) -> None:
        if arrival is not None and "total" not in response.timings:
            response.timings["total"] = time.monotonic() - arrival
        self.metrics.observe(response)
        job.ticket.resolve(response)

    def _process(
        self, job: Job, *, batch_cache: StepResultCache | None = None
    ) -> None:
        request = job.request
        now = time.monotonic()
        timings = {"queue_wait": now - job.arrival}

        # Stage check 1: a dead-on-arrival deadline skips execution.
        if job.deadline_at is not None and now >= job.deadline_at:
            self._finish(job, Response(
                name=request.name, status=STATUS_TIMEOUT,
                detail="deadline expired while queued",
                timings=timings,
            ), arrival=job.arrival)
            return

        # Stage check 2: decide full pipeline vs. degradation ladder.
        degrade = self.config.force_degraded
        if not degrade and job.deadline_at is not None:
            remaining = job.deadline_at - now
            degrade = (
                remaining < self.config.degrade_margin * self._cost_floor(job)
            )

        # Exploration eligibility: never on degraded or deadline-carrying
        # requests, and only while the queue is shallow (exploring under
        # pressure spends latency the backlog cannot afford).
        bracket = contextlib.nullcontext()
        if self.tuner is not None:
            eligible = (
                not degrade
                and job.deadline_at is None
                and self.queue.depth <= self.config.autotune_max_queue_depth
            )
            bracket = self.tuner.serving(eligible=eligible)

        t0 = time.perf_counter()
        try:
            with bracket:
                if request.kind == PAIRWISE:
                    result, record, rung = self._run_pairwise(request, degrade)
                    plan_source = record.plan_source
                    accumulator, tile = record.accumulator, record.tile
                elif request.kind == NETWORK:
                    result, report, rung = self._run_network(
                        request, degrade, batch_cache=batch_cache
                    )
                    plan_source = report.plan_source
                    accumulator, tile = "", 0
                elif request.kind == STREAM:
                    result, plan_source, rung = self._run_stream(request)
                    accumulator, tile = "", 0
                else:
                    raise ConfigError(
                        f"unknown request kind {request.kind!r}"
                    )
        except ReproError as exc:
            timings["execute"] = time.perf_counter() - t0
            self._finish(job, Response(
                name=request.name, status=STATUS_FAILED,
                detail=f"{type(exc).__name__}: {exc}",
                timings=timings,
            ), arrival=job.arrival)
            return
        timings["execute"] = time.perf_counter() - t0

        # Stage check 3: work that outlived its budget reports timeout
        # (the late result stays attached for best-effort callers).
        status = STATUS_DEGRADED if rung else STATUS_OK
        detail = ""
        if job.deadline_at is not None and time.monotonic() > job.deadline_at:
            status = STATUS_TIMEOUT
            detail = "completed after the deadline (late result attached)"
        self._finish(job, Response(
            name=request.name, status=status, result=result, detail=detail,
            plan_source=plan_source, accumulator=accumulator, tile=tile,
            degrade_rung=rung, timings=timings,
        ), arrival=job.arrival)

    def _run_pairwise(self, request: Request, degrade: bool):
        """Execute a pairwise request, possibly down the ladder.

        Rung 1 replays the cached plan for the request's (auto)
        signature through the normal runtime path; rung 2 — no cached
        plan — directly selects the sparse accumulator, skipping the
        planner's dense-probe estimate.  The benign check-then-act race
        (an eviction between the lookup and the call) only costs one
        full planning pass.
        """
        rung = None
        kwargs: dict = {}
        if degrade:
            sig = signature_for(
                request.left, request.right, request.pairs, self.machine
            )
            if sig in self.runtime.plan_cache:
                rung = "cached-plan"
            else:
                rung = "cheap-path"
                kwargs["accumulator"] = "sparse"
        out, record = self.runtime.contract(
            request.left, request.right, request.pairs,
            name=request.name, return_record=True, **kwargs,
        )
        return out, record, rung

    def _run_stream(self, request: Request):
        """Execute one stream operation against the shared engine.

        Stream requests never enter the degradation ladder: a delta is
        already the cheap path when the staleness model allows it, and
        skipping a mutation (unlike skipping planning work) would
        change every later answer.  Returns ``(result, plan_source,
        rung)`` — ``plan_source`` reports ``incremental``/``full``/
        ``noop`` for deltas so callers can see which path serviced the
        mutation.
        """
        with self._stream_lock:
            engine = self._stream_engine
            if engine is None:
                from repro.streaming import IncrementalEngine

                engine = IncrementalEngine(
                    self.machine,
                    staleness_threshold=(
                        self.config.stream_staleness_threshold
                    ),
                    log_maxlen=self.config.stream_log_maxlen,
                    runtime=self.runtime,
                    backend=(
                        None if self.config.backend == "auto"
                        else self.config.backend
                    ),
                )
                self._stream_engine = engine
            op = request.stream_op
            if op == "register":
                out = engine.register(
                    request.stream_name, request.left, request.right,
                    request.pairs,
                )
                return out, "register", None
            if op == "delta":
                stats = engine.apply_delta(
                    request.stream_name, request.delta, side=request.side,
                )
                return engine.result(request.stream_name), stats.mode, None
            if op == "query":
                return engine.result(request.stream_name), "query", None
            # op == "invalidate" (Request.stream validated the op)
            dropped = engine.invalidate(request.stream_name)
            return None, f"invalidated:{dropped}", None

    def _run_network(
        self,
        request: Request,
        degrade: bool,
        *,
        batch_cache: StepResultCache | None = None,
    ):
        """Execute a network request, possibly down the ladder.

        Rung 1 replays a warm full-quality plan if one is cached for
        the auto optimizer; rung 2 takes the left-to-right path,
        skipping DP/greedy path search.  ``batch_cache`` shares
        digest-verified step results across the requests of one drained
        micro-batch (cross-request CSE).
        """
        rung = None
        optimizer = "auto"
        tune_key = None
        explored_arm = None
        if degrade:
            warm = self.executor.cached_plan(
                request.subscripts, request.operands, optimizer="auto"
            )
            if warm is not None:
                rung = "cached-plan"
            else:
                rung = "cheap-path"
                optimizer = "left"
        elif self.tuner is not None:
            network = TensorNetwork.parse(
                request.subscripts, request.operands
            )
            champion = resolve_optimizer("auto", network)
            tune_key = NetworkSignature.for_network(
                network, self.machine, champion,
                pipeline=self.executor.pipeline_key,
            ).key
            cand = self.tuner.route_network(tune_key, network, champion)
            if cand is not None:
                explored_arm = cand.arm_id
                optimizer = cand.optimizer
            else:
                preferred = self.tuner.preferred_network_optimizer(tune_key)
                if preferred is not None:
                    optimizer = preferred
        t0 = time.perf_counter()
        out, report = self.executor.contract(
            request.subscripts, *request.operands,
            optimizer=optimizer, return_report=True,
            cse_cache=batch_cache,
        )
        if tune_key is not None:
            self.tuner.observe_network(
                tune_key, explored_arm, time.perf_counter() - t0
            )
        return out, report, rung
