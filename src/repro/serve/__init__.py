"""``repro.serve`` — the contraction service layer.

Fronts the adaptive runtime (:mod:`repro.runtime`) and the network
planner (:mod:`repro.network`) with a long-running, concurrent serving
surface: a bounded admission queue with load-shedding/backpressure
policies, a worker pool that micro-batches requests by structural
signature so plan/table caches warm *across* callers, cooperative
deadline enforcement with a two-rung degradation ladder, and an SLO
metrics layer (latency histograms, status counts, cache hit rates)
exported as one JSON document.

Quick start::

    from repro.serve import ContractionService, Request, ServiceConfig

    config = ServiceConfig(queue_capacity=32, policy="reject", n_workers=2)
    with ContractionService(config=config) as service:
        ticket = service.submit(
            Request.pairwise(a, b, [(1, 0)], deadline_s=0.5)
        )
        response = ticket.result()
        assert response.status in ("ok", "degraded")
        out = response.result

CLI front end: ``python -m repro serve`` (a load generator over a live
service); architecture notes in ``docs/serve.md``.
"""

from repro.serve.batching import affinity_groups, affinity_order, plan_microbatches
from repro.serve.loadgen import (
    LoadReport,
    run_closed_loop,
    run_open_loop,
    synthetic_requests,
)
from repro.serve.queueing import POLICIES, AdmissionQueue
from repro.serve.request import (
    NETWORK,
    PAIRWISE,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    STREAM,
    STREAM_OPS,
    TERMINAL_STATUSES,
    Job,
    Request,
    Response,
    Ticket,
)
from repro.serve.router import ShardedConfig, ShardRouter
from repro.serve.service import ContractionService, ServiceConfig
from repro.serve.shard_worker import ShardSpec
from repro.serve.sharding import HashRing, ring_shares, suggest_weights
from repro.serve.slo import (
    LatencyHistogram,
    ServiceMetrics,
    merge_histogram_json,
    merge_metrics_json,
)

__all__ = [
    "AdmissionQueue",
    "ContractionService",
    "HashRing",
    "Job",
    "LatencyHistogram",
    "LoadReport",
    "NETWORK",
    "PAIRWISE",
    "POLICIES",
    "Request",
    "Response",
    "ServiceConfig",
    "ServiceMetrics",
    "ShardRouter",
    "ShardSpec",
    "ShardedConfig",
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "STREAM",
    "STREAM_OPS",
    "TERMINAL_STATUSES",
    "Ticket",
    "affinity_groups",
    "affinity_order",
    "merge_histogram_json",
    "merge_metrics_json",
    "plan_microbatches",
    "ring_shares",
    "run_closed_loop",
    "run_open_loop",
    "suggest_weights",
    "synthetic_requests",
]
