"""Process-sharded serving front end: consistent-hash signature routing.

PR 5's :class:`~repro.serve.ContractionService` is thread-pooled, so
CPU-bound contraction load serializes on one GIL no matter how many
workers are configured.  :class:`ShardRouter` scales past that by
spawning N :mod:`shard worker <repro.serve.shard_worker>` processes —
each a full private service (own runtime, plan cache, bounded admission
queue) — and consistent-hashing every request's structural signature
key onto the ring of live shards (:mod:`repro.serve.sharding`).

Signature affinity is the point, not just the mechanism: a given
:class:`~repro.runtime.signature.ProblemSignature` /
``NetworkSignature`` always lands on the same shard, so each shard sees
a stable signature subset and its private plan cache converges to ~100%
hit rate — PR 5's micro-batching generalized across processes.

The router also owns the failure story:

* **bounded admission per shard** — at most ``max_in_flight`` requests
  outstanding per shard; excess arrivals shed immediately, so neither
  the IPC pipe nor the shard queue grows without bound;
* **death detection** — a liveness monitor polls shard processes; a
  dead shard is removed from the ring and its in-flight requests are
  **requeued** onto surviving shards with bounded retries (a request
  whose retries run out resolves ``failed``, never silently lost);
* **optional respawn** — with ``respawn=True`` a dead shard is
  restarted (warm-starting its plan cache from the persisted JSON when
  ``cache_dir`` is set) and rejoins the ring when it reports ready;
* **rebalancing hooks** — :meth:`ShardRouter.rebalance` feeds the
  per-shard queue-depth/SLO metrics into
  :func:`~repro.serve.sharding.suggest_weights` and re-weights the
  ring's virtual nodes.

Metrics from all shards merge into one exportable view
(:meth:`metrics_json`): the ``aggregate`` section is the associative
snapshot merge from :func:`repro.serve.slo.merge_metrics_json`, the
``shards`` section keeps the per-shard breakdown, and ``router`` adds
routing/failure counters.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError, SchedulerError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.serve.request import (
    STATUS_FAILED,
    STATUS_SHED,
    Request,
    Response,
    Ticket,
)
from repro.serve.service import ServiceConfig
from repro.serve.shard_worker import ShardSpec, shard_main
from repro.serve.sharding import DEFAULT_REPLICAS, HashRing, suggest_weights
from repro.serve.slo import merge_metrics_json

__all__ = ["ShardedConfig", "ShardRouter"]


@dataclass(frozen=True)
class ShardedConfig:
    """Tunables of one :class:`ShardRouter`.

    ``max_in_flight`` is the router-side per-shard admission bound (the
    shard's own :class:`~repro.serve.queueing.AdmissionQueue` bounds a
    second time inside the process).  ``max_retries`` caps how many
    times one request may be requeued after shard deaths before it
    resolves ``failed``.  ``cache_dir`` enables plan-cache warm-start:
    shard ``k`` persists to ``<cache_dir>/plan_cache_shard<k>.json`` and
    reloads it on (re)start.
    """

    n_shards: int = 2
    service: ServiceConfig = field(default_factory=ServiceConfig)
    replicas: int = DEFAULT_REPLICAS
    max_in_flight: int = 64
    max_retries: int = 2
    respawn: bool = False
    cache_dir: str | None = None
    poll_interval_s: float = 0.05
    start_timeout_s: float = 120.0

    def __post_init__(self):
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.max_in_flight < 1:
            raise ConfigError(
                f"max_in_flight must be >= 1, got {self.max_in_flight} "
                "(an unbounded router pipe defeats load shedding)"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )


class _Shard:
    """Router-side state of one shard process (mutated under the router
    lock, except for queue operations which are thread-safe)."""

    __slots__ = (
        "shard_id", "process", "inbox", "outbox", "alive", "stopped",
        "generation", "in_flight", "high_water", "ready", "warm_entries",
        "final_metrics", "routed",
    )

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process = None
        self.inbox = None
        self.outbox = None
        self.alive = False
        self.stopped = False
        self.generation = 0
        self.in_flight: set[int] = set()
        self.high_water = 0
        self.ready = threading.Event()
        self.warm_entries = 0
        self.final_metrics: dict | None = None
        self.routed = 0


class _InFlight:
    """One accepted request awaiting its terminal response."""

    __slots__ = ("request", "ticket", "shard_id", "retries")

    def __init__(self, request: Request, ticket: Ticket, shard_id: int):
        self.request = request
        self.ticket = ticket
        self.shard_id = shard_id
        self.retries = 0


class ShardRouter:
    """Consistent-hash front end over N shard worker processes.

    Construction lints the sharded configuration
    (:func:`repro.staticcheck.lint_shard_config`): oversubscription and
    ring-balance findings land on ``config_diagnostics`` (warnings);
    structurally broken configs raise :class:`ConfigError` before any
    process spawns.
    """

    def __init__(
        self,
        machine: MachineSpec = DESKTOP,
        config: ShardedConfig | None = None,
    ):
        from repro.staticcheck import has_errors, lint_shard_config

        self.machine = machine
        self.config = config if config is not None else ShardedConfig()
        self.config_diagnostics = lint_shard_config(self.config)
        if has_errors(self.config_diagnostics):
            findings = "; ".join(
                d.render() for d in self.config_diagnostics
                if d.severity == "error"
            )
            raise ConfigError(f"refusing unsafe shard config: {findings}")

        self._ctx = mp.get_context("spawn")
        self._shards: dict[int, _Shard] = {
            k: _Shard(k) for k in range(self.config.n_shards)
        }
        self.ring = HashRing(replicas=self.config.replicas)
        self._lock = threading.RLock()
        self._inflight: dict[int, _InFlight] = {}
        self._seq = 0
        self._started = False
        self._stopped = False
        self._shutdown = threading.Event()
        self._collectors: list[threading.Thread] = []
        self._monitor: threading.Thread | None = None
        self._metric_waits: dict[int, dict] = {}
        self._token = 0
        # failure-story counters (mutated under the lock)
        self.deaths = 0
        self.requeued = 0
        self.respawns = 0
        self.dropped = 0
        self.shed_at_router = 0

    # -- lifecycle ------------------------------------------------------

    def _cache_path(self, shard_id: int) -> str | None:
        if self.config.cache_dir is None:
            return None
        os.makedirs(self.config.cache_dir, exist_ok=True)
        return os.path.join(
            self.config.cache_dir, f"plan_cache_shard{shard_id}.json"
        )

    def _autotune_path(self, shard_id: int) -> str | None:
        """Per-shard autotune state file (one writer per file)."""
        if self.config.cache_dir is None or not self.config.service.autotune:
            return None
        os.makedirs(self.config.cache_dir, exist_ok=True)
        return os.path.join(
            self.config.cache_dir, f"autotune_shard{shard_id}.json"
        )

    def _spawn(self, shard: _Shard) -> None:
        # caller holds the lock
        spec = ShardSpec(
            shard_id=shard.shard_id,
            machine_name=self.machine.name,
            service=self.config.service,
            cache_path=self._cache_path(shard.shard_id),
            autotune_path=self._autotune_path(shard.shard_id),
        )
        # Fresh queues per generation: a hard-killed process can die while
        # holding its outbox's cross-process write lock, which would wedge
        # every later writer — so each shard gets a private outbox and a
        # respawn abandons the old (possibly corrupt) one outright.
        shard.inbox = self._ctx.Queue()
        shard.outbox = self._ctx.Queue()
        shard.ready.clear()
        shard.alive = True
        shard.stopped = False
        shard.generation += 1
        shard.process = self._ctx.Process(
            target=shard_main,
            args=(spec, shard.inbox, shard.outbox),
            name=f"repro-shard-{shard.shard_id}.{shard.generation}",
            daemon=True,
        )
        shard.process.start()
        collector = threading.Thread(
            target=self._collector_loop,
            args=(shard.shard_id, shard.generation, shard.outbox),
            name=f"shard-router-collect-{shard.shard_id}.{shard.generation}",
            daemon=True,
        )
        self._collectors.append(collector)
        collector.start()

    def start(self) -> "ShardRouter":
        """Spawn every shard and wait until all report ready."""
        if self._stopped:
            raise SchedulerError("a stopped router cannot be restarted")
        if self._started:
            return self
        self._started = True
        # Everything after the spawn loop runs under a BaseException
        # guard: a KeyboardInterrupt landing in the ready-wait would
        # otherwise leak N live shard processes.
        try:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="shard-router-monitor",
                daemon=True,
            )
            self._monitor.start()
            with self._lock:
                for shard in self._shards.values():
                    self._spawn(shard)
            deadline = time.monotonic() + self.config.start_timeout_s
            for shard in self._shards.values():
                remaining = deadline - time.monotonic()
                if not shard.ready.wait(max(0.0, remaining)):
                    raise SchedulerError(
                        f"shard {shard.shard_id} did not become ready "
                        f"within {self.config.start_timeout_s}s"
                    )
        except BaseException:
            self.close()
            raise
        return self

    def stop(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop every shard (draining admitted work by default)."""
        if not self._started or self._stopped:
            self._stopped = True
            self._shutdown.set()
            return
        self._stopped = True
        with self._lock:
            live = [s for s in self._shards.values() if s.alive]
            for shard in live:
                try:
                    shard.inbox.put(("stop",))
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout
        for shard in live:
            shard.process.join(max(0.1, deadline - time.monotonic()))
        # Give the collector a chance to deliver the final responses and
        # "stopped" payloads that raced the joins.
        while time.monotonic() < deadline:
            with self._lock:
                if not self._inflight:
                    break
            time.sleep(0.02)
        self._shutdown.set()
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
            for shard in self._shards.values():
                shard.alive = False
                shard.in_flight.clear()
        for entry in leftovers:
            entry.ticket.resolve(Response(
                name=entry.request.name, status=STATUS_SHED,
                detail="router stopped before a shard responded",
            ))
        for collector in self._collectors:
            collector.join(timeout=5.0)
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def close(self) -> None:
        """Reap every shard process without draining (idempotent).

        Safe at any point of the lifecycle — including after an
        interrupt that landed mid-:meth:`start`, when shards are
        spawned but not yet ready.  After the cooperative ``stop`` it
        hard-kills any process that still has not exited, so a caller's
        ``finally: router.close()`` can never leak children.
        """
        try:
            self.stop(drain=False, timeout=10.0)
        finally:
            for shard in list(self._shards.values()):
                process = shard.process
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    # -- client surface -------------------------------------------------

    def submit(self, request: Request) -> Ticket:
        """Route one request to its signature's shard; always resolves.

        Refused admissions (per-shard in-flight bound hit, no live
        shard) resolve the ticket ``shed`` immediately, mirroring the
        in-process service's contract.
        """
        if not self._started or self._stopped:
            raise SchedulerError(
                "router is not running; use `with router:` or start()"
            )
        ticket = Ticket()
        affinity = request.affinity_key(self.machine)
        with self._lock:
            if len(self.ring) == 0:
                self.shed_at_router += 1
                ticket.resolve(Response(
                    name=request.name, status=STATUS_SHED,
                    detail="no live shard on the ring",
                ))
                return ticket
            shard = self._shards[self.ring.route(affinity)]
            if len(shard.in_flight) >= self.config.max_in_flight:
                self.shed_at_router += 1
                ticket.resolve(Response(
                    name=request.name, status=STATUS_SHED,
                    detail=f"shard {shard.shard_id} at its in-flight bound "
                           f"({self.config.max_in_flight})",
                ))
                return ticket
            self._seq += 1
            uid = self._seq
            self._inflight[uid] = _InFlight(request, ticket, shard.shard_id)
            shard.in_flight.add(uid)
            shard.routed += 1
            if len(shard.in_flight) > shard.high_water:
                shard.high_water = len(shard.in_flight)
            shard.inbox.put(("req", uid, request))
        return ticket

    def call(
        self, request: Request, *, timeout: float | None = None
    ) -> Response:
        """Submit and block for the terminal response."""
        return self.submit(request).result(timeout)

    # -- failure handling ----------------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one shard process (chaos/testing hook).

        The liveness monitor notices the death and runs the normal
        requeue/respawn path — this method only delivers the fault.
        """
        with self._lock:
            shard = self._shards[shard_id]
            process = shard.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=10.0)

    def _handle_death(self, shard: _Shard) -> None:
        with self._lock:
            if not shard.alive:
                return
            shard.alive = False
            self.deaths += 1
            if shard.shard_id in self.ring:
                self.ring.remove_shard(shard.shard_id)
            orphans = sorted(shard.in_flight)
            shard.in_flight.clear()
        for uid in orphans:
            self._requeue(uid, dead=shard.shard_id)
        if self.config.respawn and not self._stopped:
            with self._lock:
                self._spawn(shard)
                self.respawns += 1

    def _requeue(self, uid: int, *, dead: int) -> None:
        """Move one orphaned request to a surviving shard (bounded)."""
        with self._lock:
            entry = self._inflight.get(uid)
            if entry is None or entry.ticket.done():
                self._inflight.pop(uid, None)
                return
            entry.retries += 1
            if entry.retries > self.config.max_retries:
                self._inflight.pop(uid, None)
                self.dropped += 1
                entry.ticket.resolve(Response(
                    name=entry.request.name, status=STATUS_FAILED,
                    detail=f"shard {dead} died and retries are exhausted "
                           f"({self.config.max_retries})",
                ))
                return
            if len(self.ring) == 0:
                self._inflight.pop(uid, None)
                self.dropped += 1
                entry.ticket.resolve(Response(
                    name=entry.request.name, status=STATUS_FAILED,
                    detail=f"shard {dead} died with no survivor to requeue to",
                ))
                return
            affinity = entry.request.affinity_key(self.machine)
            target = self._shards[self.ring.route(affinity)]
            entry.shard_id = target.shard_id
            target.in_flight.add(uid)
            target.routed += 1
            self.requeued += 1
            target.inbox.put(("req", uid, entry.request))

    # -- background threads ---------------------------------------------

    def _collector_loop(
        self, shard_id: int, generation: int, outbox
    ) -> None:
        """Drain one shard generation's private outbox.

        The thread exits when the router shuts down or the shard is
        respawned (a newer generation owns a fresh queue; this one is
        abandoned because the killed process may have corrupted it).
        """
        import queue as _queue

        while True:
            try:
                message = outbox.get(timeout=self.config.poll_interval_s)
            except _queue.Empty:
                if self._shutdown.is_set():
                    return
                with self._lock:
                    if self._shards[shard_id].generation != generation:
                        return
                continue
            except (OSError, ValueError, EOFError):
                return
            self._dispatch(message)

    def _dispatch(self, message) -> None:
        kind = message[0]
        if kind == "resp":
            _, shard_id, uid, response = message
            with self._lock:
                entry = self._inflight.pop(uid, None)
                self._shards[shard_id].in_flight.discard(uid)
            if entry is not None:
                entry.ticket.resolve(response)
        elif kind == "ready":
            _, shard_id, warm_entries = message
            with self._lock:
                shard = self._shards[shard_id]
                shard.warm_entries = warm_entries
                if shard.shard_id not in self.ring and not self._stopped:
                    self.ring.add_shard(shard.shard_id)
                shard.ready.set()
        elif kind == "metrics":
            _, shard_id, token, payload = message
            with self._lock:
                wait = self._metric_waits.get(token)
            if wait is not None:
                wait["got"][shard_id] = payload
                if set(wait["got"]) >= wait["want"]:
                    wait["event"].set()
        elif kind in ("flushed", "invalidated"):
            _, shard_id, token, payload = message
            with self._lock:
                wait = self._metric_waits.get(token)
            if wait is not None:
                wait["got"][shard_id] = payload
                if set(wait["got"]) >= wait["want"]:
                    wait["event"].set()
        elif kind == "stopped":
            _, shard_id, payload = message
            with self._lock:
                shard = self._shards[shard_id]
                shard.final_metrics = payload
                shard.stopped = True

    def _monitor_loop(self) -> None:
        while not self._shutdown.wait(self.config.poll_interval_s):
            if self._stopped:
                continue
            dead = []
            with self._lock:
                for shard in self._shards.values():
                    if (
                        shard.alive
                        and shard.process is not None
                        and not shard.process.is_alive()
                        and not shard.stopped
                    ):
                        dead.append(shard)
            for shard in dead:
                self._handle_death(shard)

    # -- shard fan-out helpers ------------------------------------------

    def _broadcast(self, kind: str, *extra, timeout: float = 10.0) -> dict:
        """Send ``(kind, token, *extra)`` to every live shard; gather
        replies keyed by shard id."""
        with self._lock:
            live = [s for s in self._shards.values() if s.alive]
            self._token += 1
            token = self._token
            wait = {
                "want": {s.shard_id for s in live},
                "got": {},
                "event": threading.Event(),
            }
            self._metric_waits[token] = wait
            for shard in live:
                try:
                    shard.inbox.put((kind, token) + extra)
                except (OSError, ValueError):
                    wait["want"].discard(shard.shard_id)
        if not wait["want"]:
            wait["event"].set()
        wait["event"].wait(timeout)
        with self._lock:
            self._metric_waits.pop(token, None)
        return dict(wait["got"])

    def flush(self, *, timeout: float = 10.0) -> dict:
        """Persist every live shard's plan cache (warm-start files).

        With autotuning enabled the broadcast also flushes each shard's
        learned autotune state to its per-shard file."""
        return self._broadcast("flush", timeout=timeout)

    def invalidate_stream(self, name: str, *, timeout: float = 10.0) -> dict:
        """Drop one stream's cached state on *every* live shard.

        Stream requests have shard affinity (one shard owns a stream's
        mutation log), but ownership can move — a death/respawn or a
        ring rebalance reroutes the stream while the old shard still
        holds its incremental state.  Broadcasting the invalidation
        reaches any such orphan, so no shard keeps serving a stale
        cached output for a stream it no longer owns.  Returns
        ``{shard_id: artifacts_released}``.
        """
        return self._broadcast("invalidate", name, timeout=timeout)

    def merged_autotune_state(self, save_to: str | None = None):
        """Fold every shard's persisted autotune state into one.

        Reads the per-shard ``autotune_shard<k>.json`` files (call
        :meth:`flush` — or stop the router — first so they are current)
        and merges them through the associative measurement-store merge;
        the result can seed any future process's warm start.  Returns
        the merged :class:`~repro.autotune.AutotuneState`, or ``None``
        when autotune persistence is not configured.
        """
        from repro.autotune import AutotuneState

        if self.config.cache_dir is None or not self.config.service.autotune:
            return None
        merged = AutotuneState(self.machine.name)
        found = False
        for shard_id in range(self.config.n_shards):
            path = self._autotune_path(shard_id)
            if path is None or not os.path.exists(path):
                continue
            shard_state = AutotuneState(self.machine.name)
            if shard_state.load(path):
                merged.merge(shard_state)
                found = True
        if not found:
            return None
        if save_to is not None:
            merged.save(save_to)
        return merged

    # -- metrics and rebalancing ----------------------------------------

    def queue_stats(self) -> dict:
        """Router-level admission stats (loadgen compatibility shape)."""
        with self._lock:
            per_shard = {
                str(s.shard_id): {
                    "depth": len(s.in_flight),
                    "high_water": s.high_water,
                    "routed": s.routed,
                    "alive": s.alive,
                }
                for s in self._shards.values()
            }
            return {
                "capacity": self.config.max_in_flight,
                "policy": "reject",
                "depth": len(self._inflight),
                "high_water": max(
                    (s.high_water for s in self._shards.values()), default=0
                ),
                "admitted": sum(s.routed for s in self._shards.values()),
                "rejected": self.shed_at_router,
                "evicted": 0,
                "per_shard": per_shard,
            }

    def metrics_json(self, *, timeout: float = 10.0) -> dict:
        """One document: merged aggregate + per-shard breakdown.

        Live shards are polled over IPC; shards that already stopped
        contribute the final snapshot they sent on exit.  The aggregate
        section is the associative snapshot merge, so it equals what a
        single unsharded service would have reported for the union of
        the traffic (modulo per-shard cache sizing).
        """
        snapshots = self._broadcast("metrics", timeout=timeout)
        with self._lock:
            for shard in self._shards.values():
                if shard.shard_id not in snapshots and shard.final_metrics:
                    snapshots[shard.shard_id] = shard.final_metrics
            router = {
                "n_shards": self.config.n_shards,
                "live_shards": sum(
                    1 for s in self._shards.values() if s.alive
                ),
                "ring_weights": {
                    str(s): self.ring.weight(s) for s in self.ring.shards
                },
                "deaths": self.deaths,
                "requeued": self.requeued,
                "respawns": self.respawns,
                "dropped": self.dropped,
                "shed_at_router": self.shed_at_router,
                "warm_entries": {
                    str(s.shard_id): s.warm_entries
                    for s in self._shards.values()
                },
            }
        ordered = [snapshots[k] for k in sorted(snapshots)]
        return {
            "router": router,
            "queue": self.queue_stats(),
            "aggregate": merge_metrics_json(ordered) if ordered else {},
            "shards": {str(k): snapshots[k] for k in sorted(snapshots)},
            "machine": self.machine.name,
        }

    def rebalance(
        self, loads: dict[int, float] | None = None, *, gain: float = 0.5
    ) -> dict[int, float]:
        """Load-driven ring re-weighting hook.

        ``loads`` defaults to each live shard's cumulative routed count
        (the queue-depth/SLO metrics view of who is busy); callers with
        better signals — per-shard p99, busy seconds from
        :meth:`metrics_json` — pass them in.  Returns the applied
        weights.
        """
        with self._lock:
            if loads is None:
                loads = {
                    s.shard_id: float(s.routed)
                    for s in self._shards.values() if s.alive
                }
            weights = suggest_weights(self.ring, loads, gain=gain)
            self.ring.set_weights(weights)
            return weights
