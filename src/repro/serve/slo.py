"""Service-level metrics: latency histograms, status counts, SLO views.

The metrics layer is deliberately *lossy but bounded*: per-stage
latencies land in log-spaced histograms (fixed memory regardless of
traffic), statuses and sheds are plain counters, and the kernel-level
data-access tallies ride on the standard
:class:`~repro.analysis.counters.Counters` so one JSON export carries
the whole stack — queue behavior, stage latencies, plan/table cache hit
rates, and the paper's access counts — for dashboards or the
``python -m repro serve`` CLI.

Quantiles (p50/p95/p99) are read from the histogram as the upper edge
of the bucket containing the target rank: an overestimate by at most
one bucket width (``factor`` = 2 by default), which is the standard
monitoring trade-off.
"""

from __future__ import annotations

import threading

from repro.analysis.counters import Counters
from repro.errors import ConfigError
from repro.serve.request import TERMINAL_STATUSES, Response

__all__ = ["LatencyHistogram", "ServiceMetrics", "STAGES"]

#: Pipeline stages every request is timed across.
STAGES = ("queue_wait", "execute", "total")


class LatencyHistogram:
    """Log-spaced latency histogram with quantile estimates.

    Buckets are ``[0, base)``, ``[base, base*factor)``, … — 44 buckets
    at the defaults span 1 µs to ~2.4 h, which covers every latency a
    serving stack can produce while staying a few hundred bytes.
    """

    def __init__(
        self, base: float = 1e-6, factor: float = 2.0, n_buckets: int = 44
    ):
        if base <= 0 or factor <= 1 or n_buckets < 2:
            raise ConfigError(
                f"invalid histogram spec: base={base}, factor={factor}, "
                f"n_buckets={n_buckets}"
            )
        self.base = float(base)
        self.factor = float(factor)
        #: Upper edge of each bucket; the last bucket is unbounded.
        self.edges = [base * factor**k for k in range(n_buckets - 1)]
        self.counts = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Tally one observation (negative clock skew clamps to 0)."""
        seconds = max(0.0, float(seconds))
        k = 0
        while k < len(self.edges) and seconds >= self.edges[k]:
            k += 1
        with self._lock:
            self.counts[k] += 1
            self.count += 1
            self.total += seconds
            if seconds > self.max_seen:
                self.max_seen = seconds

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile rank."""
        if not 0 <= q <= 1:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            seen = 0
            for k, c in enumerate(self.counts):
                seen += c
                if seen >= rank and c:
                    if k >= len(self.edges):
                        return self.max_seen
                    return min(self.edges[k], self.max_seen)
            return self.max_seen

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Accumulate another histogram (bucket layouts must match)."""
        if other.edges != self.edges:
            raise ConfigError("cannot merge histograms with different buckets")
        with self._lock:
            for k, c in enumerate(other.counts):
                self.counts[k] += c
            self.count += other.count
            self.total += other.total
            self.max_seen = max(self.max_seen, other.max_seen)
        return self

    def to_json(self) -> dict:
        """JSON-friendly summary plus the nonzero buckets."""
        with self._lock:
            count, total, max_seen = self.count, self.total, self.max_seen
            buckets = [
                [self.edges[k] if k < len(self.edges) else None, c]
                for k, c in enumerate(self.counts)
                if c
            ]
        return {
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count if count else 0.0,
            "max_seconds": max_seen,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets_le": buckets,
        }


class ServiceMetrics:
    """Aggregate service observability: stages, statuses, kernel counts.

    ``observe`` is called once per terminal response; the queue and
    cache numbers are pulled in at export time by
    :meth:`ContractionService.metrics_json`, so this object stays a
    passive tally.
    """

    def __init__(self):
        self.stages = {name: LatencyHistogram() for name in STAGES}
        self.statuses = dict.fromkeys(TERMINAL_STATUSES, 0)
        self.submitted = 0
        self.completed = 0
        self.degrade_rungs: dict[str, int] = {}
        self.kernel = Counters()
        self._lock = threading.Lock()

    def note_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def observe(self, response: Response) -> None:
        """Tally one terminal response and its stage timings."""
        with self._lock:
            self.completed += 1
            self.statuses[response.status] = (
                self.statuses.get(response.status, 0) + 1
            )
            if response.degrade_rung:
                self.degrade_rungs[response.degrade_rung] = (
                    self.degrade_rungs.get(response.degrade_rung, 0) + 1
                )
        for stage, hist in self.stages.items():
            if stage in response.timings:
                hist.record(response.timings[stage])

    def rate(self, status: str) -> float:
        """Fraction of completed requests with the given status."""
        with self._lock:
            return (
                self.statuses.get(status, 0) / self.completed
                if self.completed
                else 0.0
            )

    def to_json(self) -> dict:
        with self._lock:
            statuses = dict(self.statuses)
            payload = {
                "submitted": self.submitted,
                "completed": self.completed,
                "statuses": statuses,
                "degrade_rungs": dict(self.degrade_rungs),
            }
        payload["latency"] = {
            stage: hist.to_json() for stage, hist in self.stages.items()
        }
        payload["kernel_counters"] = self.kernel.snapshot()
        return payload

    def render(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        with self._lock:
            statuses = dict(self.statuses)
            completed = self.completed
            submitted = self.submitted
            rungs = dict(self.degrade_rungs)
        lines = [f"requests: {submitted} submitted, {completed} completed"]
        status_bits = ", ".join(
            f"{name}={n}" for name, n in statuses.items() if n
        )
        lines.append(f"  statuses: {status_bits or '(none)'}")
        if rungs:
            lines.append(
                "  degrade rungs: "
                + ", ".join(f"{name}={n}" for name, n in rungs.items())
            )
        for stage, hist in self.stages.items():
            if hist.count:
                lines.append(
                    f"  {stage:<10} p50={hist.p50 * 1e3:8.2f}ms  "
                    f"p95={hist.p95 * 1e3:8.2f}ms  "
                    f"p99={hist.p99 * 1e3:8.2f}ms  "
                    f"mean={hist.mean * 1e3:8.2f}ms  (n={hist.count})"
                )
        return "\n".join(lines)
