"""Service-level metrics: latency histograms, status counts, SLO views.

The metrics layer is deliberately *lossy but bounded*: per-stage
latencies land in log-spaced histograms (fixed memory regardless of
traffic), statuses and sheds are plain counters, and the kernel-level
data-access tallies ride on the standard
:class:`~repro.analysis.counters.Counters` so one JSON export carries
the whole stack — queue behavior, stage latencies, plan/table cache hit
rates, and the paper's access counts — for dashboards or the
``python -m repro serve`` CLI.

Quantiles (p50/p95/p99) are read from the histogram as the upper edge
of the bucket containing the target rank: an overestimate by at most
one bucket width (``factor`` = 2 by default), which is the standard
monitoring trade-off.
"""

from __future__ import annotations

import threading

from repro.analysis.counters import Counters, merge_snapshots
from repro.errors import ConfigError
from repro.serve.request import TERMINAL_STATUSES, Response

__all__ = [
    "LatencyHistogram",
    "ServiceMetrics",
    "STAGES",
    "merge_histogram_json",
    "merge_metrics_json",
]

#: Pipeline stages every request is timed across.
STAGES = ("queue_wait", "execute", "total")


class LatencyHistogram:
    """Log-spaced latency histogram with quantile estimates.

    Buckets are ``[0, base)``, ``[base, base*factor)``, … — 44 buckets
    at the defaults span 1 µs to ~2.4 h, which covers every latency a
    serving stack can produce while staying a few hundred bytes.
    """

    def __init__(
        self, base: float = 1e-6, factor: float = 2.0, n_buckets: int = 44
    ):
        if base <= 0 or factor <= 1 or n_buckets < 2:
            raise ConfigError(
                f"invalid histogram spec: base={base}, factor={factor}, "
                f"n_buckets={n_buckets}"
            )
        self.base = float(base)
        self.factor = float(factor)
        #: Upper edge of each bucket; the last bucket is unbounded.
        self.edges = [base * factor**k for k in range(n_buckets - 1)]
        self.counts = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Tally one observation (negative clock skew clamps to 0)."""
        seconds = max(0.0, float(seconds))
        k = 0
        while k < len(self.edges) and seconds >= self.edges[k]:
            k += 1
        with self._lock:
            self.counts[k] += 1
            self.count += 1
            self.total += seconds
            if seconds > self.max_seen:
                self.max_seen = seconds

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile rank."""
        if not 0 <= q <= 1:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            seen = 0
            for k, c in enumerate(self.counts):
                seen += c
                if seen >= rank and c:
                    if k >= len(self.edges):
                        return self.max_seen
                    return min(self.edges[k], self.max_seen)
            return self.max_seen

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Accumulate another histogram (bucket layouts must match)."""
        if other.edges != self.edges:
            raise ConfigError("cannot merge histograms with different buckets")
        with self._lock:
            for k, c in enumerate(other.counts):
                self.counts[k] += c
            self.count += other.count
            self.total += other.total
            self.max_seen = max(self.max_seen, other.max_seen)
        return self

    def to_json(self) -> dict:
        """JSON-friendly summary plus the nonzero buckets."""
        with self._lock:
            count, total, max_seen = self.count, self.total, self.max_seen
            buckets = [
                [self.edges[k] if k < len(self.edges) else None, c]
                for k, c in enumerate(self.counts)
                if c
            ]
        return {
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count if count else 0.0,
            "max_seconds": max_seen,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets_le": buckets,
        }


class ServiceMetrics:
    """Aggregate service observability: stages, statuses, kernel counts.

    ``observe`` is called once per terminal response; the queue and
    cache numbers are pulled in at export time by
    :meth:`ContractionService.metrics_json`, so this object stays a
    passive tally.
    """

    def __init__(self):
        self.stages = {name: LatencyHistogram() for name in STAGES}
        self.statuses = dict.fromkeys(TERMINAL_STATUSES, 0)
        self.submitted = 0
        self.completed = 0
        self.degrade_rungs: dict[str, int] = {}
        self.kernel = Counters()
        self._lock = threading.Lock()

    def note_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def observe(self, response: Response) -> None:
        """Tally one terminal response and its stage timings."""
        with self._lock:
            self.completed += 1
            self.statuses[response.status] = (
                self.statuses.get(response.status, 0) + 1
            )
            if response.degrade_rung:
                self.degrade_rungs[response.degrade_rung] = (
                    self.degrade_rungs.get(response.degrade_rung, 0) + 1
                )
        for stage, hist in self.stages.items():
            if stage in response.timings:
                hist.record(response.timings[stage])

    def merge(self, other: "ServiceMetrics") -> "ServiceMetrics":
        """Fold another tally into this one (in-process aggregation).

        The cross-process equivalent — shards exporting JSON snapshots
        over IPC — goes through :func:`merge_metrics_json` instead.
        """
        with other._lock:
            submitted = other.submitted
            completed = other.completed
            statuses = dict(other.statuses)
            rungs = dict(other.degrade_rungs)
        with self._lock:
            self.submitted += submitted
            self.completed += completed
            for status, n in statuses.items():
                self.statuses[status] = self.statuses.get(status, 0) + n
            for rung, n in rungs.items():
                self.degrade_rungs[rung] = self.degrade_rungs.get(rung, 0) + n
        for stage, hist in self.stages.items():
            hist.merge(other.stages[stage])
        self.kernel.merge(other.kernel)
        return self

    def rate(self, status: str) -> float:
        """Fraction of completed requests with the given status."""
        with self._lock:
            return (
                self.statuses.get(status, 0) / self.completed
                if self.completed
                else 0.0
            )

    def to_json(self) -> dict:
        with self._lock:
            statuses = dict(self.statuses)
            payload = {
                "submitted": self.submitted,
                "completed": self.completed,
                "statuses": statuses,
                "degrade_rungs": dict(self.degrade_rungs),
            }
        payload["latency"] = {
            stage: hist.to_json() for stage, hist in self.stages.items()
        }
        payload["kernel_counters"] = self.kernel.snapshot()
        return payload

    def render(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        with self._lock:
            statuses = dict(self.statuses)
            completed = self.completed
            submitted = self.submitted
            rungs = dict(self.degrade_rungs)
        lines = [f"requests: {submitted} submitted, {completed} completed"]
        status_bits = ", ".join(
            f"{name}={n}" for name, n in statuses.items() if n
        )
        lines.append(f"  statuses: {status_bits or '(none)'}")
        if rungs:
            lines.append(
                "  degrade rungs: "
                + ", ".join(f"{name}={n}" for name, n in rungs.items())
            )
        for stage, hist in self.stages.items():
            if hist.count:
                lines.append(
                    f"  {stage:<10} p50={hist.p50 * 1e3:8.2f}ms  "
                    f"p95={hist.p95 * 1e3:8.2f}ms  "
                    f"p99={hist.p99 * 1e3:8.2f}ms  "
                    f"mean={hist.mean * 1e3:8.2f}ms  (n={hist.count})"
                )
        return "\n".join(lines)


# -- cross-process snapshot merging -------------------------------------
#
# Shard worker processes export `ContractionService.metrics_json()`
# documents over IPC; the router folds them into one aggregate view.
# The merge works on the plain JSON dicts (no live objects cross the
# process boundary) and every rule is associative — sums, key-wise
# sums, maxima — with derived fields (rates, quantiles, means)
# recomputed from the merged primaries, so the fold order in which
# shards happen to reply cannot change the aggregate.

#: Snapshot keys that merge by maximum (peaks), not by sum.
_MAX_KEYS = frozenset({"high_water", "max_seconds", "workspace_cells"})

#: Snapshot keys recomputed from merged primaries (never summed).
_DERIVED_KEYS = frozenset({
    "mean_seconds", "p50", "p95", "p99",
    "plan_hit_rate", "table_reuse_rate", "estimated_speedup",
    "network_plan_hit_rate",
    "pairwise_plan_hit_rate", "pairwise_table_reuse_rate",
    "pairwise_estimated_speedup",
    "mean_modeled_fraction",
})


def merge_histogram_json(a: dict, b: dict) -> dict:
    """Merge two :meth:`LatencyHistogram.to_json` documents.

    Buckets are keyed by their upper edge (``None`` = the unbounded
    overflow bucket); counts sum, the peak takes the max, and the
    quantiles are re-read from the merged buckets with the same
    upper-edge rule the live histogram uses.
    """
    buckets: dict = {}
    for doc in (a, b):
        for edge, count in doc.get("buckets_le", []):
            buckets[edge] = buckets.get(edge, 0) + count
    count = a.get("count", 0) + b.get("count", 0)
    total = a.get("total_seconds", 0.0) + b.get("total_seconds", 0.0)
    max_seen = max(a.get("max_seconds", 0.0), b.get("max_seconds", 0.0))
    ordered = sorted(
        buckets.items(), key=lambda kv: (kv[0] is None, kv[0])
    )

    def quantile(q: float) -> float:
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0
        for edge, c in ordered:
            seen += c
            if seen >= rank and c:
                if edge is None:
                    return max_seen
                return min(edge, max_seen)
        return max_seen

    return {
        "count": count,
        "total_seconds": total,
        "mean_seconds": total / count if count else 0.0,
        "max_seconds": max_seen,
        "p50": quantile(0.50),
        "p95": quantile(0.95),
        "p99": quantile(0.99),
        "buckets_le": [[edge, c] for edge, c in ordered],
    }


def _merge_numeric_section(a: dict, b: dict) -> dict:
    """Key-wise merge of a flat metrics dict: sums, peaks, recomputed
    rates, and ``'mixed'`` markers for disagreeing labels."""
    out: dict = {}
    for key in list(a) + [k for k in b if k not in a]:
        va, vb = a.get(key), b.get(key)
        if va is None or vb is None:
            out[key] = va if vb is None else vb
        elif key in _DERIVED_KEYS:
            continue
        elif isinstance(va, bool) or isinstance(vb, bool):
            out[key] = va and vb
        elif isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            out[key] = max(va, vb) if key in _MAX_KEYS else va + vb
        else:
            out[key] = va if va == vb else "mixed"
    _recompute_derived(out)
    return out


def _recompute_derived(d: dict) -> None:
    """Rebuild rate/speedup fields from their merged inputs, in place."""

    def ratio(hits, misses):
        total = hits + misses
        return hits / total if total else 0.0

    for prefix in ("", "pairwise_"):
        if f"{prefix}plan_cache_hits" in d:
            d[f"{prefix}plan_hit_rate"] = ratio(
                d[f"{prefix}plan_cache_hits"],
                d.get(f"{prefix}plan_cache_misses", 0),
            )
        if f"{prefix}table_reuse_hits" in d:
            d[f"{prefix}table_reuse_rate"] = ratio(
                d[f"{prefix}table_reuse_hits"],
                d.get(f"{prefix}table_builds", 0),
            )
        if f"{prefix}measured_seconds" in d:
            measured = d[f"{prefix}measured_seconds"]
            saved = d.get(f"{prefix}seconds_saved", 0.0)
            d[f"{prefix}estimated_speedup"] = (
                (measured + saved) / measured if measured > 0 else 1.0
            )
    if "network_plan_hits" in d:
        d["network_plan_hit_rate"] = ratio(
            d["network_plan_hits"], d.get("network_plan_misses", 0)
        )


def _merge_two_metrics(a: dict, b: dict) -> dict:
    """Merge two ``metrics_json`` documents (associative)."""
    out: dict = {}
    keys = list(a) + [k for k in b if k not in a]
    for key in keys:
        va, vb = a.get(key), b.get(key)
        if va is None or vb is None:
            out[key] = va if vb is None else vb
        elif key in ("statuses", "degrade_rungs"):
            merged = dict(va)
            for name, n in vb.items():
                merged[name] = merged.get(name, 0) + n
            out[key] = merged
        elif key == "latency":
            out[key] = {
                stage: merge_histogram_json(va.get(stage, {}), vb.get(stage, {}))
                for stage in {*va, *vb}
            }
        elif key == "kernel_counters":
            out[key] = merge_snapshots(va, vb)
        elif key in ("queue", "runtime", "network", "autotune"):
            out[key] = _merge_numeric_section(va, vb)
        elif key == "streaming":
            merged = _merge_numeric_section(
                {k: v for k, v in va.items() if k not in ("streams", "tracker")},
                {k: v for k, v in vb.items() if k not in ("streams", "tracker")},
            )
            merged["streams"] = sorted(
                {*va.get("streams", []), *vb.get("streams", [])}
            )
            merged["tracker"] = _merge_numeric_section(
                va.get("tracker", {}), vb.get("tracker", {})
            )
            out[key] = merged
        elif isinstance(va, bool) or isinstance(vb, bool):
            out[key] = va and vb
        elif isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            out[key] = max(va, vb) if key in _MAX_KEYS else va + vb
        else:
            out[key] = va if va == vb else "mixed"
    return out


def merge_metrics_json(snapshots) -> dict:
    """Fold per-shard ``metrics_json`` snapshots into one aggregate.

    Associative and order-independent in the merged primaries: counts
    and seconds sum, peaks take the max, histograms merge bucket-wise,
    kernel counters go through
    :func:`repro.analysis.counters.merge_snapshots`, and derived fields
    (hit rates, quantiles, speedups) are recomputed from the merged
    inputs rather than averaged.
    """
    snapshots = list(snapshots)
    if not snapshots:
        return {}
    merged = dict(snapshots[0])
    # Normalize the first snapshot's derived fields through the same
    # path later merges take, so a single-shard aggregate is identical
    # to a two-shard aggregate with an empty peer.
    for section in ("queue", "runtime", "network", "autotune"):
        if isinstance(merged.get(section), dict):
            merged[section] = _merge_numeric_section(merged[section], {})
    for other in snapshots[1:]:
        merged = _merge_two_metrics(merged, other)
    return merged
