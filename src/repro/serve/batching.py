"""Signature-affinity micro-batching.

The runtime's plan cache turns a recurring :class:`ProblemSignature`
into warm work — but only if recurrences actually land close together.
Under a small cache (or a wide signature mix), FIFO order interleaves
signatures and thrashes the LRU: the pattern ``A B A B A B`` on a
one-entry cache misses every time, while ``A A A B B B`` misses twice.

These helpers reorder a drained batch so requests sharing an affinity
key run consecutively, which is exactly the transformation that turns
cross-*user* recurrence into cache hits (the ROADMAP's serving shape):
the batch stays small (bounded by the drain size), so the reordering
never starves a request by more than one micro-batch.

Ordering contract:

* priority still dominates — groups are ordered by their highest
  member priority (descending), then by earliest admission;
* within a group, admission (FIFO) order is preserved;
* the reordering is a permutation: no request is dropped or duplicated.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.errors import ConfigError
from repro.serve.request import Job

__all__ = ["affinity_order", "affinity_groups", "plan_microbatches"]


def affinity_groups(jobs: Sequence[Job]) -> "OrderedDict[str, list[Job]]":
    """Jobs bucketed by affinity key, members in admission order."""
    groups: OrderedDict[str, list[Job]] = OrderedDict()
    for job in sorted(jobs, key=lambda j: j.seq):
        groups.setdefault(job.affinity, []).append(job)
    return groups


def affinity_order(jobs: Sequence[Job]) -> list[Job]:
    """Permute a batch so same-signature jobs run consecutively."""
    groups = affinity_groups(jobs)
    ordered = sorted(
        groups.values(),
        key=lambda members: (
            -max(j.priority for j in members),
            min(j.seq for j in members),
        ),
    )
    return [job for members in ordered for job in members]


def plan_microbatches(
    jobs: Sequence[Job], max_batch: int
) -> list[list[Job]]:
    """Chunk an affinity-ordered batch into micro-batches.

    Chunks are cut at ``max_batch``, preferring to cut on a group
    boundary when one falls inside the window — a group split across
    micro-batches still hits the plan cache, so this only aids
    readability of per-batch reports, not correctness.
    """
    if max_batch < 1:
        raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
    ordered = affinity_order(jobs)
    batches: list[list[Job]] = []
    current: list[Job] = []
    for job in ordered:
        boundary = bool(current) and current[-1].affinity != job.affinity
        if len(current) >= max_batch or (
            boundary and len(current) >= max_batch // 2
        ):
            batches.append(current)
            current = []
        current.append(job)
    if current:
        batches.append(current)
    return batches
