"""Shard worker process: one :class:`ContractionService` per process.

The router (:mod:`repro.serve.router`) spawns N of these; each runs a
private service — its own runtime, plan cache and admission queue — in
its own interpreter, so CPU-bound contraction work on different shards
executes on different cores instead of serializing on one GIL.

The process speaks a small picklable message protocol over two
``multiprocessing`` queues:

inbound (router → shard)
    ``("req", uid, Request)`` — admit and execute one request;
    ``("metrics", token)`` — reply with the shard's metrics document;
    ``("flush", token)`` — persist the plan cache (warm-start file);
    ``("invalidate", token, name)`` — drop cached streaming state for
    the named stream (the router fans this out to every shard);
    ``("stop",)`` — drain admitted work, flush, and exit.

outbound (shard → router, shared by all shards)
    ``("ready", shard_id, warm_entries)`` — service is up (with the
    number of plan-cache entries warm-started from disk);
    ``("resp", shard_id, uid, Response)`` — one terminal response;
    ``("metrics", shard_id, token, payload)`` — metrics reply;
    ``("flushed", shard_id, token, path)`` — flush reply;
    ``("invalidated", shard_id, token, released)`` — invalidation
    reply (how many tracked artifacts this shard released);
    ``("stopped", shard_id, payload)`` — final metrics, sent last.

Plan-cache **warm-start** rides on the existing JSON persistence: when
the spec carries a ``cache_path``, the shard's
:class:`~repro.runtime.ContractionRuntime` loads it at construction and
flushes back to it on ``flush``/``stop`` — a respawned or restarted
shard starts with the previous incarnation's Algorithm 7 decisions.

Responses are forwarded by a single in-process thread that resolves
tickets in admission order; ticket resolution order does not affect
correctness (every ticket resolves exactly once) and admission order
matches the service's own rough completion order.
"""

from __future__ import annotations

import queue as _queue
import threading
from dataclasses import dataclass, field

from repro.serve.request import Request
from repro.serve.service import ServiceConfig

__all__ = ["ShardSpec", "shard_main"]


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard process needs, picklable for ``spawn``.

    ``machine_name`` travels as a string and is resolved in the child
    (platform models are process-local singletons, not payload).
    """

    shard_id: int
    machine_name: str = "desktop"
    service: ServiceConfig = field(default_factory=ServiceConfig)
    cache_path: str | None = None
    #: Per-shard autotune state file (each shard must own its file —
    #: concurrent writers to one JSON would race; the router merges the
    #: per-shard states associatively instead).
    autotune_path: str | None = None


def _resolve_machine(name: str):
    from repro.machine.specs import DESKTOP, SERVER

    return SERVER if name == "server" else DESKTOP


def shard_main(spec: ShardSpec, inbox, outbox) -> None:
    """Run one shard to completion (the ``Process`` target).

    Never raises: a broken shard exits, and the router's liveness
    monitor turns the death into requeue/respawn — the failure story
    lives on the router side, not here.
    """
    from dataclasses import replace

    from repro.runtime.executor import ContractionRuntime
    from repro.serve.service import ContractionService

    machine = _resolve_machine(spec.machine_name)
    runtime = ContractionRuntime(
        machine=machine,
        cache_path=spec.cache_path,
        cache_size=spec.service.plan_cache_size,
        operand_cache_size=spec.service.operand_cache_size,
    )
    config = spec.service
    if spec.autotune_path is not None:
        config = replace(config, autotune_state_path=spec.autotune_path)
    service = ContractionService(
        machine=machine, config=config, runtime=runtime
    )
    service.start()
    outbox.put(("ready", spec.shard_id, len(runtime.plan_cache)))

    pending: _queue.Queue = _queue.Queue()

    def forward() -> None:
        while True:
            item = pending.get()
            if item is None:
                return
            uid, ticket = item
            response = ticket.result(None)
            outbox.put(("resp", spec.shard_id, uid, response))

    forwarder = threading.Thread(
        target=forward, name=f"shard-{spec.shard_id}-forward", daemon=True
    )
    forwarder.start()

    try:
        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "req":
                _, uid, request = message
                assert isinstance(request, Request)
                pending.put((uid, service.submit(request)))
            elif kind == "metrics":
                outbox.put((
                    "metrics", spec.shard_id, message[1],
                    service.metrics_json(),
                ))
            elif kind == "flush":
                if service.tuner is not None:
                    service.tuner.flush()
                outbox.put((
                    "flushed", spec.shard_id, message[1], runtime.flush(),
                ))
            elif kind == "invalidate":
                outbox.put((
                    "invalidated", spec.shard_id, message[1],
                    service.invalidate_stream(message[2]),
                ))
            elif kind == "stop":
                break
    finally:
        # Drain admitted work so accepted requests always resolve, then
        # let the forwarder push the last responses out before the
        # terminal metrics message.
        service.stop(drain=True)
        pending.put(None)
        forwarder.join(timeout=30.0)
        runtime.flush()
        outbox.put(("stopped", spec.shard_id, service.metrics_json()))
