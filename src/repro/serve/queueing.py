"""Bounded admission queue with load-shedding and backpressure policies.

The queue is the service's only buffer, and it is **bounded by
construction**: depth can never exceed ``capacity``, so an overloaded
service converts excess offered load into explicit ``shed`` responses
(or into submitter backpressure) instead of unbounded memory growth.

Three admission policies cover the classic overload responses:

``reject``
    A full queue refuses the new arrival (the caller sheds it).  The
    cheapest policy; favors requests already admitted.
``shed_oldest``
    A full queue evicts the oldest entry of the *lowest* priority class
    to make room (the caller sheds the evicted job).  Favors fresh
    arrivals — the right shape when stale work is worthless, e.g. under
    tight deadlines where the oldest entry is the likeliest to time out
    anyway.
``block``
    The submitter waits (optionally bounded) until space frees up —
    backpressure for closed-loop callers that would rather slow down
    than lose work.

All methods are thread-safe; ``high_water`` records the maximum depth
ever reached (tests assert ``high_water <= capacity``).
"""

from __future__ import annotations

import threading
import time

from repro.errors import ConfigError
from repro.serve.request import Job

__all__ = ["POLICIES", "REJECT", "SHED_OLDEST", "BLOCK", "AdmissionQueue"]

REJECT = "reject"
SHED_OLDEST = "shed_oldest"
BLOCK = "block"

#: Recognized admission policies.
POLICIES = (REJECT, SHED_OLDEST, BLOCK)


class AdmissionQueue:
    """Thread-safe bounded FIFO of :class:`Job` with overload policies."""

    def __init__(self, capacity: int, policy: str = REJECT):
        if capacity is None or int(capacity) < 1:
            raise ConfigError(
                f"queue capacity must be a positive bound, got {capacity!r} "
                "(an unbounded admission queue defeats load shedding)"
            )
        if policy not in POLICIES:
            raise ConfigError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._items: list[Job] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        # monotonic stats (mutated under the lock)
        self.high_water = 0
        self.admitted = 0
        self.rejected = 0
        self.evicted = 0

    # -- introspection --------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "policy": self.policy,
                "depth": len(self._items),
                "high_water": self.high_water,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "evicted": self.evicted,
            }

    # -- admission ------------------------------------------------------

    def offer(
        self, job: Job, timeout: float | None = None
    ) -> tuple[bool, Job | None]:
        """Try to admit one job.

        Returns ``(admitted, evicted)``: ``evicted`` is the job pushed
        out under ``shed_oldest`` (the caller must resolve it as shed).
        ``timeout`` only matters under ``block``: a submitter that waits
        it out is refused (``(False, None)``), same as ``reject``.
        """
        with self._lock:
            if self._closed:
                self.rejected += 1
                return False, None
            if len(self._items) < self.capacity:
                self._admit(job)
                return True, None
            if self.policy == REJECT:
                self.rejected += 1
                return False, None
            if self.policy == SHED_OLDEST:
                victim = self._pop_victim()
                self._admit(job)
                self.evicted += 1
                return True, victim
            # BLOCK: wait for space (or closure / timeout).
            limit = None if timeout is None else time.monotonic() + timeout
            while len(self._items) >= self.capacity and not self._closed:
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self.rejected += 1
                    return False, None
                self._not_full.wait(remaining)
            if self._closed:
                self.rejected += 1
                return False, None
            self._admit(job)
            return True, None

    def _admit(self, job: Job) -> None:
        # caller holds the lock
        self._items.append(job)
        self.admitted += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        self._not_empty.notify()

    def _pop_victim(self) -> Job:
        # caller holds the lock; oldest entry of the lowest priority
        # class (the list is FIFO, so the first matching index is oldest)
        lowest = min(j.priority for j in self._items)
        for k, j in enumerate(self._items):
            if j.priority == lowest:
                return self._items.pop(k)
        raise AssertionError("unreachable: queue was non-empty")

    # -- draining -------------------------------------------------------

    def drain(self, max_items: int, timeout: float | None = None) -> list[Job]:
        """Take up to ``max_items`` jobs, highest priority first.

        Blocks until at least one job is available, the timeout lapses,
        or the queue is closed (a closed queue still hands out whatever
        is left, so workers finish admitted work before exiting).
        """
        if max_items < 1:
            raise ConfigError(f"max_items must be >= 1, got {max_items}")
        with self._lock:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout)
            if not self._items:
                return []
            order = sorted(
                range(len(self._items)),
                key=lambda k: (-self._items[k].priority, self._items[k].seq),
            )[:max_items]
            taken = [self._items[k] for k in order]
            for k in sorted(order, reverse=True):
                del self._items[k]
            self._not_full.notify(len(taken))
            return taken

    def drain_all(self) -> list[Job]:
        """Empty the queue immediately (used when abandoning on stop)."""
        with self._lock:
            taken, self._items = self._items, []
            self._not_full.notify_all()
            return taken

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Refuse new admissions and wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
