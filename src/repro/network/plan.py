"""Serializable, explainable network contraction plans.

A :class:`NetworkPlan` freezes everything a path optimizer decided:
the pairwise step order (``numpy.einsum_path`` position convention),
each step's subscripts and contracted mode pairs, the predicted
intermediate nonzero count and modeled cost, and the accumulator/tile
choice Algorithm 7 makes for the step's linearized problem.  Plans are
keyed by a network-level :class:`NetworkSignature` (the analog of the
pairwise :class:`~repro.runtime.signature.ProblemSignature`) so a
repeated network request replays its path without re-optimizing — and,
because execution funnels each pairwise step through the runtime's
:class:`~repro.runtime.plan_cache.PlanCache`, without re-planning any
step either.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import PlanError
from repro.machine.specs import MachineSpec

__all__ = ["NetworkSignature", "PlanStep", "NetworkPlan"]

_FORMAT_VERSION = 1


def _machine_token(machine: MachineSpec) -> tuple:
    return (
        machine.name,
        machine.n_cores,
        machine.l3_bytes,
        machine.l2_bytes_per_core,
        machine.word_bytes,
    )


@dataclass(frozen=True)
class NetworkSignature:
    """Hashable structural identity of one network contraction problem.

    ``pipeline`` names the optimizer pass pipeline the plan was (or will
    be) rewritten by — an empty string for the raw optimizer output.  It
    is part of the identity so an optimized and an unoptimized plan for
    the same network can never collide in a plan cache.
    """

    subscripts: str
    shapes: tuple[tuple[int, ...], ...]
    nnzs: tuple[int, ...]
    machine: tuple  # (name, n_cores, l3_bytes, l2_bytes_per_core, word_bytes)
    optimizer: str = "auto"
    pipeline: str = ""

    @classmethod
    def for_network(
        cls,
        network,
        machine: MachineSpec,
        optimizer: str = "auto",
        pipeline: str = "",
    ) -> "NetworkSignature":
        return cls(
            subscripts=network.subscripts,
            shapes=tuple(m.shape for m in network.operands),
            nnzs=tuple(m.nnz for m in network.operands),
            machine=_machine_token(machine),
            optimizer=optimizer,
            pipeline=pipeline,
        )

    @property
    def key(self) -> str:
        """Stable string form, usable as a JSON object key.

        The ``|P...`` pipeline qualifier only appears for a non-empty
        pipeline, so pre-pipeline keys (and persisted caches) keep their
        historical form.
        """
        shapes = ";".join("x".join(map(str, s)) for s in self.shapes)
        nnzs = ",".join(map(str, self.nnzs))
        name, cores, l3, l2, word = self.machine
        base = (
            f"E{self.subscripts}|S{shapes}|n{nnzs}"
            f"|M{name};{cores};{l3};{l2};{word}|O{self.optimizer}"
        )
        return base + (f"|P{self.pipeline}" if self.pipeline else "")


@dataclass(frozen=True)
class PlanStep:
    """One pairwise step of a network plan.

    ``i``/``j`` index the *shrinking* live operand list (``i < j``):
    the step consumes both positions and appends its result at the end
    — the ``numpy.einsum_path`` convention.  ``sub_l``/``sub_r`` are the
    inputs' subscripts at that point, ``sub_out`` the result's.

    The last four fields are *optimizer-pass annotations* (see
    :mod:`repro.network.passes`).  They never change what the step
    computes — only how the executor may shortcut it:

    ``cse_of``
        Index of an earlier step computing the same expression
        (structurally); the executor reuses that step's result when the
        inputs' content digests confirm the match, else it computes
        normally.  ``-1`` means no reuse candidate.
    ``dead``
        The step's output is provably empty (zero-propagation from
        declared-empty operands); the executor short-circuits to an
        empty tensor once the zero premise is confirmed at run time.
    ``hoist_l`` / ``hoist_r``
        The corresponding input is loop-invariant across repeated
        executions (a network input, not an intermediate), so its
        linearization/tiled tables can be hoisted out of the execution
        loop by :meth:`repro.network.executor.NetworkExecutor.prepare`.
    """

    i: int
    j: int
    sub_l: str
    sub_r: str
    sub_out: str
    kind: str  # "contract" | "outer"
    pairs: tuple[tuple[int, int], ...]
    est_nnz: float
    est_cost: float  # modeled seconds through machine/cost_model
    accumulator: str  # Algorithm 7's choice ("" for outer steps)
    tile: int
    cse_of: int = -1
    dead: bool = False
    hoist_l: bool = False
    hoist_r: bool = False

    @property
    def subscripts(self) -> str:
        """The step as a standalone einsum string."""
        return f"{self.sub_l},{self.sub_r}->{self.sub_out}"

    @property
    def annotations(self) -> str:
        """Compact render of the pass annotations (``""`` when bare)."""
        parts = []
        if self.dead:
            parts.append("dead")
        if self.cse_of >= 0:
            parts.append(f"cse->{self.cse_of}")
        hoists = "".join(
            side for side, on in (("L", self.hoist_l), ("R", self.hoist_r))
            if on
        )
        if hoists:
            parts.append(f"hoist:{hoists}")
        return ",".join(parts)


@dataclass
class NetworkPlan:
    """A frozen, explainable contraction path for one network.

    ``input_subs`` records each operand's subscript *after* the upfront
    marginalization of dead single indices — the executor reduces any
    operand whose live subscript differs before stepping.

    ``passes`` records the optimizer passes applied (in order) by a
    :class:`~repro.network.passes.PassPipeline`; ``zero_operands`` is
    the dead-step premise — operand positions the pass pipeline saw as
    declared-empty (``nnz == 0``).  The executor re-checks the premise
    against the live tensors before honoring any ``dead`` annotation.
    """

    signature_key: str
    subscripts: str
    output: str
    optimizer: str
    machine_name: str
    input_subs: tuple[str, ...]
    steps: tuple[PlanStep, ...]
    est_total_cost: float
    est_peak_nnz: float
    final_sub: str
    passes: tuple[str, ...] = ()
    zero_operands: tuple[int, ...] = ()

    @property
    def path(self) -> list[tuple[int, int]]:
        """The bare ``(i, j)`` pair list (``numpy.einsum_path`` style)."""
        return [(s.i, s.j) for s in self.steps]

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    # -- explainability -------------------------------------------------

    def explain(self) -> str:
        """Human-readable step table for ``repro network --explain``."""
        lines = [
            f"network plan: {self.subscripts}",
            f"  optimizer={self.optimizer}, machine={self.machine_name}, "
            f"modeled cost {self.est_total_cost:.3e}s, "
            f"peak intermediate ~{self.est_peak_nnz:.3g} nnz",
        ]
        reduced = [
            f"{k}:{orig}->{red}"
            for k, (orig, red) in enumerate(
                zip(self.subscripts.split("->")[0].split(","), self.input_subs)
            )
            if orig != red
        ]
        if reduced:
            lines.append("  pre-reduced operands: " + ", ".join(reduced))
        if self.passes:
            lines.append("  passes applied: " + ", ".join(self.passes))
        for k, s in enumerate(self.steps):
            acc = f"{s.accumulator}/T{s.tile}" if s.kind == "contract" else "outer"
            notes = s.annotations
            lines.append(
                f"  step {k}: ({s.i},{s.j})  {s.subscripts:<24} "
                f"[{acc}]  ~{s.est_nnz:.3g} nnz, {s.est_cost:.3e}s"
                + (f"  <{notes}>" if notes else "")
            )
        if not self.steps:
            lines.append("  (single operand: reduce/permute only)")
        return "\n".join(lines)

    # -- serialization --------------------------------------------------

    def to_json(self) -> dict:
        """JSON-friendly dict (round-trips through :meth:`from_json`)."""
        payload = asdict(self)
        payload["version"] = _FORMAT_VERSION
        payload["steps"] = [asdict(s) for s in self.steps]
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "NetworkPlan":
        version = payload.get("version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise PlanError(f"unsupported network-plan version {version!r}")
        steps = tuple(
            PlanStep(
                i=int(s["i"]),
                j=int(s["j"]),
                sub_l=s["sub_l"],
                sub_r=s["sub_r"],
                sub_out=s["sub_out"],
                kind=s["kind"],
                pairs=tuple((int(a), int(b)) for a, b in s["pairs"]),
                est_nnz=float(s["est_nnz"]),
                est_cost=float(s["est_cost"]),
                accumulator=s["accumulator"],
                tile=int(s["tile"]),
                cse_of=int(s.get("cse_of", -1)),
                dead=bool(s.get("dead", False)),
                hoist_l=bool(s.get("hoist_l", False)),
                hoist_r=bool(s.get("hoist_r", False)),
            )
            for s in payload["steps"]
        )
        return cls(
            signature_key=payload["signature_key"],
            subscripts=payload["subscripts"],
            output=payload["output"],
            optimizer=payload["optimizer"],
            machine_name=payload["machine_name"],
            input_subs=tuple(payload["input_subs"]),
            steps=steps,
            est_total_cost=float(payload["est_total_cost"]),
            est_peak_nnz=float(payload["est_peak_nnz"]),
            final_sub=payload["final_sub"],
            passes=tuple(payload.get("passes", ())),
            zero_operands=tuple(
                int(k) for k in payload.get("zero_operands", ())
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkPlan({self.subscripts!r}, optimizer={self.optimizer!r}, "
            f"steps={self.path})"
        )
