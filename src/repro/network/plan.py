"""Serializable, explainable network contraction plans.

A :class:`NetworkPlan` freezes everything a path optimizer decided:
the pairwise step order (``numpy.einsum_path`` position convention),
each step's subscripts and contracted mode pairs, the predicted
intermediate nonzero count and modeled cost, and the accumulator/tile
choice Algorithm 7 makes for the step's linearized problem.  Plans are
keyed by a network-level :class:`NetworkSignature` (the analog of the
pairwise :class:`~repro.runtime.signature.ProblemSignature`) so a
repeated network request replays its path without re-optimizing — and,
because execution funnels each pairwise step through the runtime's
:class:`~repro.runtime.plan_cache.PlanCache`, without re-planning any
step either.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import PlanError
from repro.machine.specs import MachineSpec

__all__ = ["NetworkSignature", "PlanStep", "NetworkPlan"]

_FORMAT_VERSION = 1


def _machine_token(machine: MachineSpec) -> tuple:
    return (
        machine.name,
        machine.n_cores,
        machine.l3_bytes,
        machine.l2_bytes_per_core,
        machine.word_bytes,
    )


@dataclass(frozen=True)
class NetworkSignature:
    """Hashable structural identity of one network contraction problem."""

    subscripts: str
    shapes: tuple[tuple[int, ...], ...]
    nnzs: tuple[int, ...]
    machine: tuple  # (name, n_cores, l3_bytes, l2_bytes_per_core, word_bytes)
    optimizer: str = "auto"

    @classmethod
    def for_network(
        cls, network, machine: MachineSpec, optimizer: str = "auto"
    ) -> "NetworkSignature":
        return cls(
            subscripts=network.subscripts,
            shapes=tuple(m.shape for m in network.operands),
            nnzs=tuple(m.nnz for m in network.operands),
            machine=_machine_token(machine),
            optimizer=optimizer,
        )

    @property
    def key(self) -> str:
        """Stable string form, usable as a JSON object key."""
        shapes = ";".join("x".join(map(str, s)) for s in self.shapes)
        nnzs = ",".join(map(str, self.nnzs))
        name, cores, l3, l2, word = self.machine
        return (
            f"E{self.subscripts}|S{shapes}|n{nnzs}"
            f"|M{name};{cores};{l3};{l2};{word}|O{self.optimizer}"
        )


@dataclass(frozen=True)
class PlanStep:
    """One pairwise step of a network plan.

    ``i``/``j`` index the *shrinking* live operand list (``i < j``):
    the step consumes both positions and appends its result at the end
    — the ``numpy.einsum_path`` convention.  ``sub_l``/``sub_r`` are the
    inputs' subscripts at that point, ``sub_out`` the result's.
    """

    i: int
    j: int
    sub_l: str
    sub_r: str
    sub_out: str
    kind: str  # "contract" | "outer"
    pairs: tuple[tuple[int, int], ...]
    est_nnz: float
    est_cost: float  # modeled seconds through machine/cost_model
    accumulator: str  # Algorithm 7's choice ("" for outer steps)
    tile: int

    @property
    def subscripts(self) -> str:
        """The step as a standalone einsum string."""
        return f"{self.sub_l},{self.sub_r}->{self.sub_out}"


@dataclass
class NetworkPlan:
    """A frozen, explainable contraction path for one network.

    ``input_subs`` records each operand's subscript *after* the upfront
    marginalization of dead single indices — the executor reduces any
    operand whose live subscript differs before stepping.
    """

    signature_key: str
    subscripts: str
    output: str
    optimizer: str
    machine_name: str
    input_subs: tuple[str, ...]
    steps: tuple[PlanStep, ...]
    est_total_cost: float
    est_peak_nnz: float
    final_sub: str

    @property
    def path(self) -> list[tuple[int, int]]:
        """The bare ``(i, j)`` pair list (``numpy.einsum_path`` style)."""
        return [(s.i, s.j) for s in self.steps]

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    # -- explainability -------------------------------------------------

    def explain(self) -> str:
        """Human-readable step table for ``repro network --explain``."""
        lines = [
            f"network plan: {self.subscripts}",
            f"  optimizer={self.optimizer}, machine={self.machine_name}, "
            f"modeled cost {self.est_total_cost:.3e}s, "
            f"peak intermediate ~{self.est_peak_nnz:.3g} nnz",
        ]
        reduced = [
            f"{k}:{orig}->{red}"
            for k, (orig, red) in enumerate(
                zip(self.subscripts.split("->")[0].split(","), self.input_subs)
            )
            if orig != red
        ]
        if reduced:
            lines.append("  pre-reduced operands: " + ", ".join(reduced))
        for k, s in enumerate(self.steps):
            acc = f"{s.accumulator}/T{s.tile}" if s.kind == "contract" else "outer"
            lines.append(
                f"  step {k}: ({s.i},{s.j})  {s.subscripts:<24} "
                f"[{acc}]  ~{s.est_nnz:.3g} nnz, {s.est_cost:.3e}s"
            )
        if not self.steps:
            lines.append("  (single operand: reduce/permute only)")
        return "\n".join(lines)

    # -- serialization --------------------------------------------------

    def to_json(self) -> dict:
        """JSON-friendly dict (round-trips through :meth:`from_json`)."""
        payload = asdict(self)
        payload["version"] = _FORMAT_VERSION
        payload["steps"] = [asdict(s) for s in self.steps]
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "NetworkPlan":
        version = payload.get("version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise PlanError(f"unsupported network-plan version {version!r}")
        steps = tuple(
            PlanStep(
                i=int(s["i"]),
                j=int(s["j"]),
                sub_l=s["sub_l"],
                sub_r=s["sub_r"],
                sub_out=s["sub_out"],
                kind=s["kind"],
                pairs=tuple((int(a), int(b)) for a, b in s["pairs"]),
                est_nnz=float(s["est_nnz"]),
                est_cost=float(s["est_cost"]),
                accumulator=s["accumulator"],
                tile=int(s["tile"]),
            )
            for s in payload["steps"]
        )
        return cls(
            signature_key=payload["signature_key"],
            subscripts=payload["subscripts"],
            output=payload["output"],
            optimizer=payload["optimizer"],
            machine_name=payload["machine_name"],
            input_subs=tuple(payload["input_subs"]),
            steps=steps,
            est_total_cost=float(payload["est_total_cost"]),
            est_peak_nnz=float(payload["est_peak_nnz"]),
            final_sub=payload["final_sub"],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkPlan({self.subscripts!r}, optimizer={self.optimizer!r}, "
            f"steps={self.path})"
        )
