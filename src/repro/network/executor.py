"""Network plan execution through the adaptive runtime.

The executor owns two caches:

* a network-level LRU mapping :class:`~repro.network.plan.NetworkSignature`
  keys to frozen :class:`~repro.network.plan.NetworkPlan` objects, so a
  recurring network request skips path optimization entirely; and
* a shared :class:`~repro.runtime.ContractionRuntime`, so every pairwise
  step of a warm network call hits the runtime's
  :class:`~repro.runtime.plan_cache.PlanCache` (and, when the very same
  tensors recur, its linearization/table caches too).

Intermediates are freed eagerly — each step drops its inputs from the
live list before the next step runs — and the executor reports the peak
intermediate footprint (nnz and bytes) alongside per-step records.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.contraction import contract
from repro.errors import PlanError, WorkspaceLimitError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.network.ir import OperandMeta, TensorNetwork
from repro.network.optimize import build_plan, resolve_optimizer
from repro.network.plan import NetworkPlan, NetworkSignature
from repro.runtime.executor import ContractionRuntime
from repro.tensors.coo import COOTensor
from repro.tensors.linearize import ModeLinearizer
from repro.util.groups import segment_sum

__all__ = [
    "NetworkExecutor",
    "NetworkReport",
    "StepRecord",
    "contract_network",
    "default_executor",
    "outer_product",
    "sum_out_modes",
    "OUTER_PRODUCT_LIMIT",
]

#: Refuse outer products that would materialize more candidate nonzeros
#: than this (mirrors the kernel's task/workspace guards).
OUTER_PRODUCT_LIMIT = 1 << 26


def sum_out_modes(tensor: COOTensor, modes: Sequence[int]) -> COOTensor:
    """Sum a tensor over the given modes (marginalization)."""
    keep = [m for m in range(tensor.ndim) if m not in set(modes)]
    lin = ModeLinearizer([tensor.shape[m] for m in keep])
    flat = lin.encode(tensor.coords[keep, :])
    uniq, sums = segment_sum(flat, tensor.values)
    return COOTensor(
        lin.decode(uniq), sums, tuple(tensor.shape[m] for m in keep), check=False
    )


def outer_product(a: COOTensor, b: COOTensor) -> COOTensor:
    """Explicit sparse outer product: result modes are ``a``'s then
    ``b``'s; every nonzero pair contributes one (merged) coordinate."""
    n_pairs = a.nnz * b.nnz
    if n_pairs > OUTER_PRODUCT_LIMIT:
        raise WorkspaceLimitError(
            f"outer product would materialize {n_pairs} candidate "
            f"nonzeros (> {OUTER_PRODUCT_LIMIT})"
        )
    coords = np.concatenate(
        [np.repeat(a.coords, b.nnz, axis=1), np.tile(b.coords, a.nnz)],
        axis=0,
    )
    values = np.repeat(a.values, b.nnz) * np.tile(b.values, a.nnz)
    out = COOTensor(coords, values, tuple(a.shape) + tuple(b.shape), check=False)
    return out.sum_duplicates()


@dataclass
class StepRecord:
    """What one executed network step did."""

    index: int
    subscripts: str
    kind: str           # "contract" | "outer"
    seconds: float
    output_nnz: int
    plan_source: str    # "planner" | "cache" | "outer"
    backend: str = "numpy"  # kernel backend that executed the step


@dataclass
class NetworkReport:
    """Execution record of one network contraction."""

    plan: NetworkPlan
    plan_source: str    # "optimizer" | "cache"
    steps: list[StepRecord] = field(default_factory=list)
    seconds: float = 0.0
    peak_intermediate_nnz: int = 0
    peak_intermediate_bytes: int = 0
    output_nnz: int = 0

    def summary(self) -> str:
        lines = [
            f"network {self.plan.subscripts} "
            f"[{self.plan.optimizer}, plan {self.plan_source}]"
        ]
        for r in self.steps:
            lines.append(
                f"  step {r.index}: {r.subscripts:<24} {r.kind:<8} "
                f"plan={r.plan_source:<7} nnz={r.output_nnz:<9} "
                f"{r.seconds:8.4f}s"
            )
        lines.append(
            f"output nnz={self.output_nnz}, total {self.seconds:.4f}s, "
            f"peak intermediate {self.peak_intermediate_nnz} nnz "
            f"({self.peak_intermediate_bytes >> 10} KiB)"
        )
        return "\n".join(lines)


def _tensor_bytes(t: COOTensor) -> int:
    return int(t.coords.nbytes + t.values.nbytes)


class NetworkExecutor:
    """Plan-cached network contraction over a shared runtime.

    Parameters
    ----------
    machine:
        Platform model used for path optimization and pairwise planning.
    runtime:
        A shared :class:`ContractionRuntime`; built fresh when omitted
        (``runtime_kw`` configures the private one).
    plan_cache_size:
        How many :class:`NetworkPlan` entries the network-level LRU keeps.
    """

    def __init__(
        self,
        machine: MachineSpec = DESKTOP,
        *,
        runtime: ContractionRuntime | None = None,
        plan_cache_size: int = 64,
        **runtime_kw,
    ):
        if plan_cache_size < 1:
            raise PlanError(
                f"plan_cache_size must be >= 1, got {plan_cache_size}"
            )
        self.machine = machine
        self.runtime = (
            runtime
            if runtime is not None
            else ContractionRuntime(machine=machine, **runtime_kw)
        )
        self.plan_cache_size = int(plan_cache_size)
        self._plans: OrderedDict[str, NetworkPlan] = OrderedDict()
        # Shared by the serve worker pool: LRU reorder/evict and the
        # hit/miss tallies must not interleave across threads.
        self._plans_lock = threading.Lock()
        self.plan_hits = 0
        self.plan_misses = 0
        self.reports: list[NetworkReport] = []

    # -- planning -------------------------------------------------------

    def plan(
        self,
        subscripts: str,
        operands: Sequence,
        *,
        optimizer: str = "auto",
        nnz: Sequence[int] | None = None,
    ) -> tuple[NetworkPlan, str]:
        """The (cached) plan for a network; returns ``(plan, source)``."""
        network = TensorNetwork.parse(subscripts, operands, nnz=nnz)
        concrete = resolve_optimizer(optimizer, network)
        key = NetworkSignature.for_network(network, self.machine, concrete).key
        with self._plans_lock:
            hit = self._plans.get(key)
            if hit is not None:
                self._plans.move_to_end(key)
                self.plan_hits += 1
                return hit, "cache"
        plan = build_plan(network, self.machine, concrete)
        self.seed_plan(plan)
        with self._plans_lock:
            self.plan_misses += 1
        return plan, "optimizer"

    def cached_plan(
        self,
        subscripts: str,
        operands: Sequence,
        *,
        optimizer: str = "auto",
        nnz: Sequence[int] | None = None,
    ) -> NetworkPlan | None:
        """Cache-only probe: the plan if already built, else ``None``.

        Never runs path optimization and never touches the hit/miss
        tallies — the serve degradation ladder uses it to decide
        whether a warm full-quality plan is available before falling
        back to the cheap left-to-right path.
        """
        network = TensorNetwork.parse(subscripts, operands, nnz=nnz)
        concrete = resolve_optimizer(optimizer, network)
        key = NetworkSignature.for_network(network, self.machine, concrete).key
        with self._plans_lock:
            return self._plans.get(key)

    def seed_plan(self, plan: NetworkPlan) -> None:
        """Insert a pre-built plan into the network-level cache."""
        with self._plans_lock:
            self._plans[plan.signature_key] = plan
            self._plans.move_to_end(plan.signature_key)
            while len(self._plans) > self.plan_cache_size:
                self._plans.popitem(last=False)

    # -- execution ------------------------------------------------------

    def contract(
        self,
        subscripts: str,
        *operands: COOTensor,
        optimizer: str = "auto",
        method: str = "fastcc",
        return_report: bool = False,
        backend=None,
    ):
        """Plan (or replay) and execute one network contraction."""
        plan, source = self.plan(subscripts, operands, optimizer=optimizer)
        out, report = self.execute(plan, operands, method=method, backend=backend)
        report.plan_source = source
        if return_report:
            return out, report
        return out

    def execute(
        self,
        plan: NetworkPlan,
        operands: Sequence[COOTensor],
        *,
        method: str = "fastcc",
        backend=None,
    ) -> tuple[COOTensor, NetworkReport]:
        """Run a frozen plan over concrete tensors.

        The plan's declared shapes are enforced positionally; steps run
        through the shared runtime (FaSTCC) or the one-shot ``contract``
        dispatcher for baseline methods.  Inputs to each step are
        dropped from the live list before the next step runs.
        ``backend`` overrides the runtime's kernel backend for every
        pairwise step (see :mod:`repro.backends`).
        """
        network = TensorNetwork.parse(plan.subscripts, operands)
        report = NetworkReport(plan=plan, plan_source="given")
        t_start = time.perf_counter()

        # Upfront marginalization of dead single indices, per the plan.
        live: list[COOTensor] = []
        live_inter: list[bool] = []
        for tensor, sub, reduced in zip(
            operands, network.inputs, plan.input_subs
        ):
            if sub != reduced:
                dead = [m for m, ch in enumerate(sub) if ch not in reduced]
                tensor = sum_out_modes(tensor, dead)
            live.append(tensor)
            live_inter.append(sub != reduced)

        peak_nnz = sum(
            t.nnz for t, inter in zip(live, live_inter) if inter
        )
        peak_bytes = sum(
            _tensor_bytes(t) for t, inter in zip(live, live_inter) if inter
        )

        for k, step in enumerate(plan.steps):
            if not (0 <= step.i < step.j < len(live)):
                raise PlanError(
                    f"plan step {k} positions ({step.i}, {step.j}) do not "
                    f"fit the live operand list (length {len(live)})"
                )
            left, right = live[step.i], live[step.j]
            t0 = time.perf_counter()
            step_backend = "numpy"
            if step.kind == "outer":
                result = outer_product(left, right)
                plan_source = "outer"
            elif method == "fastcc":
                result, run_record = self.runtime.contract(
                    left, right, step.pairs,
                    name=f"net:{step.subscripts}", return_record=True,
                    backend=backend,
                )
                plan_source = run_record.plan_source
                step_backend = run_record.backend
            else:
                result = contract(
                    left, right, step.pairs,
                    method=method, machine=self.machine,
                )
                plan_source = "planner"
            dt = time.perf_counter() - t0

            # Free the step's inputs eagerly, then account the result.
            del live[step.j], live_inter[step.j]
            del live[step.i], live_inter[step.i]
            live.append(result)
            live_inter.append(True)
            alive_nnz = sum(
                t.nnz for t, inter in zip(live, live_inter) if inter
            )
            alive_bytes = sum(
                _tensor_bytes(t) for t, inter in zip(live, live_inter)
                if inter
            )
            peak_nnz = max(peak_nnz, alive_nnz)
            peak_bytes = max(peak_bytes, alive_bytes)
            report.steps.append(StepRecord(
                index=k,
                subscripts=step.subscripts,
                kind=step.kind,
                seconds=dt,
                output_nnz=result.nnz,
                plan_source=plan_source,
                backend=step_backend,
            ))

        if len(live) != 1:
            raise PlanError(
                f"plan left {len(live)} live operands; expected exactly 1"
            )
        final = live[0]
        final_sub = plan.final_sub
        if set(final_sub) != set(plan.output):  # pragma: no cover - guard
            raise PlanError(
                f"plan result carries indices {final_sub!r} but the "
                f"output wants {plan.output!r}"
            )
        if final_sub != plan.output:
            perm = [final_sub.index(ch) for ch in plan.output]
            final = final.permute_modes(perm)

        report.seconds = time.perf_counter() - t_start
        report.peak_intermediate_nnz = int(peak_nnz)
        report.peak_intermediate_bytes = int(peak_bytes)
        report.output_nnz = final.nnz
        self.reports.append(report)
        return final, report

    # -- metrics --------------------------------------------------------

    def metrics(self) -> dict:
        """Network- and pairwise-level cache metrics, JSON-friendly."""
        with self._plans_lock:
            hits, misses, cached = (
                self.plan_hits, self.plan_misses, len(self._plans)
            )
        total = hits + misses
        out = {
            "network_plans_cached": cached,
            "network_plan_hits": hits,
            "network_plan_misses": misses,
            "network_plan_hit_rate": hits / total if total else 0.0,
        }
        out.update(
            {f"pairwise_{k}": v for k, v in self.runtime.metrics().items()}
        )
        return out


# -- module-level convenience -------------------------------------------

_DEFAULT_EXECUTORS: dict[tuple, NetworkExecutor] = {}


def default_executor(machine: MachineSpec = DESKTOP) -> NetworkExecutor:
    """The shared per-machine executor behind :func:`repro.einsum` —
    what makes repeated einsum calls warm across call sites."""
    key = (
        machine.name, machine.n_cores, machine.l3_bytes,
        machine.l2_bytes_per_core, machine.word_bytes,
    )
    executor = _DEFAULT_EXECUTORS.get(key)
    if executor is None:
        executor = NetworkExecutor(machine=machine)
        _DEFAULT_EXECUTORS[key] = executor
    return executor


def contract_network(
    subscripts: str,
    *operands: COOTensor,
    machine: MachineSpec = DESKTOP,
    optimizer: str = "auto",
    method: str = "fastcc",
    executor: NetworkExecutor | None = None,
    return_report: bool = False,
    backend=None,
):
    """One-call network contraction through the shared default executor."""
    if executor is None:
        executor = default_executor(machine)
    return executor.contract(
        subscripts, *operands,
        optimizer=optimizer, method=method, return_report=return_report,
        backend=backend,
    )
