"""Network plan execution through the adaptive runtime.

The executor owns two caches:

* a network-level LRU mapping :class:`~repro.network.plan.NetworkSignature`
  keys to frozen :class:`~repro.network.plan.NetworkPlan` objects, so a
  recurring network request skips path optimization entirely; and
* a shared :class:`~repro.runtime.ContractionRuntime`, so every pairwise
  step of a warm network call hits the runtime's
  :class:`~repro.runtime.plan_cache.PlanCache` (and, when the very same
  tensors recur, its linearization/table caches too).

Intermediates are freed eagerly — each step drops its inputs from the
live list before the next step runs — and the executor reports the peak
intermediate footprint (nnz and bytes) alongside per-step records.

Plans are rewritten by a verified optimizer pass pipeline
(:mod:`repro.network.passes`) before caching; the executor honors the
resulting annotations with runtime guards that keep results
bit-identical to the unoptimized plan:

* ``dead`` steps short-circuit to an empty result once the plan's zero
  premise is confirmed against the live tensors;
* ``cse_of`` steps reuse the earlier step's retained result only when
  both inputs' content digests match the ones observed there;
* ``hoist_l``/``hoist_r`` feed :meth:`NetworkExecutor.prepare`, which
  builds and *pins* the invariant linearizations/tables up front.

A :class:`StepResultCache` extends the digest-guarded reuse across
requests: the serve micro-batcher hands one cache per drained batch to
every request in it, so structurally shared subnetworks with byte-equal
inputs compute once per batch.
"""

from __future__ import annotations

import hashlib
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.core.contraction import contract
from repro.errors import PlanError, WorkspaceLimitError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.network.dataflow import PlanGraph, canonical_pattern
from repro.network.ir import OperandMeta, TensorNetwork
from repro.network.optimize import build_plan, resolve_optimizer
from repro.network.passes import PassContext, resolve_pipeline
from repro.network.plan import NetworkPlan, NetworkSignature
from repro.runtime.executor import ContractionRuntime
from repro.tensors.coo import COOTensor
from repro.tensors.linearize import ModeLinearizer
from repro.util.groups import segment_sum

__all__ = [
    "NetworkExecutor",
    "NetworkReport",
    "PreparedNetwork",
    "StepRecord",
    "StepResultCache",
    "contract_network",
    "default_executor",
    "outer_product",
    "sum_out_modes",
    "OUTER_PRODUCT_LIMIT",
]

#: Refuse outer products that would materialize more candidate nonzeros
#: than this (mirrors the kernel's task/workspace guards).
OUTER_PRODUCT_LIMIT = 1 << 26

#: The ``|n<nnz,...>|`` segment of a network signature key.
_NET_NNZ_SEGMENT = re.compile(r"\|n([\d,]*)\|")


def _mask_net_nnz(key: str) -> str:
    """A network signature key with the nnz segment wildcarded.

    Equal masks = same subscripts, shapes, machine, optimizer, and
    pipeline at possibly different nonzero counts — the candidate
    relation for drift-tolerant plan reuse.
    """
    return _NET_NNZ_SEGMENT.sub("|n*|", key, count=1)


def _net_key_nnz(key: str) -> tuple[int, ...] | None:
    """Parse the per-operand nnz tuple out of a network signature key."""
    match = _NET_NNZ_SEGMENT.search(key)
    if match is None or not match.group(1):
        return None
    return tuple(int(n) for n in match.group(1).split(","))


def _net_relative_drift(a: tuple[int, ...], b: tuple[int, ...]) -> float:
    """Max per-operand relative nnz change between two keys."""
    if len(a) != len(b):
        return float("inf")
    return max(
        (abs(x - y) / max(y, 1) for x, y in zip(a, b)), default=0.0
    )


def sum_out_modes(tensor: COOTensor, modes: Sequence[int]) -> COOTensor:
    """Sum a tensor over the given modes (marginalization)."""
    keep = [m for m in range(tensor.ndim) if m not in set(modes)]
    lin = ModeLinearizer([tensor.shape[m] for m in keep])
    flat = lin.encode(tensor.coords[keep, :])
    uniq, sums = segment_sum(flat, tensor.values)
    return COOTensor(
        lin.decode(uniq), sums, tuple(tensor.shape[m] for m in keep), check=False
    )


def outer_product(a: COOTensor, b: COOTensor) -> COOTensor:
    """Explicit sparse outer product: result modes are ``a``'s then
    ``b``'s; every nonzero pair contributes one (merged) coordinate."""
    n_pairs = a.nnz * b.nnz
    if n_pairs > OUTER_PRODUCT_LIMIT:
        raise WorkspaceLimitError(
            f"outer product would materialize {n_pairs} candidate "
            f"nonzeros (> {OUTER_PRODUCT_LIMIT})"
        )
    coords = np.concatenate(
        [np.repeat(a.coords, b.nnz, axis=1), np.tile(b.coords, a.nnz)],
        axis=0,
    )
    values = np.repeat(a.values, b.nnz) * np.tile(b.values, a.nnz)
    out = COOTensor(coords, values, tuple(a.shape) + tuple(b.shape), check=False)
    return out.sum_duplicates()


@dataclass
class StepRecord:
    """What one executed network step did."""

    index: int
    subscripts: str
    kind: str           # "contract" | "outer"
    seconds: float
    output_nnz: int
    plan_source: str    # "planner" | "cache" | "outer"
    backend: str = "numpy"  # kernel backend that executed the step


@dataclass
class NetworkReport:
    """Execution record of one network contraction."""

    plan: NetworkPlan
    plan_source: str    # "optimizer" | "cache"
    steps: list[StepRecord] = field(default_factory=list)
    seconds: float = 0.0
    peak_intermediate_nnz: int = 0
    peak_intermediate_bytes: int = 0
    output_nnz: int = 0

    def summary(self) -> str:
        lines = [
            f"network {self.plan.subscripts} "
            f"[{self.plan.optimizer}, plan {self.plan_source}]"
        ]
        for r in self.steps:
            lines.append(
                f"  step {r.index}: {r.subscripts:<24} {r.kind:<8} "
                f"plan={r.plan_source:<7} nnz={r.output_nnz:<9} "
                f"{r.seconds:8.4f}s"
            )
        lines.append(
            f"output nnz={self.output_nnz}, total {self.seconds:.4f}s, "
            f"peak intermediate {self.peak_intermediate_nnz} nnz "
            f"({self.peak_intermediate_bytes >> 10} KiB)"
        )
        return "\n".join(lines)


def _tensor_bytes(t: COOTensor) -> int:
    return int(t.coords.nbytes + t.values.nbytes)


def _content_digest(t: COOTensor) -> bytes:
    """Content identity of a COO tensor (order-sensitive, canonical
    tensors compare equal iff byte-equal).  This is the runtime guard
    behind every speculative-CSE reuse."""
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((t.shape, t.coords.dtype.str, t.values.dtype.str)).encode())
    h.update(np.ascontiguousarray(t.coords).tobytes())
    h.update(np.ascontiguousarray(t.values).tobytes())
    return h.digest()


class _DigestMemo:
    """Per-execution digest cache, identity-keyed.

    Holds a strong reference alongside each digest so a freed tensor's
    recycled ``id`` can never alias a stale entry.
    """

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: dict[int, tuple[COOTensor, bytes]] = {}

    def digest(self, t: COOTensor) -> bytes:
        hit = self._entries.get(id(t))
        if hit is not None and hit[0] is t:
            return hit[1]
        d = _content_digest(t)
        self._entries[id(t)] = (t, d)
        return d


class StepResultCache:
    """Digest-keyed step-result memo for cross-request CSE.

    The serve micro-batcher creates one per drained batch and threads it
    through every request's execution: a step whose (canonical pattern,
    input digests, method, backend) key was already computed by *any*
    request in the batch reuses that result outright.  Keys are content
    digests, so reuse is sound across requests regardless of plan or
    operand identity; values are immutable COO results shared by
    reference.  Thread-safe; bounded LRU.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise PlanError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, COOTensor] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> COOTensor | None:
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return hit
            self.misses += 1
            return None

    def put(self, key: tuple, value: COOTensor) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }


class NetworkExecutor:
    """Plan-cached network contraction over a shared runtime.

    Parameters
    ----------
    machine:
        Platform model used for path optimization and pairwise planning.
    runtime:
        A shared :class:`ContractionRuntime`; built fresh when omitted
        (``runtime_kw`` configures the private one).
    plan_cache_size:
        How many :class:`NetworkPlan` entries the network-level LRU keeps.
    passes:
        Optimizer pass pipeline configuration (``"default"``, a
        comma-separated name list, a
        :class:`~repro.network.passes.PassPipeline`, or ``None`` to
        disable).  The resolved pipeline's key becomes part of every
        plan-cache key, so plans produced under different pipeline (or
        no-pipeline) configurations can never collide.
    """

    def __init__(
        self,
        machine: MachineSpec = DESKTOP,
        *,
        runtime: ContractionRuntime | None = None,
        plan_cache_size: int = 64,
        passes="default",
        drift_rtol: float | None = 0.25,
        **runtime_kw,
    ):
        if plan_cache_size < 1:
            raise PlanError(
                f"plan_cache_size must be >= 1, got {plan_cache_size}"
            )
        if drift_rtol is not None and drift_rtol < 0:
            raise PlanError(f"drift_rtol must be >= 0, got {drift_rtol}")
        self.machine = machine
        self.runtime = (
            runtime
            if runtime is not None
            else ContractionRuntime(machine=machine, **runtime_kw)
        )
        self.plan_cache_size = int(plan_cache_size)
        self.pipeline = resolve_pipeline(passes)
        self.drift_rtol = drift_rtol
        self._plans: OrderedDict[str, NetworkPlan] = OrderedDict()
        # Masked structure key -> most recently inserted exact key
        # (drift-tolerant reuse; see ``plan``).
        self._plan_structure: dict[str, str] = {}
        # Shared by the serve worker pool: LRU reorder/evict and the
        # hit/miss tallies must not interleave across threads.
        self._plans_lock = threading.Lock()
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_drift_hits = 0
        self.plan_drift_repriced = 0
        self.plans_invalidated = 0
        self.cse_hits = 0
        self.cse_misses = 0
        self.batch_cse_hits = 0
        self.dead_skips = 0
        self.reports: list[NetworkReport] = []

    @property
    def pipeline_key(self) -> str:
        """The pass-pipeline half of every plan-cache key (``""`` when
        the pipeline is disabled, keeping historical keys stable)."""
        return self.pipeline.key if self.pipeline is not None else ""

    @staticmethod
    def _operand_dtypes(operands: Sequence) -> tuple[str, ...] | None:
        """Per-operand dtype names when live tensors were passed."""
        names = []
        for op in operands:
            values = getattr(op, "values", None)
            if values is None or not hasattr(values, "dtype"):
                return None
            names.append(values.dtype.name)
        return tuple(names)

    # -- planning -------------------------------------------------------

    def plan(
        self,
        subscripts: str,
        operands: Sequence,
        *,
        optimizer: str = "auto",
        nnz: Sequence[int] | None = None,
    ) -> tuple[NetworkPlan, str]:
        """The (cached) plan for a network; returns ``(plan, source)``.

        A cache miss runs the path optimizer and then the executor's
        pass pipeline; every rewrite is checked by the pipeline's
        verifier before the plan is cached under its pipeline-qualified
        signature key.
        """
        network = TensorNetwork.parse(subscripts, operands, nnz=nnz)
        concrete = resolve_optimizer(optimizer, network)
        key = NetworkSignature.for_network(
            network, self.machine, concrete, pipeline=self.pipeline_key
        ).key
        with self._plans_lock:
            hit = self._plans.get(key)
            if hit is not None:
                self._plans.move_to_end(key)
                self.plan_hits += 1
                return hit, "cache"
            # Drift probe: the same network structure cached at nearby
            # nonzero counts (a streamed operand gained a few entries)
            # keeps its path; past the tolerance the modeled costs that
            # chose the path are stale, so it is re-priced from scratch.
            if self.drift_rtol is not None:
                candidate = self._plan_structure.get(_mask_net_nnz(key))
                if candidate is not None and candidate != key:
                    cached = self._plans.get(candidate)
                    want = _net_key_nnz(key)
                    have = _net_key_nnz(candidate)
                    if cached is not None and want is not None and have is not None:
                        if _net_relative_drift(want, have) <= self.drift_rtol:
                            rekeyed = replace(cached, signature_key=key)
                            self._seed_locked(rekeyed)
                            self.plan_drift_hits += 1
                            self.plan_hits += 1
                            return rekeyed, "cache"
                        self.plan_drift_repriced += 1
        plan = build_plan(network, self.machine, concrete)
        if self.pipeline is not None:
            context = PassContext(dtypes=self._operand_dtypes(operands))
            plan = self.pipeline.run(plan, network, context=context)
        if plan.signature_key != key:
            plan = replace(plan, signature_key=key)
        self.seed_plan(plan)
        with self._plans_lock:
            self.plan_misses += 1
        return plan, "optimizer"

    def cached_plan(
        self,
        subscripts: str,
        operands: Sequence,
        *,
        optimizer: str = "auto",
        nnz: Sequence[int] | None = None,
    ) -> NetworkPlan | None:
        """Cache-only probe: the plan if already built, else ``None``.

        Never runs path optimization and never touches the hit/miss
        tallies — the serve degradation ladder uses it to decide
        whether a warm full-quality plan is available before falling
        back to the cheap left-to-right path.
        """
        network = TensorNetwork.parse(subscripts, operands, nnz=nnz)
        concrete = resolve_optimizer(optimizer, network)
        key = NetworkSignature.for_network(
            network, self.machine, concrete, pipeline=self.pipeline_key
        ).key
        with self._plans_lock:
            return self._plans.get(key)

    def seed_plan(self, plan: NetworkPlan) -> None:
        """Insert a pre-built plan into the network-level cache."""
        with self._plans_lock:
            self._seed_locked(plan)

    def _seed_locked(self, plan: NetworkPlan) -> None:
        """Insert under ``_plans_lock``; keeps the structure index in step."""
        key = plan.signature_key
        self._plans[key] = plan
        self._plans.move_to_end(key)
        self._plan_structure[_mask_net_nnz(key)] = key
        while len(self._plans) > self.plan_cache_size:
            victim, _ = self._plans.popitem(last=False)
            self._drop_structure_locked(victim)

    def _drop_structure_locked(self, key: str) -> None:
        """Remove ``key``'s structure mapping if it is still the latest."""
        masked = _mask_net_nnz(key)
        if self._plan_structure.get(masked) == key:
            del self._plan_structure[masked]

    def invalidate_plans(self, predicate=None) -> int:
        """Drop cached network plans; returns how many were removed.

        ``predicate`` takes a signature key and returns whether to drop
        that entry; ``None`` clears the whole cache.  The streaming
        layer calls this when a tensor's nonzero structure moves far
        enough that even drift-tolerant reuse would mislead.
        """
        with self._plans_lock:
            if predicate is None:
                dropped = len(self._plans)
                self._plans.clear()
                self._plan_structure.clear()
            else:
                victims = [k for k in self._plans if predicate(k)]
                for k in victims:
                    del self._plans[k]
                    self._drop_structure_locked(k)
                dropped = len(victims)
            self.plans_invalidated += dropped
            return dropped

    # -- execution ------------------------------------------------------

    def contract(
        self,
        subscripts: str,
        *operands: COOTensor,
        optimizer: str = "auto",
        method: str = "fastcc",
        return_report: bool = False,
        backend=None,
        cse_cache: StepResultCache | None = None,
    ):
        """Plan (or replay) and execute one network contraction."""
        plan, source = self.plan(subscripts, operands, optimizer=optimizer)
        out, report = self.execute(
            plan, operands, method=method, backend=backend,
            cse_cache=cse_cache,
        )
        report.plan_source = source
        if return_report:
            return out, report
        return out

    def execute(
        self,
        plan: NetworkPlan,
        operands: Sequence[COOTensor],
        *,
        method: str = "fastcc",
        backend=None,
        cse_cache: StepResultCache | None = None,
        _reduced: Sequence[COOTensor] | None = None,
    ) -> tuple[COOTensor, NetworkReport]:
        """Run a frozen plan over concrete tensors.

        The plan's declared shapes are enforced positionally; steps run
        through the shared runtime (FaSTCC) or the one-shot ``contract``
        dispatcher for baseline methods.  Inputs to each step are
        dropped from the live list before the next step runs.
        ``backend`` overrides the runtime's kernel backend for every
        pairwise step (see :mod:`repro.backends`).

        Pass annotations are honored behind runtime guards (see the
        module docstring); ``cse_cache`` extends digest-guarded reuse
        across executions sharing the cache.  ``_reduced`` is the
        prepared-execution fast path: the already-marginalized operand
        list from :class:`PreparedNetwork` (identity matters — pinned
        cache entries key on these exact tensors).
        """
        network = TensorNetwork.parse(plan.subscripts, operands)
        report = NetworkReport(plan=plan, plan_source="given")
        t_start = time.perf_counter()

        # Upfront marginalization of dead single indices, per the plan.
        live: list[COOTensor] = []
        live_inter: list[bool] = []
        if _reduced is not None:
            live = list(_reduced)
            live_inter = [False] * len(live)
        else:
            for tensor, sub, reduced in zip(
                operands, network.inputs, plan.input_subs
            ):
                if sub != reduced:
                    dead = [m for m, ch in enumerate(sub) if ch not in reduced]
                    tensor = sum_out_modes(tensor, dead)
                live.append(tensor)
                live_inter.append(sub != reduced)

        peak_nnz = sum(
            t.nnz for t, inter in zip(live, live_inter) if inter
        )
        peak_bytes = sum(
            _tensor_bytes(t) for t, inter in zip(live, live_inter) if inter
        )

        # The dead-step premise: every operand the pass saw as empty
        # must still be empty, or every shortcut is off.
        zero_ok = bool(plan.zero_operands) and all(
            0 <= p < len(operands) and operands[p].nnz == 0
            for p in plan.zero_operands
        )
        # Steps whose results later steps want to reuse, with how many
        # reuses remain (retention beyond the eager free below).
        pending_reuses: dict[int, int] = {}
        for s in plan.steps:
            if s.cse_of >= 0:
                pending_reuses[s.cse_of] = pending_reuses.get(s.cse_of, 0) + 1
        retained: dict[int, tuple[tuple[bytes, bytes], COOTensor]] = {}
        memo = _DigestMemo()
        want_digests = bool(pending_reuses) or cse_cache is not None

        for k, step in enumerate(plan.steps):
            if not (0 <= step.i < step.j < len(live)):
                raise PlanError(
                    f"plan step {k} positions ({step.i}, {step.j}) do not "
                    f"fit the live operand list (length {len(live)})"
                )
            left, right = live[step.i], live[step.j]
            t0 = time.perf_counter()
            step_backend = "numpy"
            result = None
            plan_source = ""
            digests = None
            if want_digests:
                digests = (memo.digest(left), memo.digest(right))
            batch_key = None
            if cse_cache is not None:
                batch_key = (
                    canonical_pattern(step), digests, method, str(backend),
                )

            if step.dead and zero_ok:
                dtype = np.result_type(left.values, right.values)
                shape = tuple(network.extents[ch] for ch in step.sub_out)
                result = COOTensor(
                    np.zeros((len(shape), 0), dtype=np.int64),
                    np.zeros(0, dtype=dtype),
                    shape,
                    check=False,
                )
                plan_source = "dead"
                self.dead_skips += 1
            if result is None and step.cse_of >= 0:
                hit = retained.get(step.cse_of)
                if (
                    hit is not None
                    and digests == hit[0]
                    and canonical_pattern(step)
                    == canonical_pattern(plan.steps[step.cse_of])
                ):
                    result = hit[1]
                    plan_source = "cse"
                    self.cse_hits += 1
                else:
                    self.cse_misses += 1
            if result is None and batch_key is not None:
                shared = cse_cache.get(batch_key)
                if shared is not None:
                    result = shared
                    plan_source = "cse-batch"
                    self.batch_cse_hits += 1

            if result is not None:
                pass
            elif step.kind == "outer":
                result = outer_product(left, right)
                plan_source = "outer"
            elif method == "fastcc":
                result, run_record = self.runtime.contract(
                    left, right, step.pairs,
                    name=f"net:{step.subscripts}", return_record=True,
                    backend=backend,
                )
                plan_source = run_record.plan_source
                step_backend = run_record.backend
            else:
                result = contract(
                    left, right, step.pairs,
                    method=method, machine=self.machine,
                )
                plan_source = "planner"
            dt = time.perf_counter() - t0

            if k in pending_reuses and digests is not None:
                retained[k] = (digests, result)
            if batch_key is not None and plan_source != "cse-batch":
                cse_cache.put(batch_key, result)

            # Free the step's inputs eagerly, then account the result
            # (plus anything retained for a pending cse reuse).
            del live[step.j], live_inter[step.j]
            del live[step.i], live_inter[step.i]
            live.append(result)
            live_inter.append(True)
            if step.cse_of in pending_reuses:
                pending_reuses[step.cse_of] -= 1
                if pending_reuses[step.cse_of] <= 0:
                    del pending_reuses[step.cse_of]
                    retained.pop(step.cse_of, None)
            live_ids = {id(t) for t in live}
            extra = [
                t for _, t in retained.values() if id(t) not in live_ids
            ]
            alive_nnz = sum(
                t.nnz for t, inter in zip(live, live_inter) if inter
            ) + sum(t.nnz for t in extra)
            alive_bytes = sum(
                _tensor_bytes(t) for t, inter in zip(live, live_inter)
                if inter
            ) + sum(_tensor_bytes(t) for t in extra)
            peak_nnz = max(peak_nnz, alive_nnz)
            peak_bytes = max(peak_bytes, alive_bytes)
            report.steps.append(StepRecord(
                index=k,
                subscripts=step.subscripts,
                kind=step.kind,
                seconds=dt,
                output_nnz=result.nnz,
                plan_source=plan_source,
                backend=step_backend,
            ))

        if len(live) != 1:
            raise PlanError(
                f"plan left {len(live)} live operands; expected exactly 1"
            )
        final = live[0]
        final_sub = plan.final_sub
        if set(final_sub) != set(plan.output):  # pragma: no cover - guard
            raise PlanError(
                f"plan result carries indices {final_sub!r} but the "
                f"output wants {plan.output!r}"
            )
        if final_sub != plan.output:
            perm = [final_sub.index(ch) for ch in plan.output]
            final = final.permute_modes(perm)

        report.seconds = time.perf_counter() - t_start
        report.peak_intermediate_nnz = int(peak_nnz)
        report.peak_intermediate_bytes = int(peak_bytes)
        report.output_nnz = final.nnz
        self.reports.append(report)
        return final, report

    # -- prepared (repeated) execution ----------------------------------

    def prepare(
        self,
        subscripts: str,
        *operands: COOTensor,
        optimizer: str = "auto",
        volatile: Sequence[int] = (),
        backend=None,
    ) -> "PreparedNetwork":
        """Hoist everything loop-invariant out of a repeated execution.

        Plans (or replays) the network, performs the upfront
        marginalization once, and acts on the plan's hoist annotations:
        steps contracting two network inputs get their Algorithm 7 plan,
        linearizations, *and* tiled tables built now; single-input sides
        get pre-linearized.  Every touched operand is pinned in the
        runtime's operand cache so executing the prepared network many
        times never rebuilds them.  ``volatile`` positions (content
        changes between executions) are never hoisted regardless of
        annotations — the same guard the
        :class:`~repro.network.passes.PassVerifier` enforces statically.

        Use as a context manager (or call :meth:`PreparedNetwork.close`)
        to release the pins.
        """
        plan, _ = self.plan(subscripts, operands, optimizer=optimizer)
        network = TensorNetwork.parse(subscripts, operands)

        reduced: list[COOTensor] = []
        for tensor, sub, red in zip(operands, network.inputs, plan.input_subs):
            if sub != red:
                dead = [m for m, ch in enumerate(sub) if ch not in red]
                tensor = sum_out_modes(tensor, dead)
            reduced.append(tensor)

        graph = PlanGraph.from_plan(plan, network)
        volatile_set = set(volatile)
        zero_ok = bool(plan.zero_operands) and all(
            0 <= p < len(operands) and operands[p].nnz == 0
            for p in plan.zero_operands
        )
        pinned: list[COOTensor] = []
        tables_built = 0
        for op in graph.ops:
            step = op.step
            if step.kind != "contract" or (step.dead and zero_ok):
                continue
            vl, vr = graph.values[op.left], graph.values[op.right]
            hoist_l = step.hoist_l and vl.is_input and vl.origin[1] not in volatile_set
            hoist_r = step.hoist_r and vr.is_input and vr.origin[1] not in volatile_set
            if hoist_l and hoist_r:
                info = self.runtime.prepare_pairwise(
                    reduced[vl.origin[1]], reduced[vr.origin[1]],
                    step.pairs, backend=backend,
                )
                tables_built += info["tables_built"]
                pinned.extend(
                    (reduced[vl.origin[1]], reduced[vr.origin[1]])
                )
            elif hoist_l:
                self.runtime.prepare_operand(
                    reduced[vl.origin[1]], "L", vr.shape, step.pairs
                )
                pinned.append(reduced[vl.origin[1]])
            elif hoist_r:
                self.runtime.prepare_operand(
                    reduced[vr.origin[1]], "R", vl.shape, step.pairs
                )
                pinned.append(reduced[vr.origin[1]])
        return PreparedNetwork(
            executor=self,
            plan=plan,
            operands=tuple(operands),
            reduced=tuple(reduced),
            pinned=tuple(pinned),
            tables_built=tables_built,
        )

    # -- metrics --------------------------------------------------------

    def metrics(self) -> dict:
        """Network- and pairwise-level cache metrics, JSON-friendly."""
        with self._plans_lock:
            hits, misses, cached = (
                self.plan_hits, self.plan_misses, len(self._plans)
            )
        total = hits + misses
        cse_total = self.cse_hits + self.cse_misses
        out = {
            "network_plans_cached": cached,
            "network_plan_hits": hits,
            "network_plan_misses": misses,
            "network_plan_hit_rate": hits / total if total else 0.0,
            "network_plan_drift_hits": self.plan_drift_hits,
            "network_plan_drift_repriced": self.plan_drift_repriced,
            "network_plans_invalidated": self.plans_invalidated,
            "cse_hits": self.cse_hits,
            "cse_misses": self.cse_misses,
            "cse_hit_rate": self.cse_hits / cse_total if cse_total else 0.0,
            "batch_cse_hits": self.batch_cse_hits,
            "dead_skips": self.dead_skips,
        }
        out.update(
            {f"pairwise_{k}": v for k, v in self.runtime.metrics().items()}
        )
        return out


@dataclass
class PreparedNetwork:
    """One network pinned for repeated execution (see
    :meth:`NetworkExecutor.prepare`).

    Holds the plan, the original operands, the once-marginalized
    operand list the executions actually contract, and the pins to
    release.  A context manager: pins are released on exit.
    """

    executor: NetworkExecutor
    plan: NetworkPlan
    operands: tuple[COOTensor, ...]
    reduced: tuple[COOTensor, ...]
    pinned: tuple[COOTensor, ...]
    tables_built: int = 0
    _closed: bool = False

    def execute(
        self,
        *,
        method: str = "fastcc",
        backend=None,
        cse_cache: StepResultCache | None = None,
        return_report: bool = False,
    ):
        """One execution of the prepared network."""
        if self._closed:
            raise PlanError("prepared network is closed (pins released)")
        out, report = self.executor.execute(
            self.plan, self.operands,
            method=method, backend=backend, cse_cache=cse_cache,
            _reduced=self.reduced,
        )
        if return_report:
            return out, report
        return out

    def close(self) -> None:
        """Release every operand pin (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for tensor in self.pinned:
            self.executor.runtime.unpin_operand(tensor)

    def __enter__(self) -> "PreparedNetwork":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- module-level convenience -------------------------------------------

_DEFAULT_EXECUTORS: dict[tuple, NetworkExecutor] = {}


def default_executor(machine: MachineSpec = DESKTOP) -> NetworkExecutor:
    """The shared per-machine executor behind :func:`repro.einsum` —
    what makes repeated einsum calls warm across call sites."""
    key = (
        machine.name, machine.n_cores, machine.l3_bytes,
        machine.l2_bytes_per_core, machine.word_bytes,
    )
    executor = _DEFAULT_EXECUTORS.get(key)
    if executor is None:
        executor = NetworkExecutor(machine=machine)
        _DEFAULT_EXECUTORS[key] = executor
    return executor


def contract_network(
    subscripts: str,
    *operands: COOTensor,
    machine: MachineSpec = DESKTOP,
    optimizer: str = "auto",
    method: str = "fastcc",
    executor: NetworkExecutor | None = None,
    return_report: bool = False,
    backend=None,
):
    """One-call network contraction through the shared default executor."""
    if executor is None:
        executor = default_executor(machine)
    return executor.contract(
        subscripts, *operands,
        optimizer=optimizer, method=method, return_report=return_report,
        backend=backend,
    )
