"""Pass protocol, registry, and the verified pass pipeline.

An optimizer pass maps ``(plan, network, context) -> plan``.  The
rewrite language is deliberately *annotations only*: a pass may set
:class:`~repro.network.plan.PlanStep` annotation fields (``cse_of``,
``dead``, ``hoist_l``/``hoist_r``) and the plan-level ``passes`` /
``zero_operands`` records, but never touch a step's computational core
(positions, subscripts, pairs, estimates).  That closed-world contract
is what makes every pass mechanically verifiable: the
:class:`PassVerifier` re-derives the dataflow facts after each pass and
refuses the rewrite on any error-severity finding, so an unsound pass
can never hand a plan to the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import PlanError
from repro.network.ir import TensorNetwork
from repro.network.plan import NetworkPlan
from repro.staticcheck.diagnostics import Diagnostic

__all__ = [
    "PassContext",
    "PlanPass",
    "PassResult",
    "PipelineReport",
    "PassPipeline",
    "PASS_REGISTRY",
    "DEFAULT_PASSES",
    "register_pass",
    "resolve_pipeline",
]


@dataclass(frozen=True)
class PassContext:
    """Extra facts a pass (and the verifier) may consume.

    ``dtypes`` — per-operand dtype names when known (CSE must not merge
    across dtypes); ``volatile`` — operand positions whose *content*
    may change between repeated executions (streaming updates): table
    hoisting across such a mutation is unsound and is refused.
    """

    dtypes: tuple[str, ...] | None = None
    volatile: tuple[int, ...] = ()


class PlanPass:
    """One optimizer pass.  Subclasses set ``name`` and implement
    :meth:`run`; a pass must be pure (same inputs -> same plan) and
    must return the input plan object unchanged-or-replaced, never
    mutated."""

    name = "pass"

    def run(
        self,
        plan: NetworkPlan,
        network: TensorNetwork,
        context: PassContext,
    ) -> NetworkPlan:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class PassResult:
    """What one pass did to one plan."""

    name: str
    changed: bool
    annotations: int  # annotation fields newly set by this pass
    diagnostics: list[Diagnostic] = field(default_factory=list)


@dataclass
class PipelineReport:
    """Per-pass trail of one pipeline run (explainability surface)."""

    results: list[PassResult] = field(default_factory=list)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [d for r in self.results for d in r.diagnostics]

    def summary(self) -> str:
        parts = []
        for r in self.results:
            mark = f"+{r.annotations}" if r.changed else "-"
            parts.append(f"{r.name}[{mark}]")
        return " -> ".join(parts) if parts else "(empty pipeline)"


def _count_annotations(plan: NetworkPlan) -> int:
    n = len(plan.zero_operands)
    for s in plan.steps:
        n += (s.cse_of >= 0) + s.dead + s.hoist_l + s.hoist_r
    return n


#: name -> pass class.  Names are stable API (plan-cache keys and the
#: ``passes`` CLI/serve configuration refer to them).
PASS_REGISTRY: dict[str, type] = {}

#: The default pipeline, in application order.
DEFAULT_PASSES = ("cse", "dead", "hoist")


def register_pass(cls: type) -> type:
    """Class decorator adding a pass to :data:`PASS_REGISTRY`."""
    if not getattr(cls, "name", None):
        raise PlanError(f"pass class {cls.__name__} declares no name")
    PASS_REGISTRY[cls.name] = cls
    return cls


class PassPipeline:
    """An ordered, verified sequence of optimizer passes.

    Every pass's output is checked by the ``verifier`` (a
    :class:`~repro.network.passes.verify.PassVerifier` unless
    overridden) against the pass's input; error-severity findings raise
    :class:`~repro.errors.PlanError` and the rewrite is discarded.
    ``key`` is the canonical configuration string used to qualify
    plan-cache keys.
    """

    def __init__(self, passes: Sequence[PlanPass], *, verifier=None):
        if verifier is None:
            from repro.network.passes.verify import PassVerifier

            verifier = PassVerifier()
        self.passes = list(passes)
        self.verifier = verifier
        seen = set()
        for p in self.passes:
            if p.name in seen:
                raise PlanError(f"duplicate pass {p.name!r} in pipeline")
            seen.add(p.name)

    @property
    def key(self) -> str:
        """Canonical configuration string (``"cse,dead,hoist"``)."""
        return ",".join(p.name for p in self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def run(
        self,
        plan: NetworkPlan,
        network: TensorNetwork,
        *,
        context: PassContext | None = None,
        report: PipelineReport | None = None,
    ) -> NetworkPlan:
        """Apply every pass in order, verifying each rewrite.

        Pass ``report`` to collect the per-pass trail; the returned plan
        records the applied pass names in ``plan.passes``.
        """
        context = context if context is not None else PassContext()
        for p in self.passes:
            before = plan
            after = p.run(plan, network, context)
            diags = self.verifier.check(
                before, after, network, context=context, pass_name=p.name
            )
            errors = [d for d in diags if d.severity == "error"]
            if errors:
                findings = "; ".join(d.render() for d in errors)
                raise PlanError(
                    f"pass {p.name!r} produced an unsound rewrite: {findings}"
                )
            if report is not None:
                report.results.append(PassResult(
                    name=p.name,
                    changed=after is not before,
                    annotations=(
                        _count_annotations(after) - _count_annotations(before)
                    ),
                    diagnostics=diags,
                ))
            plan = after
        return plan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PassPipeline({self.key!r})"


def resolve_pipeline(spec) -> PassPipeline | None:
    """Build a pipeline from a configuration value.

    ``None``/``"none"``/``""`` — no pipeline; ``"default"`` — the
    standard :data:`DEFAULT_PASSES`; a comma-separated string or a
    sequence of names — those registered passes, in order; an existing
    :class:`PassPipeline` passes through.
    """
    if spec is None or spec == "" or spec == "none":
        return None
    if isinstance(spec, PassPipeline):
        return spec
    if spec == "default":
        names: Sequence[str] = DEFAULT_PASSES
    elif isinstance(spec, str):
        names = tuple(s.strip() for s in spec.split(",") if s.strip())
    else:
        names = tuple(spec)
    passes = []
    for name in names:
        cls = PASS_REGISTRY.get(name)
        if cls is None:
            raise PlanError(
                f"unknown optimizer pass {name!r}; registered: "
                f"{sorted(PASS_REGISTRY)}"
            )
        passes.append(cls())
    return PassPipeline(passes)
