"""The pass verifier: dataflow-backed refusal of unsound rewrites.

:class:`PassVerifier` is the :class:`~repro.network.passes.PassPipeline`'s
gatekeeper — after every pass it compares the output plan against the
input plan and the re-derived dataflow facts, returning ``FSTC5xx``
diagnostics.  The actual checking logic lives in
:mod:`repro.staticcheck.pass_lint` (imported lazily here: the network
layer must stay importable without pulling the whole static checker in
at module-import time, and ``staticcheck`` itself imports the network
layer lazily for the same reason).
"""

from __future__ import annotations

from repro.network.ir import TensorNetwork
from repro.network.plan import NetworkPlan

__all__ = ["PassVerifier"]


class PassVerifier:
    """Check one pass's rewrite against the dataflow facts.

    ``strict`` (default) keeps warnings in the returned findings;
    the pipeline only *refuses* on error severity either way.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict

    def check(
        self,
        before: NetworkPlan,
        after: NetworkPlan,
        network: TensorNetwork,
        *,
        context=None,
        pass_name: str = "",
    ) -> list:
        from repro.staticcheck.pass_lint import verify_rewrite

        dtypes = getattr(context, "dtypes", None)
        volatile = getattr(context, "volatile", ())
        diags = verify_rewrite(
            before, after, network,
            dtypes=dtypes, volatile=volatile, pass_name=pass_name,
        )
        if not self.strict:
            diags = [d for d in diags if d.severity == "error"]
        return diags

    def lint(
        self,
        plan: NetworkPlan,
        network: TensorNetwork,
        *,
        context=None,
    ) -> list:
        """Check a standalone plan's annotations (no before/after pair)
        — the entry point for plans deserialized from a cache."""
        from repro.staticcheck.pass_lint import lint_plan_annotations

        return lint_plan_annotations(
            plan, network,
            dtypes=getattr(context, "dtypes", None),
            volatile=getattr(context, "volatile", ()),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PassVerifier(strict={self.strict})"
