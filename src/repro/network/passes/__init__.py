"""Verified optimizer passes over network plans.

Importing this package registers the standard passes (``cse``,
``dead``, ``hoist``) in :data:`~repro.network.passes.base.PASS_REGISTRY`;
:func:`resolve_pipeline` turns a configuration value (``"default"``, a
comma-separated name list, ``None``) into a :class:`PassPipeline` whose
every rewrite is checked by the :class:`PassVerifier` against the
dataflow facts of :mod:`repro.network.dataflow`.
"""

from __future__ import annotations

from repro.network.passes.base import (
    DEFAULT_PASSES,
    PASS_REGISTRY,
    PassContext,
    PassPipeline,
    PassResult,
    PipelineReport,
    PlanPass,
    register_pass,
    resolve_pipeline,
)
from repro.network.passes.cse import CSEPass
from repro.network.passes.dead import DeadOperandPass
from repro.network.passes.hoist import HoistPass
from repro.network.passes.verify import PassVerifier

__all__ = [
    "PassContext",
    "PlanPass",
    "PassResult",
    "PipelineReport",
    "PassPipeline",
    "PassVerifier",
    "PASS_REGISTRY",
    "DEFAULT_PASSES",
    "register_pass",
    "resolve_pipeline",
    "CSEPass",
    "DeadOperandPass",
    "HoistPass",
]
