"""Common-subexpression elimination over a network plan.

Two steps compute the *same expression* when their canonical index
patterns match and their operand subtrees match structurally
(:func:`repro.network.dataflow.expression_key`): duplicate subtrees —
the "shared subnetwork" of the ROADMAP's serving shape — therefore
match bottom-up, inner steps first.

Plan metadata cannot prove two operands hold the same bytes (plans are
cached by shape/nnz signature and replayed on fresh data), so CSE here
is *speculative with a runtime guard*: the pass marks the later step
``cse_of = <earlier step>`` and the executor reuses the earlier result
only when the inputs' content digests confirm the match — otherwise it
computes the step normally.  Either way the result is bit-identical to
the unoptimized plan; the annotation only removes redundant work when
the duplication is real (same tensor object passed in two operand
slots, or byte-equal data).

The :class:`~repro.network.passes.PassVerifier` checks every
annotation: targets must be earlier, non-reused roots computing an
identical expression key (``FSTC502`` otherwise) with compatible dtypes
(``FSTC503``).
"""

from __future__ import annotations

from dataclasses import replace

from repro.network.dataflow import PlanGraph, expression_key
from repro.network.ir import TensorNetwork
from repro.network.passes.base import PassContext, PlanPass, register_pass
from repro.network.plan import NetworkPlan

__all__ = ["CSEPass"]


@register_pass
class CSEPass(PlanPass):
    """Annotate structurally duplicate steps with ``cse_of``."""

    name = "cse"

    def run(
        self,
        plan: NetworkPlan,
        network: TensorNetwork,
        context: PassContext,
    ) -> NetworkPlan:
        graph = PlanGraph.from_plan(plan, network)
        first_of: dict[tuple, int] = {}
        new_steps = list(plan.steps)
        changed = False
        for op in graph.ops:
            key = expression_key(graph, op.out, context.dtypes)
            prior = first_of.get(key)
            if prior is None:
                first_of[key] = op.index
            elif op.step.cse_of != prior:
                new_steps[op.index] = replace(op.step, cse_of=prior)
                changed = True
        if not changed:
            return (
                plan if self.name in plan.passes
                else replace(plan, passes=plan.passes + (self.name,))
            )
        return replace(
            plan,
            steps=tuple(new_steps),
            passes=plan.passes + (self.name,),
        )
