"""Dead-operand elimination: zero propagation through the plan.

An operand declared empty (``nnz == 0``) makes every product it feeds
identically zero — the whole connected component's contribution is an
empty tensor, and any step whose :class:`NnzIntervals` upper bound is
exactly zero need never run.  The pass annotates such steps ``dead``
and records the *premise* (the empty operand positions) on the plan;
the executor re-checks the premise against the live tensors — a plan
replayed on data that no longer matches the declared nnz simply
computes every step normally, so the shortcut can never change a
result.

The verifier refuses a ``dead`` annotation on any step whose interval
upper bound is positive (``FSTC505``: density-model monotonicity) and a
``zero_operands`` record naming a non-empty operand.
"""

from __future__ import annotations

from dataclasses import replace

from repro.network.dataflow import NnzIntervals, PlanGraph, run_analysis
from repro.network.ir import TensorNetwork
from repro.network.passes.base import PassContext, PlanPass, register_pass
from repro.network.plan import NetworkPlan

__all__ = ["DeadOperandPass"]


@register_pass
class DeadOperandPass(PlanPass):
    """Annotate provably-empty steps ``dead`` with their zero premise."""

    name = "dead"

    def run(
        self,
        plan: NetworkPlan,
        network: TensorNetwork,
        context: PassContext,
    ) -> NetworkPlan:
        zeros = network.empty_operands()
        if not zeros:
            return (
                plan if self.name in plan.passes
                else replace(plan, passes=plan.passes + (self.name,))
            )
        graph = PlanGraph.from_plan(plan, network)
        intervals = run_analysis(graph, NnzIntervals()).at_exit()
        new_steps = list(plan.steps)
        changed = False
        for op in graph.ops:
            _, hi = intervals[op.out]
            if hi == 0.0 and not op.step.dead:
                new_steps[op.index] = replace(new_steps[op.index], dead=True)
                changed = True
        if not changed and plan.zero_operands == zeros:
            return (
                plan if self.name in plan.passes
                else replace(plan, passes=plan.passes + (self.name,))
            )
        return replace(
            plan,
            steps=tuple(new_steps),
            zero_operands=zeros,
            passes=(
                plan.passes if self.name in plan.passes
                else plan.passes + (self.name,)
            ),
        )
