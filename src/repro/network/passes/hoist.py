"""Loop-invariant hoisting of tiled-table construction.

A served or ``--repeat`` workload executes the same plan over the same
operand tensors many times.  Each contract step builds (or re-finds)
linearized forms and tiled hash tables for its two inputs; for inputs
that are *network operands* those artifacts are invariant across
executions — only intermediate results change identity run to run.
The pass annotates each contract step's invariant sides
(``hoist_l``/``hoist_r``); :meth:`repro.network.executor.NetworkExecutor.prepare`
then materializes those linearizations/tables once, pins them in the
runtime's operand cache so LRU churn from intermediates cannot evict
them, and every subsequent execution skips the construction entirely.

An operand declared *volatile* (its content mutates between
executions — the streaming-update shape) must not be hoisted:
annotating it is the ``FSTC504`` unsound rewrite the verifier refuses.
"""

from __future__ import annotations

from dataclasses import replace

from repro.network.dataflow import PlanGraph
from repro.network.ir import TensorNetwork
from repro.network.passes.base import PassContext, PlanPass, register_pass
from repro.network.plan import NetworkPlan

__all__ = ["HoistPass"]


@register_pass
class HoistPass(PlanPass):
    """Annotate loop-invariant table builds on contract steps."""

    name = "hoist"

    def run(
        self,
        plan: NetworkPlan,
        network: TensorNetwork,
        context: PassContext,
    ) -> NetworkPlan:
        graph = PlanGraph.from_plan(plan, network)
        volatile = set(context.volatile)

        def invariant(value_id: int) -> bool:
            value = graph.values[value_id]
            return value.is_input and value.origin[1] not in volatile

        new_steps = list(plan.steps)
        changed = False
        for op in graph.ops:
            if op.step.kind != "contract":
                continue  # outer steps build no tables
            hoist_l = invariant(op.left)
            hoist_r = invariant(op.right)
            if (hoist_l, hoist_r) != (op.step.hoist_l, op.step.hoist_r):
                new_steps[op.index] = replace(
                    new_steps[op.index], hoist_l=hoist_l, hoist_r=hoist_r
                )
                changed = True
        if not changed:
            return (
                plan if self.name in plan.passes
                else replace(plan, passes=plan.passes + (self.name,))
            )
        return replace(
            plan,
            steps=tuple(new_steps),
            passes=(
                plan.passes if self.name in plan.passes
                else plan.passes + (self.name,)
            ),
        )
