"""Dataflow analysis over network plans (the optimizer-pass substrate).

A :class:`~repro.network.plan.NetworkPlan` is a straight-line program:
each step consumes two live operands and defines one intermediate, in
the shrinking-live-list position convention.  Positions are convenient
for execution but hostile to analysis — the same value sits at a
different index before and after every step — so this module first
rebuilds the plan as an SSA-style :class:`PlanGraph`: every network
input and every step result is a :class:`Value` with a stable id, and
every step is an :class:`Op` referencing value ids.

On top of the graph sits a small generic framework
(:class:`Analysis` / :func:`run_analysis`): an analysis declares a
direction and a transfer function and receives per-program-point facts.
Plans are branch-free, so no fixpoint iteration is needed — a single
forward or backward sweep is exact — but the framework keeps the
classic shape so each concrete analysis stays ~20 lines.

Concrete analyses (the facts the optimizer passes and the
:class:`~repro.network.passes.PassVerifier` consume):

* :class:`LiveValues` — backward liveness of value ids, the
  use-after-free oracle for the executor's eager-free discipline;
* :class:`ReachableOperands` — which original operand positions feed
  each value (forward);
* :class:`AvailableExpressions` — structural, rename-invariant
  expression keys to their first defining step (forward; the CSE
  oracle);
* :class:`NnzIntervals` — ``[lo, hi]`` bounds on every value's nonzero
  count under the Section 5.1 density model, with exact zero
  propagation (the dead-step oracle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import PlanError
from repro.network.ir import TensorNetwork
from repro.network.plan import NetworkPlan, PlanStep

__all__ = [
    "Value",
    "Op",
    "PlanGraph",
    "Analysis",
    "DataflowResult",
    "run_analysis",
    "LiveValues",
    "ReachableOperands",
    "AvailableExpressions",
    "NnzIntervals",
    "expression_key",
    "canonical_pattern",
]


@dataclass(frozen=True)
class Value:
    """One SSA value: a network input or a step result."""

    id: int
    sub: str
    shape: tuple[int, ...]
    est_nnz: float
    origin: tuple  # ("input", operand position) | ("step", step index)

    @property
    def is_input(self) -> bool:
        return self.origin[0] == "input"

    @property
    def cells(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out


@dataclass(frozen=True)
class Op:
    """One plan step in value-id form."""

    index: int
    left: int
    right: int
    out: int
    step: PlanStep


class PlanGraph:
    """SSA-style view of a plan: values and ops instead of positions.

    Construction simulates the shrinking live list and checks, step by
    step, that positions are in range and that each step's recorded
    ``sub_l``/``sub_r`` match the values actually at those positions —
    so merely *building* the graph validates the plan's structural
    skeleton (the :class:`~repro.network.passes.PassVerifier` leans on
    this: a rewrite that breaks the skeleton fails here).
    """

    __slots__ = ("values", "ops", "output_value", "n_inputs", "network")

    def __init__(
        self,
        values: Sequence[Value],
        ops: Sequence[Op],
        output_value: int,
        n_inputs: int,
        network: TensorNetwork,
    ):
        self.values = tuple(values)
        self.ops = tuple(ops)
        self.output_value = output_value
        self.n_inputs = n_inputs
        self.network = network

    @classmethod
    def from_plan(cls, plan: NetworkPlan, network: TensorNetwork) -> "PlanGraph":
        if len(plan.input_subs) != network.n_operands:
            raise PlanError(
                f"plan names {len(plan.input_subs)} operands but the "
                f"network has {network.n_operands}"
            )
        values: list[Value] = []
        for k, (meta, reduced) in enumerate(
            zip(network.operands, plan.input_subs)
        ):
            if set(reduced) - set(meta.subscript):
                raise PlanError(
                    f"plan operand {k} subscript {reduced!r} names indices "
                    f"absent from the network operand {meta.subscript!r}"
                )
            shape = tuple(network.extents[ch] for ch in reduced)
            cells = float(math.prod(shape)) if shape else 1.0
            values.append(Value(
                id=k, sub=reduced, shape=shape,
                est_nnz=min(float(meta.nnz), cells), origin=("input", k),
            ))

        live = list(range(network.n_operands))
        ops: list[Op] = []
        for s, step in enumerate(plan.steps):
            if not (0 <= step.i < step.j < len(live)):
                raise PlanError(
                    f"step {s} positions ({step.i}, {step.j}) do not fit "
                    f"the live list (length {len(live)})"
                )
            vl, vr = values[live[step.i]], values[live[step.j]]
            if (vl.sub, vr.sub) != (step.sub_l, step.sub_r):
                raise PlanError(
                    f"step {s} records inputs "
                    f"{step.sub_l!r},{step.sub_r!r} but the live values "
                    f"are {vl.sub!r},{vr.sub!r}"
                )
            expected_out = _derive_out_sub(step.sub_l, step.sub_r, step.kind)
            if step.sub_out != expected_out:
                raise PlanError(
                    f"step {s} output {step.sub_out!r} is inconsistent "
                    f"with its inputs (expected {expected_out!r})"
                )
            out_shape = tuple(network.extents[ch] for ch in step.sub_out)
            out = Value(
                id=len(values), sub=step.sub_out, shape=out_shape,
                est_nnz=float(step.est_nnz), origin=("step", s),
            )
            values.append(out)
            ops.append(Op(
                index=s, left=vl.id, right=vr.id, out=out.id, step=step,
            ))
            del live[step.j], live[step.i]
            live.append(out.id)

        if len(live) != 1:
            raise PlanError(
                f"plan leaves {len(live)} live operands; expected exactly 1"
            )
        final = values[live[0]]
        if final.sub != plan.final_sub:
            raise PlanError(
                f"plan final_sub {plan.final_sub!r} does not match the "
                f"computed result {final.sub!r}"
            )
        if set(final.sub) != set(plan.output):
            raise PlanError(
                f"plan result carries indices {final.sub!r} but the "
                f"output wants {plan.output!r}"
            )
        return cls(values, ops, final.id, network.n_operands, network)

    def value_of_step(self, step_index: int) -> Value:
        return self.values[self.n_inputs + step_index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanGraph(values={len(self.values)}, ops={len(self.ops)}, "
            f"out=v{self.output_value})"
        )


def _derive_out_sub(sub_l: str, sub_r: str, kind: str) -> str:
    """The output subscript a step must produce from its inputs."""
    if kind == "outer":
        return sub_l + sub_r
    shared = {ch for ch in sub_l if ch in sub_r}
    return (
        "".join(ch for ch in sub_l if ch not in shared)
        + "".join(ch for ch in sub_r if ch not in shared)
    )


# -- the generic framework ----------------------------------------------


class Analysis:
    """One dataflow analysis: a direction plus a transfer function.

    ``direction`` is ``"forward"`` (facts flow from inputs to the
    output) or ``"backward"``.  ``initial(graph)`` is the boundary fact
    — before the first op (forward) or after the last (backward).
    ``transfer(graph, op, fact)`` maps the fact across one op.  Facts
    must be immutable (transfer returns a new fact).
    """

    direction = "forward"
    name = "analysis"

    def initial(self, graph: PlanGraph):
        raise NotImplementedError

    def transfer(self, graph: PlanGraph, op: Op, fact):
        raise NotImplementedError


@dataclass
class DataflowResult:
    """Per-program-point facts: ``before[k]``/``after[k]`` bracket op k."""

    analysis: str
    direction: str
    before: list
    after: list

    def at_entry(self):
        """The boundary fact at the plan's entry (forward direction)."""
        return self.before[0] if self.before else None

    def at_exit(self):
        """The fact after the last op (forward) / before the first
        (backward), i.e. at the plan's result."""
        return self.after[-1] if self.after else None


def run_analysis(graph: PlanGraph, analysis: Analysis) -> DataflowResult:
    """Run one analysis over a plan graph.

    Straight-line programs need no fixpoint: a single sweep in the
    analysis's direction computes the exact solution.
    """
    n = len(graph.ops)
    before: list = [None] * n
    after: list = [None] * n
    fact = analysis.initial(graph)
    if analysis.direction == "forward":
        for op in graph.ops:
            before[op.index] = fact
            fact = analysis.transfer(graph, op, fact)
            after[op.index] = fact
    elif analysis.direction == "backward":
        for op in reversed(graph.ops):
            after[op.index] = fact
            fact = analysis.transfer(graph, op, fact)
            before[op.index] = fact
    else:
        raise PlanError(
            f"analysis direction must be forward|backward, "
            f"got {analysis.direction!r}"
        )
    return DataflowResult(
        analysis=analysis.name, direction=analysis.direction,
        before=before, after=after,
    )


# -- concrete analyses ---------------------------------------------------


class LiveValues(Analysis):
    """Backward liveness: the set of value ids still needed at a point.

    ``after[k]`` is what must be alive once step k has run.  The
    executor frees a step's inputs eagerly; a pass annotation that
    requires a value beyond its last structural use (a ``cse_of``
    target's result) must therefore be modeled as an extra retention —
    the verifier compares annotations against these baseline facts.
    """

    direction = "backward"
    name = "live-values"

    def initial(self, graph: PlanGraph) -> frozenset:
        return frozenset({graph.output_value})

    def transfer(self, graph: PlanGraph, op: Op, fact: frozenset) -> frozenset:
        return (fact - {op.out}) | {op.left, op.right}


class ReachableOperands(Analysis):
    """Forward reachability: value id -> original operand positions.

    The fact is a mapping for *every value defined so far*; the exit
    fact therefore answers "which inputs feed the output" (all of them,
    for any well-formed plan — the verifier checks exactly that).
    """

    direction = "forward"
    name = "reachable-operands"

    def initial(self, graph: PlanGraph) -> dict:
        return {
            v.id: frozenset({v.origin[1]})
            for v in graph.values[: graph.n_inputs]
        }

    def transfer(self, graph: PlanGraph, op: Op, fact: dict) -> dict:
        out = dict(fact)
        out[op.out] = fact[op.left] | fact[op.right]
        return out


def canonical_pattern(step: PlanStep) -> tuple:
    """The step's index structure with letters renamed positionally.

    Two steps with equal patterns perform the same array computation on
    their inputs regardless of what the indices are called: the rename
    maps each distinct letter to its first-occurrence rank across
    ``sub_l + sub_r + sub_out``, so ``ab,bc->ac`` and ``de,ef->df``
    collapse to the same pattern while ``ab,cb->ac`` does not.
    """
    rename: dict[str, int] = {}
    for ch in step.sub_l + step.sub_r + step.sub_out:
        if ch not in rename:
            rename[ch] = len(rename)
    canon = lambda sub: tuple(rename[ch] for ch in sub)  # noqa: E731
    return (
        step.kind,
        canon(step.sub_l),
        canon(step.sub_r),
        canon(step.sub_out),
        tuple(step.pairs),
    )


def expression_key(
    graph: PlanGraph,
    value_id: int,
    dtypes: Sequence[str] | None = None,
) -> tuple:
    """Structural identity of the expression computing a value.

    Inputs are keyed by their declared metadata (shape, nnz, dtype when
    known) — *not* by position, so two metadata-identical operands are
    CSE candidates whose actual equality the executor confirms with
    content digests at run time.  Step values key recursively on the
    canonical index pattern plus both input keys, which makes duplicate
    subtrees match bottom-up.
    """
    value = graph.values[value_id]
    if value.is_input:
        pos = value.origin[1]
        dtype = dtypes[pos] if dtypes is not None else ""
        meta = graph.network.operands[pos]
        kept = tuple(
            m for m, ch in enumerate(meta.subscript) if ch in value.sub
        )
        return ("in", meta.shape, meta.nnz, kept, dtype)
    op = graph.ops[value.origin[1]]
    return (
        "step",
        canonical_pattern(op.step),
        expression_key(graph, op.left, dtypes),
        expression_key(graph, op.right, dtypes),
    )


class AvailableExpressions(Analysis):
    """Forward available expressions: key -> first defining step index.

    Nothing in a plan mutates a value, so an expression once computed
    stays *computed*; what expires is the executor's retention of its
    result (eager frees).  The verifier combines these facts with
    :class:`LiveValues` to decide whether a ``cse_of`` annotation is
    honorable.
    """

    direction = "forward"
    name = "available-expressions"

    def __init__(self, dtypes: Sequence[str] | None = None):
        self.dtypes = tuple(dtypes) if dtypes is not None else None

    def initial(self, graph: PlanGraph) -> dict:
        return {}

    def transfer(self, graph: PlanGraph, op: Op, fact: dict) -> dict:
        key = expression_key(graph, op.out, self.dtypes)
        if key in fact:
            return fact
        out = dict(fact)
        out[key] = op.index
        return out


class NnzIntervals(Analysis):
    """Forward ``[lo, hi]`` nonzero-count intervals per value.

    The declared nnz of a live input is exact, so inputs start at
    ``[nnz, nnz]``.  Steps widen: a contraction can cancel or miss, so
    ``lo`` drops to 0, while ``hi`` is the product bound capped by the
    output's cell count.  The one exact propagation is zero: an empty
    input makes every downstream product empty, which is what the
    dead-step pass acts on.  Monotonicity (``0 <= lo <= hi <= cells``)
    is a verifier invariant.
    """

    direction = "forward"
    name = "nnz-intervals"

    def initial(self, graph: PlanGraph) -> dict:
        return {
            v.id: (float(v.est_nnz), float(v.est_nnz))
            for v in graph.values[: graph.n_inputs]
        }

    def transfer(self, graph: PlanGraph, op: Op, fact: dict) -> dict:
        lo_l, hi_l = fact[op.left]
        lo_r, hi_r = fact[op.right]
        cells = float(graph.values[op.out].cells)
        hi = min(hi_l * hi_r, cells)
        if op.step.kind == "outer":
            # Distinct coordinate pairs: the product is exact on both
            # ends (duplicates cannot arise from canonical inputs).
            lo = min(lo_l * lo_r, cells)
        else:
            lo = 0.0
        out = dict(fact)
        out[op.out] = (lo, hi)
        return out
