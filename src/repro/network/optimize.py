"""Contraction-path optimizers over the network IR.

Four strategies, all emitting the same ``numpy.einsum_path``-style
position list and all consuming only declared metadata (shapes + nnz):

``left``
    Left-to-right binarization — the reproducible baseline every
    comparison is measured against.
``greedy``
    The legacy nnz heuristic: score candidate pairs with the paper's
    Section 5.1 output-density estimate (``density * L * R + inputs``)
    and always prefer connected pairs over outer products.
``sparsity``
    Sparsity-aware greedy: candidate pairs are scored by *modeled
    seconds* — the Section 5.1 density estimate decides Algorithm 7's
    accumulator/tile for the step, and the Section 5.3 tiled-CO access
    model (:class:`~repro.machine.cost_model.AccessCostModel`) prices
    the resulting queries, data volume, and accumulator updates on the
    target machine.
``dp``
    Optimal dynamic-programming search over each connected component
    (Kanakagiri & Solomonik show path choice dominates cost for sparse
    networks): minimizes the same modeled seconds the sparsity-aware
    mode scores with, exactly, for components of up to
    :data:`DP_OPERAND_LIMIT` operands.

Disconnected networks are planned per component; component results are
combined with explicit outer products, cheapest (smallest predicted
result) first.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.core.model import choose_accumulator, estimate_output_density
from repro.errors import PlanError
from repro.machine.cost_model import DEFAULT_WEIGHTS, AccessCostModel, ProblemShape
from repro.machine.specs import MachineSpec
from repro.network.ir import TensorNetwork
from repro.network.plan import NetworkPlan, NetworkSignature, PlanStep

__all__ = [
    "OPTIMIZERS",
    "DP_OPERAND_LIMIT",
    "AUTO_DP_LIMIT",
    "optimize_path",
    "resolve_optimizer",
    "build_plan",
    "plan_network",
]

#: Hard ceiling on one connected component's size for the DP search
#: (subset enumeration is exponential; 3^10 splits is the practical cap).
DP_OPERAND_LIMIT = 10

#: ``auto`` uses the exact DP search up to this many operands per
#: component, falling back to the sparsity-aware greedy beyond it.
AUTO_DP_LIMIT = 6


@dataclass(frozen=True)
class _Node:
    """A live (possibly intermediate) operand during path search."""

    sub: str
    shape: tuple[int, ...]
    nnz: float


@dataclass(frozen=True)
class _StepEstimate:
    """Everything one candidate pairwise step is predicted to do."""

    node: _Node            # the resulting intermediate
    kind: str              # "contract" | "outer"
    pairs: tuple[tuple[int, int], ...]
    score: float           # legacy greedy score (Section 5.1 oracle)
    seconds: float         # modeled seconds (Section 5.3 access model)
    accumulator: str
    tile: int


def _estimate_step(a: _Node, b: _Node, machine: MachineSpec) -> _StepEstimate:
    """Predict the result and cost of contracting two live operands."""
    shared = [ch for ch in a.sub if ch in b.sub]
    ext_sub = "".join(ch for ch in a.sub if ch not in shared) + "".join(
        ch for ch in b.sub if ch not in shared
    )
    extents = {ch: e for ch, e in zip(a.sub, a.shape)}
    extents.update({ch: e for ch, e in zip(b.sub, b.shape)})
    out_shape = tuple(extents[ch] for ch in ext_sub)

    if not shared:
        # Outer product: every nonzero pair materializes one output
        # coordinate (duplicates merge, so this is an upper bound).
        est_nnz = min(a.nnz * b.nnz, float(math.prod(out_shape)) or 1.0)
        seconds = DEFAULT_WEIGHTS.seconds(
            queries=0.0,
            data_volume=a.nnz + b.nnz + a.nnz * b.nnz,
            updates=0.0,
            workspace_fits=True,
        )
        return _StepEstimate(
            node=_Node(ext_sub, out_shape, est_nnz),
            kind="outer",
            pairs=(),
            score=a.nnz * b.nnz,
            seconds=seconds,
            accumulator="",
            tile=0,
        )

    pairs = tuple((a.sub.index(ch), b.sub.index(ch)) for ch in shared)
    L = max(1, math.prod(extents[ch] for ch in a.sub if ch not in shared))
    R = max(1, math.prod(extents[ch] for ch in b.sub if ch not in shared))
    C = max(1, math.prod(extents[ch] for ch in shared))
    nnz_a = max(1, int(a.nnz))
    nnz_b = max(1, int(b.nnz))
    density = estimate_output_density(L, R, C, nnz_a, nnz_b)
    est_nnz = min(density * L * R, a.nnz * b.nnz, float(L) * R)

    # Algorithm 7's decision for this step's linearized problem, then
    # the tiled-CO access model priced on the target machine.
    choice = choose_accumulator(L, R, C, nnz_a, nnz_b, machine)
    tile_l = max(1, min(choice.tile_size, L))
    tile_r = max(1, min(choice.tile_size, R))
    model = AccessCostModel(ProblemShape(L, R, C, nnz_a, nnz_b), machine)
    cost = model.tiled_co(tile_l, tile_r)
    # Expected multiply/accumulate events under the uniform model: each
    # of the C contraction slices pairs nnz_a/C with nnz_b/C nonzeros.
    updates = (a.nnz * b.nnz) / C
    seconds = model.estimated_seconds(cost, updates)

    return _StepEstimate(
        node=_Node(ext_sub, out_shape, est_nnz),
        kind="contract",
        pairs=pairs,
        score=density * L * R + a.nnz + b.nnz,
        seconds=seconds,
        accumulator=choice.accumulator,
        tile=choice.tile_size,
    )


def _initial_nodes(network: TensorNetwork) -> list[_Node]:
    """Per-operand nodes after marginalizing dead single indices."""
    nodes = []
    for meta, reduced in zip(network.operands, network.reduced_inputs()):
        shape = tuple(
            e for ch, e in zip(meta.subscript, meta.shape) if ch in reduced
        )
        cells = float(math.prod(shape)) if shape else 1.0
        nodes.append(_Node(reduced, shape, min(float(meta.nnz), cells)))
    return nodes


# -- the path searches --------------------------------------------------


def _search_left(nodes: list[_Node], machine: MachineSpec) -> list[tuple[int, int]]:
    live = list(nodes)
    path = []
    while len(live) > 1:
        est = _estimate_step(live[0], live[1], machine)
        path.append((0, 1))
        del live[1], live[0]
        live.append(est.node)
    return path


def _search_greedy(
    nodes: list[_Node], machine: MachineSpec, *, model_cost: bool
) -> list[tuple[int, int]]:
    """Best-pair-first search; ``model_cost`` switches the oracle from
    the legacy Section 5.1 score to modeled seconds (sparsity-aware)."""
    live = list(nodes)
    path = []
    while len(live) > 1:
        best = None
        for i in range(len(live)):
            for j in range(i + 1, len(live)):
                est = _estimate_step(live[i], live[j], machine)
                cost = est.seconds if model_cost else est.score
                key = (est.kind == "outer", cost)
                if best is None or key < best[0]:
                    best = (key, i, j, est)
        _, i, j, est = best
        path.append((i, j))
        del live[j], live[i]
        live.append(est.node)
    return path


def _search_dp(
    nodes: list[_Node],
    machine: MachineSpec,
    components: list[tuple[int, ...]],
) -> list[tuple[int, int]]:
    """Exact subset DP per connected component, minimizing modeled
    seconds; component results combine smallest-first via outer
    products.  Trees are flattened back to shrinking-list positions."""
    for comp in components:
        if len(comp) > DP_OPERAND_LIMIT:
            raise PlanError(
                f"dp path search supports components of at most "
                f"{DP_OPERAND_LIMIT} operands, got {len(comp)}; use the "
                "greedy or sparsity optimizer"
            )

    trees = []  # one (cost, node, tree) per component; tree: int | (t1, t2)
    for comp in components:
        if len(comp) == 1:
            trees.append((0.0, nodes[comp[0]], comp[0]))
            continue
        best: dict[frozenset, tuple[float, _Node, object]] = {
            frozenset([k]): (0.0, nodes[k], k) for k in comp
        }
        for size in range(2, len(comp) + 1):
            for subset in itertools.combinations(comp, size):
                sset = frozenset(subset)
                anchor = subset[0]
                rest = subset[1:]
                winner = None
                # Every bipartition, anchored so each split is seen once.
                for r in range(len(rest) + 1):
                    for half in itertools.combinations(rest, r):
                        s1 = frozenset((anchor, *half))
                        s2 = sset - s1
                        if not s2:
                            continue
                        c1, n1, t1 = best[s1]
                        c2, n2, t2 = best[s2]
                        est = _estimate_step(n1, n2, machine)
                        total = c1 + c2 + est.seconds
                        if winner is None or total < winner[0]:
                            winner = (total, est.node, (t1, t2))
                best[sset] = winner
        trees.append(best[frozenset(comp)])

    # Fold component results together, smallest predicted result first
    # (stable sort keeps the request order among equals).
    trees.sort(key=lambda t: t[1].nnz)
    cost, node, tree = trees[0]
    for c2, n2, t2 in trees[1:]:
        est = _estimate_step(node, n2, machine)
        node, tree = est.node, (tree, t2)
    return _tree_to_path(tree, len(nodes))


def _tree_to_path(tree, n_operands: int) -> list[tuple[int, int]]:
    """Flatten a binary contraction tree over original operand ids into
    shrinking-live-list ``(i, j)`` positions."""
    live: list[frozenset] = [frozenset([k]) for k in range(n_operands)]
    path: list[tuple[int, int]] = []

    def walk(t) -> frozenset:
        if isinstance(t, int):
            return frozenset([t])
        left = walk(t[0])
        right = walk(t[1])
        i, j = live.index(left), live.index(right)
        if i > j:
            i, j = j, i
        path.append((i, j))
        merged = live[i] | live[j]
        del live[j], live[i]
        live.append(merged)
        return merged

    walk(tree)
    return path


def resolve_optimizer(name: str, network: TensorNetwork) -> str:
    """Resolve ``auto`` to a concrete strategy for this network."""
    if name not in OPTIMIZERS and name != "auto":
        raise PlanError(
            f"optimizer must be one of auto|{'|'.join(OPTIMIZERS)}, "
            f"got {name!r}"
        )
    if name != "auto":
        return name
    largest = max(
        (len(c) for c in network.connected_components()), default=1
    )
    return "dp" if largest <= AUTO_DP_LIMIT else "sparsity"


def optimize_path(
    network: TensorNetwork,
    machine: MachineSpec,
    optimizer: str = "auto",
) -> list[tuple[int, int]]:
    """Run one path search; returns ``numpy.einsum_path``-style pairs."""
    concrete = resolve_optimizer(optimizer, network)
    nodes = _initial_nodes(network)
    if len(nodes) <= 1:
        return []
    if concrete == "left":
        return _search_left(nodes, machine)
    if concrete == "greedy":
        return _search_greedy(nodes, machine, model_cost=False)
    if concrete == "sparsity":
        return _search_greedy(nodes, machine, model_cost=True)
    return _search_dp(nodes, machine, network.connected_components())


#: Concrete strategy registry (``auto`` resolves through
#: :func:`resolve_optimizer`).
OPTIMIZERS = ("left", "greedy", "dp", "sparsity")


def build_plan(
    network: TensorNetwork,
    machine: MachineSpec,
    optimizer: str = "auto",
    *,
    path: list[tuple[int, int]] | None = None,
) -> NetworkPlan:
    """Search (unless ``path`` is given) and freeze a :class:`NetworkPlan`.

    The plan's step metadata — subscripts, predicted nnz, modeled cost,
    accumulator/tile — is simulated with exactly the estimator the
    searches score with, so the executor can follow it literally.
    """
    concrete = resolve_optimizer(optimizer, network)
    if path is None:
        path = optimize_path(network, machine, concrete)
    nodes = _initial_nodes(network)
    n = len(nodes)
    if len(path) != max(0, n - 1):
        raise PlanError(
            f"path has {len(path)} steps; a {n}-operand network needs {n - 1}"
        )

    live = list(nodes)
    live_is_intermediate = [False] * n
    steps = []
    total_cost = 0.0
    peak = 0.0
    for i, j in path:
        if not (0 <= i < j < len(live)):
            raise PlanError(f"path step ({i}, {j}) is out of range")
        a, b = live[i], live[j]
        est = _estimate_step(a, b, machine)
        steps.append(PlanStep(
            i=i, j=j,
            sub_l=a.sub, sub_r=b.sub, sub_out=est.node.sub,
            kind=est.kind, pairs=est.pairs,
            est_nnz=est.node.nnz, est_cost=est.seconds,
            accumulator=est.accumulator, tile=est.tile,
        ))
        total_cost += est.seconds
        del live[j], live_is_intermediate[j]
        del live[i], live_is_intermediate[i]
        live.append(est.node)
        live_is_intermediate.append(True)
        alive = sum(
            node.nnz for node, inter in zip(live, live_is_intermediate)
            if inter
        )
        peak = max(peak, alive)

    signature = NetworkSignature.for_network(network, machine, concrete)
    return NetworkPlan(
        signature_key=signature.key,
        subscripts=network.subscripts,
        output=network.output,
        optimizer=concrete,
        machine_name=machine.name,
        input_subs=tuple(network.reduced_inputs()),
        steps=tuple(steps),
        est_total_cost=total_cost,
        est_peak_nnz=peak,
        final_sub=live[0].sub if live else "",
    )


def plan_network(
    subscripts: str,
    operands,
    *,
    machine: MachineSpec,
    optimizer: str = "auto",
    nnz=None,
    passes=None,
) -> NetworkPlan:
    """Parse + optimize in one call (operands may be tensors, metadata,
    or bare shapes combined with ``nnz``).

    ``passes`` optionally runs the plan through a verified optimizer
    pass pipeline (``"default"``, a comma-separated name list, or a
    :class:`~repro.network.passes.PassPipeline`; see
    :mod:`repro.network.passes`) before returning it — the standalone
    analog of what :class:`~repro.network.NetworkExecutor` does on
    every plan-cache miss.
    """
    network = TensorNetwork.parse(subscripts, operands, nnz=nnz)
    plan = build_plan(network, machine, optimizer)
    if passes is not None:
        from repro.network.passes import resolve_pipeline

        pipeline = resolve_pipeline(passes)
        if pipeline is not None:
            plan = pipeline.run(plan, network)
    return plan
