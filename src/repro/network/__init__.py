"""Sparsity-aware tensor-network contraction planning and execution.

The subsystem splits multi-operand einsum into four layers:

* :mod:`repro.network.ir` — hypergraph IR (:class:`TensorNetwork`,
  :class:`OperandMeta`) parsed from subscripts plus shape/nnz metadata;
* :mod:`repro.network.optimize` — path optimizers (``left``, ``greedy``,
  ``dp``, ``sparsity``, ``auto``) producing a :class:`NetworkPlan`;
* :mod:`repro.network.plan` — the serializable, explainable plan and its
  network-level :class:`NetworkSignature`;
* :mod:`repro.network.executor` — plan-cached execution through the
  adaptive :class:`~repro.runtime.ContractionRuntime`.
"""

from repro.network.executor import (
    NetworkExecutor,
    NetworkReport,
    contract_network,
    default_executor,
    outer_product,
    sum_out_modes,
)
from repro.network.ir import (
    OperandMeta,
    TensorNetwork,
    parse_subscripts,
    subscript_counts,
)
from repro.network.optimize import (
    AUTO_DP_LIMIT,
    DP_OPERAND_LIMIT,
    OPTIMIZERS,
    build_plan,
    optimize_path,
    plan_network,
    resolve_optimizer,
)
from repro.network.plan import NetworkPlan, NetworkSignature, PlanStep

__all__ = [
    "AUTO_DP_LIMIT",
    "DP_OPERAND_LIMIT",
    "NetworkExecutor",
    "NetworkPlan",
    "NetworkReport",
    "NetworkSignature",
    "OPTIMIZERS",
    "OperandMeta",
    "PlanStep",
    "TensorNetwork",
    "build_plan",
    "contract_network",
    "default_executor",
    "optimize_path",
    "outer_product",
    "parse_subscripts",
    "plan_network",
    "resolve_optimizer",
    "subscript_counts",
    "sum_out_modes",
]
