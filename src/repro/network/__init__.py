"""Sparsity-aware tensor-network contraction planning and execution.

The subsystem splits multi-operand einsum into four layers:

* :mod:`repro.network.ir` — hypergraph IR (:class:`TensorNetwork`,
  :class:`OperandMeta`) parsed from subscripts plus shape/nnz metadata;
* :mod:`repro.network.optimize` — path optimizers (``left``, ``greedy``,
  ``dp``, ``sparsity``, ``auto``) producing a :class:`NetworkPlan`;
* :mod:`repro.network.plan` — the serializable, explainable plan and its
  network-level :class:`NetworkSignature`;
* :mod:`repro.network.executor` — plan-cached execution through the
  adaptive :class:`~repro.runtime.ContractionRuntime`;
* :mod:`repro.network.dataflow` — SSA-style :class:`PlanGraph` plus the
  forward/backward analysis framework (liveness, reachability,
  available expressions, nnz intervals);
* :mod:`repro.network.passes` — the verified optimizer pass pipeline
  (CSE, dead-operand elimination, table hoisting) rewriting plans via
  annotations only, every rewrite checked by the :class:`PassVerifier`.
"""

from repro.network.dataflow import (
    AvailableExpressions,
    LiveValues,
    NnzIntervals,
    PlanGraph,
    ReachableOperands,
    expression_key,
    run_analysis,
)
from repro.network.executor import (
    NetworkExecutor,
    NetworkReport,
    PreparedNetwork,
    StepResultCache,
    contract_network,
    default_executor,
    outer_product,
    sum_out_modes,
)
from repro.network.passes import (
    DEFAULT_PASSES,
    PASS_REGISTRY,
    PassContext,
    PassPipeline,
    PassVerifier,
    resolve_pipeline,
)
from repro.network.ir import (
    OperandMeta,
    TensorNetwork,
    parse_subscripts,
    subscript_counts,
)
from repro.network.optimize import (
    AUTO_DP_LIMIT,
    DP_OPERAND_LIMIT,
    OPTIMIZERS,
    build_plan,
    optimize_path,
    plan_network,
    resolve_optimizer,
)
from repro.network.plan import NetworkPlan, NetworkSignature, PlanStep

__all__ = [
    "AUTO_DP_LIMIT",
    "AvailableExpressions",
    "DEFAULT_PASSES",
    "DP_OPERAND_LIMIT",
    "LiveValues",
    "NetworkExecutor",
    "NetworkPlan",
    "NetworkReport",
    "NetworkSignature",
    "NnzIntervals",
    "OPTIMIZERS",
    "OperandMeta",
    "PASS_REGISTRY",
    "PassContext",
    "PassPipeline",
    "PassVerifier",
    "PlanGraph",
    "PlanStep",
    "PreparedNetwork",
    "ReachableOperands",
    "StepResultCache",
    "TensorNetwork",
    "build_plan",
    "contract_network",
    "default_executor",
    "expression_key",
    "optimize_path",
    "outer_product",
    "parse_subscripts",
    "plan_network",
    "resolve_pipeline",
    "resolve_optimizer",
    "run_analysis",
    "subscript_counts",
    "sum_out_modes",
]
