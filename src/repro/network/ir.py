"""Tensor-network intermediate representation (hypergraph form).

A multi-operand einsum request is a *hypergraph*: operands are nodes
and each index is a hyperedge connecting the operands it appears in
(plus, possibly, the output).  Everything the planner needs — extents,
declared nonzero counts, connectivity, which indices are contracted
versus kept versus summed out — lives here, decoupled from any concrete
:class:`~repro.tensors.coo.COOTensor` so that plans can be built from
declared metadata alone (the :func:`repro.core.expression` compile-ahead
path and the ``repro check``/``repro network --explain`` static paths).

Subscript semantics (the tensor-network subset of einsum):

* every index appears in exactly one or two operands;
* an index in two operands and absent from the output is contracted;
* an index in one operand and absent from the output is summed out;
* an index in the output appears in exactly one operand (no
  element-wise/Hadamard sharing, no traces, no broadcasting).

Disconnected networks are legal: components are planned independently
and combined with explicit outer products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PlanError, ShapeError

__all__ = [
    "OperandMeta",
    "TensorNetwork",
    "parse_subscripts",
    "subscript_counts",
]


def parse_subscripts(subscripts: str, n_operands: int) -> tuple[list[str], str]:
    """Split and validate an einsum subscript string.

    Returns ``(input_subscripts, output_subscript)``.  The output part
    is mandatory (no implicit mode): sparse outputs need an explicit
    mode order.
    """
    if "->" not in subscripts:
        raise PlanError(
            "explicit output subscripts are required, e.g. 'ij,jk->ik'"
        )
    lhs, out = subscripts.replace(" ", "").split("->")
    inputs = lhs.split(",")
    if len(inputs) != n_operands:
        raise PlanError(
            f"subscripts name {len(inputs)} operands but {n_operands} were given"
        )
    for sub in inputs:
        if not sub.isalpha():
            raise PlanError(f"subscripts must be letters, got {sub!r}")
        if len(set(sub)) != len(sub):
            raise PlanError(f"repeated index within one operand (trace) "
                            f"is unsupported: {sub!r}")
    if not (out.isalpha() or out == ""):
        raise PlanError(f"output subscripts must be letters, got {out!r}")
    if len(set(out)) != len(out):
        raise PlanError(f"repeated output index: {out!r}")

    counts = subscript_counts(inputs)
    for ch, n in counts.items():
        if n > 2:
            raise PlanError(
                f"index {ch!r} appears in {n} operands; tensor-network "
                "contraction allows at most two"
            )
        if n == 2 and ch in out:
            raise PlanError(
                f"index {ch!r} is shared by two operands AND kept in the "
                "output (Hadamard semantics) — unsupported"
            )
    for ch in out:
        if ch not in counts:
            raise PlanError(f"output index {ch!r} appears in no operand")
    return inputs, out


def subscript_counts(inputs: Sequence[str]) -> dict[str, int]:
    """How many operands each index appears in."""
    counts: dict[str, int] = {}
    for sub in inputs:
        for ch in sub:
            counts[ch] = counts.get(ch, 0) + 1
    return counts


@dataclass(frozen=True)
class OperandMeta:
    """Declared structural metadata of one network operand.

    This is the first-class replacement for the placeholder-tensor hack
    the compile-ahead path used to rely on: a subscript, a shape and a
    declared (expected) nonzero count are everything planning needs.
    """

    subscript: str
    shape: tuple[int, ...]
    nnz: int

    def __post_init__(self):
        if len(self.subscript) != len(self.shape):
            raise ShapeError(
                f"subscript {self.subscript!r} names {len(self.subscript)} "
                f"modes but shape {self.shape} has {len(self.shape)}"
            )
        if any(s < 1 for s in self.shape):
            raise ShapeError(
                f"mode extents must be >= 1, got shape {self.shape}"
            )
        if self.nnz < 0:
            raise ShapeError(f"declared nnz must be >= 0, got {self.nnz}")
        if self.nnz > self.cells:
            raise ShapeError(
                f"declared nnz={self.nnz} exceeds the {self.cells} cells "
                f"of shape {self.shape}"
            )

    @property
    def cells(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    @classmethod
    def from_tensor(cls, subscript: str, tensor) -> "OperandMeta":
        """Metadata of a live tensor (``tensor`` needs shape and nnz)."""
        return cls(
            subscript=subscript,
            shape=tuple(int(s) for s in tensor.shape),
            nnz=int(tensor.nnz),
        )

    @classmethod
    def declared(
        cls, subscript: str, shape: Sequence[int], nnz: int | None = None
    ) -> "OperandMeta":
        """Metadata from declared values; ``nnz`` defaults to 1% density."""
        shape_t = tuple(int(s) for s in shape)
        cells = 1
        for s in shape_t:
            cells *= s
        if nnz is None:
            nnz = max(1, int(0.01 * cells))
        return cls(subscript=subscript, shape=shape_t, nnz=int(nnz))


class TensorNetwork:
    """Validated hypergraph of one multi-operand contraction request.

    Attributes
    ----------
    operands:
        One :class:`OperandMeta` per input, in request order.
    output:
        The output subscript string.
    extents:
        Index letter -> extent (validated consistent across operands).
    """

    __slots__ = ("operands", "output", "extents", "_counts")

    def __init__(self, operands: Sequence[OperandMeta], output: str):
        self.operands = tuple(operands)
        self.output = output
        counts = subscript_counts([m.subscript for m in self.operands])
        extents: dict[str, int] = {}
        for k, meta in enumerate(self.operands):
            for m, ch in enumerate(meta.subscript):
                extent = meta.shape[m]
                if ch in extents and extents[ch] != extent:
                    raise ShapeError(
                        f"index {ch!r} has conflicting extents "
                        f"{extents[ch]} and {extent} (operand {k})"
                    )
                extents[ch] = extent
        self.extents = extents
        self._counts = counts

    @classmethod
    def parse(
        cls,
        subscripts: str,
        operands: Sequence,
        *,
        nnz: Sequence[int] | None = None,
    ) -> "TensorNetwork":
        """Build a network from subscripts plus operands or shapes.

        ``operands`` entries may be live tensors (anything with ``shape``
        and ``nnz``), :class:`OperandMeta` instances (their subscript is
        overwritten by the parsed one), or bare shape tuples combined
        with the optional ``nnz`` sequence.
        """
        inputs, out = parse_subscripts(subscripts, len(operands))
        if nnz is not None and len(nnz) != len(operands):
            raise PlanError("need one nnz estimate per operand")
        metas = []
        for k, (sub, op) in enumerate(zip(inputs, operands)):
            declared = None if nnz is None else int(nnz[k])
            if isinstance(op, OperandMeta):
                metas.append(OperandMeta(sub, op.shape, op.nnz))
            elif hasattr(op, "nnz") and hasattr(op, "shape"):
                metas.append(OperandMeta.from_tensor(sub, op))
            else:
                metas.append(OperandMeta.declared(sub, op, declared))
        return cls(metas, out)

    # -- structure queries ----------------------------------------------

    @property
    def n_operands(self) -> int:
        return len(self.operands)

    @property
    def inputs(self) -> list[str]:
        return [m.subscript for m in self.operands]

    def empty_operands(self) -> tuple[int, ...]:
        """Positions of operands declared empty (``nnz == 0``).

        The dead-operand pass records these as the zero premise of its
        annotations, and the pass verifier re-derives them when checking
        a plan's ``zero_operands`` record.
        """
        return tuple(
            k for k, meta in enumerate(self.operands) if meta.nnz == 0
        )

    @property
    def subscripts(self) -> str:
        """The canonical einsum string of this network."""
        return ",".join(self.inputs) + "->" + self.output

    def count(self, index: str) -> int:
        """How many operands the index appears in."""
        return self._counts.get(index, 0)

    @property
    def contracted_indices(self) -> set[str]:
        """Indices shared by two operands (absent from the output)."""
        return {ch for ch, n in self._counts.items() if n == 2}

    @property
    def kept_indices(self) -> set[str]:
        """Indices surviving into the output."""
        return set(self.output)

    @property
    def summed_indices(self) -> set[str]:
        """Single-operand indices absent from the output (marginalized)."""
        return {
            ch for ch, n in self._counts.items()
            if n == 1 and ch not in self.output
        }

    def index_operands(self, index: str) -> tuple[int, ...]:
        """Positions of the operands carrying the index (the hyperedge)."""
        return tuple(
            k for k, m in enumerate(self.operands) if index in m.subscript
        )

    def reduced_inputs(self) -> list[str]:
        """Per-operand subscripts after summing out dead single indices.

        Planning and execution both marginalize single-occurrence
        indices absent from the output *before* any pairwise step (it
        only ever shrinks the operand); this is the shared definition
        of that normalization.
        """
        return [
            "".join(ch for ch in m.subscript if ch not in self.summed_indices)
            for m in self.operands
        ]

    def connected_components(self) -> list[tuple[int, ...]]:
        """Operand groups connected through shared indices, sorted by
        their smallest operand position."""
        n = self.n_operands
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for ch, cnt in self._counts.items():
            if cnt == 2:
                a, b = self.index_operands(ch)
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[rb] = ra
        groups: dict[int, list[int]] = {}
        for k in range(n):
            groups.setdefault(find(k), []).append(k)
        return sorted(tuple(v) for v in groups.values())

    def validate_tensors(self, tensors: Sequence) -> None:
        """Check live tensors against the declared shapes, by position."""
        if len(tensors) != self.n_operands:
            raise PlanError(
                f"network has {self.n_operands} operands, got {len(tensors)}"
            )
        for k, (meta, t) in enumerate(zip(self.operands, tensors)):
            if tuple(t.shape) != meta.shape:
                raise ShapeError(
                    f"operand {k} has shape {tuple(t.shape)} but the "
                    f"network was built for {meta.shape}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TensorNetwork({self.subscripts!r}, n={self.n_operands})"
