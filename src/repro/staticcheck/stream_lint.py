"""Streaming-subsystem lints (``FSTC7xx``).

The streaming layer (:mod:`repro.streaming`) keeps derived artifacts —
tiled tables, linearized operands, plan-cache entries, prepared-network
pins, cached outputs — alive across tensor mutations, which makes two
soundness properties load-bearing:

* every registered artifact must be **reachable by invalidation**: an
  artifact tracked with no dependencies can never be marked stale, so a
  delta silently leaves it serving pre-mutation data (``FSTC702``,
  error — the static counterpart of the
  :class:`~repro.streaming.DependencyTracker`'s construction-time
  refusal);
* a **stale artifact still registered** is a stale read waiting to
  happen — the dynamic guard (:class:`repro.errors.StaleReadError`)
  fires only at read time, while this lint catches the window where
  the artifact sits stale between a bump and its refresh/unregister
  (``FSTC701``, error);

plus two configuration checks:

* a **staleness threshold** at or below zero never patches (streaming
  degenerates to full recompute per delta), and one above the point
  where the Section 5.1 density model prices a patch at most of a full
  recompute buys little while compounding patch bookkeeping
  (``FSTC703``, warning);
* an **unbounded mutation log** grows without bound under sustained
  writes — the log exists for replay/audit of *recent* deltas, and the
  bounded deque with a compaction counter is the supported shape
  (``FSTC704``, warning).

Trackers and configs are duck-typed, like the ``FSTC3xx``/``FSTC6xx``
lints: anything with ``stale_ids()``/``artifacts()`` lints as a
tracker; anything carrying ``staleness_threshold``/``log_maxlen`` (or
the ``stream_``-prefixed spellings used by
:class:`repro.serve.ServiceConfig`) lints as a config.
"""

from __future__ import annotations

from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

__all__ = ["lint_dependency_tracker", "lint_stream_config"]

#: Above this threshold the density model prices the patch at most of a
#: full recompute — incremental bookkeeping stops paying for itself.
MAX_SANE_STALENESS = 0.75

#: A mutation-log bound above this is unbounded for practical purposes.
MAX_SANE_LOG_MAXLEN = 1_000_000

_MISSING = object()


def _knob(config, name: str, default):
    """Read a knob under either its bare or ``stream_``-prefixed name."""
    value = getattr(config, name, _MISSING)
    if value is _MISSING:
        value = getattr(config, f"stream_{name}", _MISSING)
    return default if value is _MISSING else value


def lint_dependency_tracker(
    tracker, *, location: str = "dependency tracker"
) -> list[Diagnostic]:
    """``FSTC701``/``FSTC702`` findings for one dependency tracker.

    ``tracker`` is duck-typed: a
    :class:`repro.streaming.DependencyTracker` or any stand-in exposing
    ``artifacts()`` (iterable of objects with ``artifact_id``, ``kind``,
    ``deps`` and ``fresh``).
    """
    out: list[Diagnostic] = []
    for artifact in tracker.artifacts():
        where = f"{location}: artifact {artifact.artifact_id!r}"
        if not artifact.deps:
            out.append(make_diagnostic(
                "FSTC702",
                f"{artifact.kind} artifact tracks no dependencies, so no "
                "tensor bump can ever invalidate it — any mutation leaves "
                "it silently serving pre-mutation data",
                hint="register the artifact against the (tensor, tiles) "
                     "pairs it was computed from, or do not track it",
                location=where,
            ))
        if not artifact.fresh:
            out.append(make_diagnostic(
                "FSTC701",
                f"{artifact.kind} artifact is stale but still registered; "
                "a read before refresh/unregister returns pre-mutation "
                "data (the dynamic StaleReadError guard fires only on "
                "checked reads)",
                hint="refresh(artifact_id) after recomputing it, or "
                     "unregister(artifact_id) to retire it",
                location=where,
            ))
    return out


def lint_stream_config(
    config, *, location: str = "stream config"
) -> list[Diagnostic]:
    """``FSTC703``/``FSTC704`` findings for one streaming configuration.

    ``config`` is duck-typed: an :class:`repro.streaming.IncrementalEngine`,
    a :class:`repro.serve.ServiceConfig` (``stream_*`` fields), or any
    stand-in carrying the knobs.
    """
    out: list[Diagnostic] = []

    threshold = _knob(config, "staleness_threshold", None)
    if threshold is not None:
        threshold = float(threshold)
        if threshold <= 0.0:
            out.append(make_diagnostic(
                "FSTC703",
                f"staleness threshold {threshold} never takes the "
                "incremental path; every delta pays a full recompute",
                hint="set staleness_threshold in (0, "
                     f"{MAX_SANE_STALENESS}]",
                location=location,
            ))
        elif threshold > MAX_SANE_STALENESS:
            out.append(make_diagnostic(
                "FSTC703",
                f"staleness threshold {threshold} patches even when the "
                "density model prices the patch at more than "
                f"{MAX_SANE_STALENESS:.0%} of a full recompute",
                hint=f"keep staleness_threshold at or below "
                     f"{MAX_SANE_STALENESS}",
                location=location,
            ))

    maxlen = _knob(config, "log_maxlen", None)
    if maxlen is not None:
        if maxlen is not True and int(maxlen) <= 0:
            out.append(make_diagnostic(
                "FSTC704",
                f"mutation-log bound {maxlen} disables the log bound; "
                "sustained writes grow the log without limit",
                hint="use a positive log_maxlen (the engine compacts "
                     "older deltas and counts them)",
                location=location,
            ))
        elif int(maxlen) > MAX_SANE_LOG_MAXLEN:
            out.append(make_diagnostic(
                "FSTC704",
                f"mutation-log bound {maxlen} is effectively unbounded "
                f"(> {MAX_SANE_LOG_MAXLEN})",
                hint="bound the log to what replay/audit actually needs",
                location=location,
            ))
    return out
