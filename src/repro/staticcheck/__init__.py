"""Static analysis for contraction requests, task graphs, and the code base.

Three passes, all pre-execution (nothing here allocates a workspace or
runs a kernel):

* :mod:`repro.staticcheck.expr_lint` — given subscripts (or linearized
  problem parameters), declared shapes/nnz and a machine model, predict
  the plan Algorithm 7 would pick and every guard outcome — including
  the paper's Table 3 ``DNF`` regime — as ``FSTC0xx`` diagnostics;
* :mod:`repro.staticcheck.ast_lint` — ``FSTC1xx`` source rules keeping
  the vectorized hot paths honest (no per-nonzero Python loops in
  kernels, :mod:`repro.errors` exception discipline, determinism,
  ``__all__`` declarations);
* :mod:`repro.staticcheck.graph_lint` — ``FSTC2xx`` hazard analysis of
  tile-task write sets (write-write conflicts, order-dependent
  reductions) before a schedule runs;
* :mod:`repro.staticcheck.pass_lint` — ``FSTC5xx`` soundness checks of
  optimizer-pass plan rewrites against re-derived dataflow facts (the
  :class:`~repro.network.passes.PassVerifier`'s engine).

The CLI front end is ``python -m repro check``; see
``docs/staticcheck.md`` for the code catalogue.
"""

from repro.staticcheck.ast_lint import lint_file, lint_source, lint_tree
from repro.staticcheck.audit import audit_case, audit_registry, case_problem
from repro.staticcheck.autotune_lint import lint_autotune_config
from repro.staticcheck.diagnostics import (
    CODES,
    Diagnostic,
    diagnostics_to_json,
    has_errors,
    make_diagnostic,
    max_exit_status,
    render_diagnostics,
)
from repro.staticcheck.expr_lint import (
    ExpressionReport,
    PlanPrediction,
    lint_expression,
    lint_problem,
    predict_plan,
)
from repro.staticcheck.graph_lint import (
    TileTask,
    analyze_task_graph,
    assert_disjoint_writes,
    hazards_for_stats,
    write_sets_for_pairs,
)
from repro.staticcheck.pass_lint import (
    lint_plan_annotations,
    self_test_passes,
    verify_rewrite,
)
from repro.staticcheck.registry_audit import audit_code_registry
from repro.staticcheck.service_lint import (
    cost_floor_seconds,
    lint_request_deadline,
    lint_service_config,
)
from repro.staticcheck.shard_lint import lint_ring_balance, lint_shard_config
from repro.staticcheck.stream_lint import (
    lint_dependency_tracker,
    lint_stream_config,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "ExpressionReport",
    "PlanPrediction",
    "TileTask",
    "analyze_task_graph",
    "assert_disjoint_writes",
    "audit_case",
    "audit_code_registry",
    "audit_registry",
    "case_problem",
    "cost_floor_seconds",
    "diagnostics_to_json",
    "has_errors",
    "hazards_for_stats",
    "lint_autotune_config",
    "lint_dependency_tracker",
    "lint_expression",
    "lint_file",
    "lint_plan_annotations",
    "lint_problem",
    "lint_request_deadline",
    "lint_ring_balance",
    "lint_service_config",
    "lint_shard_config",
    "lint_source",
    "lint_stream_config",
    "lint_tree",
    "make_diagnostic",
    "max_exit_status",
    "predict_plan",
    "render_diagnostics",
    "self_test_passes",
    "verify_rewrite",
    "write_sets_for_pairs",
]
