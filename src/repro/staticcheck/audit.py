"""Registry-wide static audit: lint every benchmark contraction.

``python -m repro check`` (no selector) runs this audit: for each
registry case, each paper machine, and each of Table 3's accumulator
columns (the model's choice plus the forced dense and forced sparse
runs), the expression linter predicts the plan and the guard outcome —
reproducing the paper's NIPS mode-2 dense-accumulator ``DNF`` entry as
a *diagnostic* (``FSTC010``) instead of a runtime error, without
allocating any workspace.

Problem parameters come from the case's operand tensors (generated and
linearized — cheap preprocessing, no accumulator/workspace allocation);
the hazard analysis additionally derives each configuration's tile-task
write sets from the operands' occupied tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.specs import DESKTOP, SERVER, MachineSpec
from repro.staticcheck.diagnostics import Diagnostic
from repro.staticcheck.expr_lint import lint_problem

__all__ = [
    "CaseAudit",
    "audit_case",
    "audit_registry",
    "case_problem",
    "occupied_tile_pairs",
    "MACHINES",
]

MACHINES: dict[str, MachineSpec] = {"desktop": DESKTOP, "server": SERVER}

#: Table 3's three run configurations per case.
_COLUMNS = ("auto", "dense", "sparse")


@dataclass
class CaseAudit:
    """Lint results for one case under every (machine, accumulator)."""

    case: str
    problem: dict
    reports: dict = field(default_factory=dict)  # (machine, acc) -> report

    @property
    def diagnostics(self) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for report in self.reports.values():
            out.extend(report.diagnostics)
        return out

    def verdict(self, machine: str, accumulator: str = "auto") -> str:
        return self.reports[(machine, accumulator)].verdict


def case_problem(case_name: str) -> dict:
    """The linearized problem parameters of one registry case.

    Generates and linearizes the operands (the same preprocessing every
    run pays) but allocates no tile workspace; the result is exactly the
    ``problem`` block the Algorithm 7 golden fixtures freeze.
    """
    from repro.core.plan import ContractionSpec
    from repro.data.registry import get_case

    case = get_case(case_name)
    left, right, pairs = case.load()
    spec = ContractionSpec(left.shape, right.shape, pairs)
    left_op = spec.linearize_left(left).sum_duplicates()
    right_op = spec.linearize_right(right).sum_duplicates()
    return {
        "L": spec.L, "R": spec.R, "C": spec.C,
        "nnz_l": left_op.nnz, "nnz_r": right_op.nnz,
        "occupied_l": {
            "ext": left_op.ext, "model": case.paper.get("model"),
        },
        "occupied_r": {"ext": right_op.ext},
    }


def audit_case(
    case_name: str,
    *,
    machines=("desktop", "server"),
    accumulators=_COLUMNS,
    problem: dict | None = None,
) -> CaseAudit:
    """Lint one case under each requested machine/accumulator column."""
    if problem is None:
        problem = case_problem(case_name)
    audit = CaseAudit(case=case_name, problem=problem)
    for machine_name in machines:
        machine = MACHINES[machine_name]
        for acc in accumulators:
            report = lint_problem(
                problem["L"], problem["R"], problem["C"],
                problem["nnz_l"], problem["nnz_r"], machine,
                accumulator=acc,
                location=f"case {case_name} [{machine_name}, {acc}]",
            )
            audit.reports[(machine_name, acc)] = report
    return audit


def audit_registry(
    *,
    cases=None,
    machines=("desktop", "server"),
    accumulators=_COLUMNS,
) -> list[CaseAudit]:
    """Audit every registry case (or the given subset), in name order."""
    from repro.data.registry import all_cases

    names = sorted(all_cases()) if cases is None else list(cases)
    return [
        audit_case(name, machines=machines, accumulators=accumulators)
        for name in names
    ]


def occupied_tile_pairs(
    problem: dict, tile_l: int, tile_r: int
) -> list[tuple[int, int]]:
    """The tile-pair dispatch list a plan would produce for this case.

    Derived from the operands' occupied external tiles — the same
    ``nonempty_l x nonempty_r`` product the kernel enumerates — without
    building any hash tables.
    """
    ext_l = problem["occupied_l"]["ext"]
    ext_r = problem["occupied_r"]["ext"]
    tiles_l = np.unique(np.asarray(ext_l) // np.int64(tile_l))
    tiles_r = np.unique(np.asarray(ext_r) // np.int64(tile_r))
    return [(int(i), int(j)) for i in tiles_l for j in tiles_r]
