"""Service-configuration lints (``FSTC3xx``) and the request cost floor.

The serving layer (:mod:`repro.serve`) has misconfigurations that are
statically knowable, exactly like a contraction request's DNF regime:

* an **unbounded admission queue** turns overload into unbounded memory
  growth instead of shedding (``FSTC301``, error);
* a **deadline below the model-predicted cost floor** can never be met
  — the request will burn a worker slot and then time out anyway
  (``FSTC302``, warning);
* a **worker pool wider than the machine's cores** oversubscribes the
  CPU the cost model was calibrated against (``FSTC303``, warning).

The cost floor is the same Section 5.1/5.3 arithmetic Algorithm 7 runs
on: :func:`cost_floor_seconds` prices a pairwise request through
:class:`~repro.machine.cost_model.AccessCostModel` at the predicted
tiling, and a network request through the cheap left-to-right path's
modeled total.  It is a *floor* in the model's units — an optimistic
single-pass estimate — so a deadline under it is structurally hopeless,
while a deadline above it may still be missed under load.

These functions take duck-typed config/request objects (anything with
the right attributes), so :mod:`repro.staticcheck` stays import-free of
:mod:`repro.serve` and the lint can run on plain stand-ins in tests.
"""

from __future__ import annotations

from repro.core.plan import ContractionSpec
from repro.machine.cost_model import AccessCostModel, ProblemShape
from repro.machine.specs import MachineSpec
from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

__all__ = [
    "cost_floor_seconds",
    "lint_service_config",
    "lint_request_deadline",
]


def _pairwise_floor(
    left_shape, right_shape, pairs, nnz_l: int, nnz_r: int,
    machine: MachineSpec,
) -> float:
    """Modeled seconds for one pairwise contraction at the planned tiling."""
    from repro.staticcheck.expr_lint import predict_plan

    spec = ContractionSpec(tuple(left_shape), tuple(right_shape), list(pairs))
    L, R, C = max(1, spec.L), max(1, spec.R), max(1, spec.C)
    prediction = predict_plan(L, R, C, nnz_l, nnz_r, machine)
    shape = ProblemShape(L, R, C, max(0, nnz_l), max(0, nnz_r))
    model = AccessCostModel(shape, machine)
    estimate = model.tiled_co(prediction.tile_l, prediction.tile_r)
    # Each retrieved payload element feeds one multiply-accumulate, so
    # the data volume doubles as the update count (Section 3.4's proxy).
    return model.estimated_seconds(estimate, estimate.data_volume)


def _network_floor(subscripts: str, operands, machine: MachineSpec) -> float:
    """Modeled seconds of the cheap left-to-right network path."""
    from repro.network.ir import TensorNetwork
    from repro.network.optimize import build_plan

    network = TensorNetwork.parse(subscripts, operands)
    plan = build_plan(network, machine, "left")
    return float(plan.est_total_cost)


def cost_floor_seconds(request, machine: MachineSpec) -> float:
    """Optimistic modeled execution seconds for one service request.

    ``request`` is duck-typed (:class:`repro.serve.Request` or any
    stand-in): ``kind == "pairwise"`` uses ``left``/``right``/``pairs``,
    anything else uses ``subscripts``/``operands``.  Returns 0.0 when
    the model cannot price the request (the caller then has no floor to
    enforce, which is the safe direction for a *floor*).
    """
    try:
        if request.kind == "pairwise":
            return _pairwise_floor(
                request.left.shape, request.right.shape, request.pairs,
                request.left.nnz, request.right.nnz, machine,
            )
        return _network_floor(request.subscripts, request.operands, machine)
    except Exception:  # noqa: BLE001 - unpriceable requests have no floor
        return 0.0


def lint_service_config(
    config, machine: MachineSpec, *, location: str = "service config"
) -> list[Diagnostic]:
    """``FSTC301``/``FSTC303`` findings for one service configuration.

    ``config`` is duck-typed (:class:`repro.serve.ServiceConfig` or a
    stand-in) and must carry ``queue_capacity``, ``n_workers`` and
    ``max_batch``.
    """
    out: list[Diagnostic] = []
    capacity = getattr(config, "queue_capacity", None)
    if capacity is None or int(capacity) < 1:
        out.append(make_diagnostic(
            "FSTC301",
            f"admission queue capacity {capacity!r} is unbounded or "
            "non-positive; overload would grow the queue without limit",
            hint="set queue_capacity to a positive bound sized for the "
                 "acceptable queueing delay",
            location=location,
        ))
    n_workers = int(getattr(config, "n_workers", 1))
    if n_workers < 1:
        out.append(make_diagnostic(
            "FSTC301",
            f"worker pool size {n_workers} cannot drain the queue",
            hint="use at least one worker",
            location=location,
        ))
    if int(getattr(config, "max_batch", 1)) < 1:
        out.append(make_diagnostic(
            "FSTC301",
            f"max_batch {config.max_batch} cannot form micro-batches",
            hint="use max_batch >= 1",
            location=location,
        ))
    if n_workers > machine.n_cores:
        out.append(make_diagnostic(
            "FSTC303",
            f"{n_workers} workers oversubscribe {machine.name}'s "
            f"{machine.n_cores} cores",
            hint="size the pool at or below the core count the cost "
                 "model was calibrated for",
            location=location,
        ))
    return out


def lint_request_deadline(
    request, machine: MachineSpec, *, location: str = ""
) -> list[Diagnostic]:
    """``FSTC302`` when a request's deadline sits below its cost floor."""
    deadline = getattr(request, "deadline_s", None)
    if deadline is None:
        return []
    floor = cost_floor_seconds(request, machine)
    if floor > 0 and deadline < floor:
        return [make_diagnostic(
            "FSTC302",
            f"deadline {deadline:.3g}s is below the model-predicted cost "
            f"floor {floor:.3g}s on {machine.name}; the request cannot "
            "finish in budget even unloaded",
            hint="raise the deadline above the floor or shrink the problem",
            location=location or f"request {getattr(request, 'name', '')!r}",
        )]
    return []
