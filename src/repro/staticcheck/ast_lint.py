"""AST lint pass over the ``repro`` source tree itself.

The NumPy-vectorized hot paths stay fast only while nobody quietly
reintroduces a per-nonzero Python loop, a bare ``ValueError``, or a
wall-clock call inside a kernel; this pass encodes those invariants as
checkable rules and runs in CI (``python -m repro check --self``).

Rules
-----
``FSTC101``
    *Kernel modules* (the FaSTCC hot path: ``core/tiled_co``,
    ``core/accumulators``, ``core/contraction``, ``core/semiring`` and
    everything under ``hashing/``) must not contain a ``for`` statement
    whose trip count is data-dependent — ``range(...)`` over an ``nnz``
    /``len()``/``.shape[k]`` expression, or iteration over
    ``.tolist()``/``zip(...)`` of payload arrays.  Reference baselines
    under ``baselines/`` deliberately loop per slice and are exempt.
``FSTC102``
    *Hot modules* (``core/``, ``hashing/``, ``baselines/``,
    ``tensors/``) raise only :mod:`repro.errors` subclasses — never bare
    ``ValueError``/``RuntimeError``/``MemoryError``/``KeyError``/
    ``Exception``.
``FSTC103``
    Kernel modules must be deterministic and wall-clock free:
    ``time.time``/``time.monotonic``, bare ``random.*`` and legacy
    ``np.random.*`` (anything but an explicitly seeded ``default_rng``)
    are flagged.  ``time.perf_counter`` is allowed — phase timing is
    part of the measured contract.
``FSTC104``
    Every public module under ``src/repro/`` declares ``__all__``
    (dunder modules like ``__main__`` are exempt).
``FSTC401``
    Kernel modules outside the :mod:`repro.backends` layer must not
    call the NumPy kernel primitives directly (``np.add.at``,
    ``np.subtract.at``, ``np.bincount``, ``np.matmul``, ``np.dot``,
    ``np.einsum``, ``np.tensordot``) — those go through the active
    :class:`~repro.backends.KernelBackend` so foreign-array backends
    keep working.  The backend implementations themselves are exempt
    (they *are* the layer).

A finding is suppressed by a pragma comment on its line (or on the
``def``/``for`` header line)::

    for pl, pr in zip(...):  # staticcheck: ignore[FSTC101] reference loop
"""

from __future__ import annotations

import ast
import os
import re

from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

__all__ = [
    "lint_source",
    "lint_file",
    "lint_tree",
    "default_root",
    "KERNEL_MODULES",
    "HOT_PACKAGES",
]

#: Packages whose modules are "hot": exception discipline applies.
HOT_PACKAGES = ("core", "hashing", "baselines", "tensors", "backends")

#: Modules forming the FaSTCC kernel proper: loop and determinism rules
#: apply (paths relative to the ``repro`` package root, no extension).
KERNEL_MODULES = (
    "core/tiled_co",
    "core/accumulators",
    "core/contraction",
    "core/semiring",
    "hashing/open_addressing",
    "hashing/chaining",
    "hashing/slice_table",
    "hashing/hash_functions",
    "backends/numpy_backend",
    "backends/scipy_backend",
    "backends/arrayapi_backend",
)

#: Builtin exception names FSTC102 refuses in hot modules.
_BANNED_RAISES = ("ValueError", "RuntimeError", "MemoryError", "KeyError", "Exception")

#: NumPy kernel primitives FSTC401 confines to the backend layer.
_BACKEND_ONLY_CALLS = (
    "add.at", "subtract.at", "bincount", "matmul", "dot", "einsum",
    "tensordot",
)

_PRAGMA = re.compile(r"#\s*staticcheck:\s*ignore\[([A-Z0-9,\s]+)\]")


def default_root() -> str:
    """The installed ``repro`` package directory (for ``--self``)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _rel_module(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    rel = rel.replace(os.sep, "/")
    return rel[:-3] if rel.endswith(".py") else rel


def _suppressed(lines: list[str], lineno: int, code: str) -> bool:
    if 1 <= lineno <= len(lines):
        match = _PRAGMA.search(lines[lineno - 1])
        if match:
            codes = {c.strip() for c in match.group(1).split(",")}
            return code in codes
    return False


def _dotted(node: ast.AST) -> str:
    """Render a Name/Attribute chain like ``np.random.rand`` (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _mentions_data_length(node: ast.AST) -> bool:
    """Does an expression's size derive from per-element data?

    True for anything mentioning ``nnz``, ``len(...)``, or an indexed
    ``.shape`` access — the signatures of a per-nonzero trip count.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "nnz" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute):
            if "nnz" in sub.attr.lower():
                return True
        if isinstance(sub, ast.Call):
            if isinstance(sub.func, ast.Name) and sub.func.id == "len":
                return True
        if isinstance(sub, ast.Subscript):
            if isinstance(sub.value, ast.Attribute) and sub.value.attr == "shape":
                return True
    return False


def _iter_is_per_element(iter_node: ast.AST) -> str | None:
    """Classify a ``for`` iterable as per-element; returns a description."""
    if isinstance(iter_node, ast.Call):
        func = iter_node.func
        if isinstance(func, ast.Name) and func.id == "range":
            if any(_mentions_data_length(a) for a in iter_node.args):
                return "range() over a data-dependent count"
        if isinstance(func, ast.Name) and func.id == "zip":
            for arg in iter_node.args:
                if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Attribute) \
                        and arg.func.attr == "tolist":
                    return "zip() over array .tolist() payloads"
        if isinstance(func, ast.Attribute) and func.attr == "tolist":
            return "iteration over an array's .tolist()"
    return None


def lint_source(
    source: str,
    *,
    filename: str = "<string>",
    module: str = "",
    hot: bool = False,
    kernel: bool = False,
    public: bool = True,
    backend_layer: bool = False,
) -> list[Diagnostic]:
    """Lint one module's source text.

    ``module`` is the package-relative path (``core/tiled_co``); ``hot``
    /``kernel``/``public``/``backend_layer`` select which rule groups
    apply (computed from the path by :func:`lint_file`).
    """
    diags: list[Diagnostic] = []
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [make_diagnostic(
            "FSTC104", f"module does not parse: {exc}",
            location=f"{filename}:{exc.lineno or 0}",
        )]
    lines = source.splitlines()

    def loc(node: ast.AST) -> str:
        return f"{filename}:{getattr(node, 'lineno', 0)}"

    if public:
        has_all = any(
            isinstance(n, (ast.Assign, ast.AnnAssign))
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in (n.targets if isinstance(n, ast.Assign) else [n.target])
            )
            for n in tree.body
        )
        if not has_all and not _suppressed(lines, 1, "FSTC104"):
            diags.append(make_diagnostic(
                "FSTC104",
                f"public module {module or filename!r} does not declare __all__",
                hint="list the intended exports explicitly",
                location=f"{filename}:1",
            ))

    if hot:
        for node in ast.walk(tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = ""
                if isinstance(exc, ast.Call):
                    name = _dotted(exc.func)
                elif isinstance(exc, (ast.Name, ast.Attribute)):
                    name = _dotted(exc)
                if name in _BANNED_RAISES and not _suppressed(
                    lines, node.lineno, "FSTC102"
                ):
                    diags.append(make_diagnostic(
                        "FSTC102",
                        f"raise {name} in a hot module; raise a repro.errors "
                        "subclass instead",
                        hint="ShapeError/PlanError/ConfigError/FormatError all "
                             "remain ValueError subclasses",
                        location=loc(node),
                    ))

    if kernel:
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                why = _iter_is_per_element(node.iter)
                if why and not _suppressed(lines, node.lineno, "FSTC101"):
                    diags.append(make_diagnostic(
                        "FSTC101",
                        f"per-element Python loop in a kernel module ({why})",
                        hint="vectorize with the repro.util.groups kernels or "
                             "move the loop out of the kernel",
                        location=loc(node),
                    ))
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                bad = (
                    name in ("time.time", "time.monotonic")
                    or name.startswith("random.")
                    or (
                        name.startswith("np.random.")
                        and name != "np.random.default_rng"
                    )
                    or (
                        name.startswith("numpy.random.")
                        and name != "numpy.random.default_rng"
                    )
                )
                if bad and not _suppressed(lines, node.lineno, "FSTC103"):
                    diags.append(make_diagnostic(
                        "FSTC103",
                        f"nondeterministic/wall-clock call {name}() in a "
                        "kernel module",
                        hint="use time.perf_counter for phase timing and "
                             "seeded np.random.default_rng for randomness",
                        location=loc(node),
                    ))
                confined = (
                    not backend_layer
                    and any(
                        name == f"{prefix}.{op}"
                        for prefix in ("np", "numpy")
                        for op in _BACKEND_ONLY_CALLS
                    )
                )
                if confined and not _suppressed(lines, node.lineno, "FSTC401"):
                    diags.append(make_diagnostic(
                        "FSTC401",
                        f"direct NumPy kernel call {name}() in a kernel "
                        "module outside repro.backends",
                        hint="route it through the active KernelBackend "
                             "(gather/scatter_accumulate/gemm_slices/"
                             "hash_accumulate) so foreign-array backends "
                             "keep working",
                        location=loc(node),
                    ))
    return diags


def lint_file(path: str, *, root: str | None = None) -> list[Diagnostic]:
    """Lint one file, deriving rule applicability from its location."""
    if root is None:
        root = default_root()
    module = _rel_module(path, root)
    basename = os.path.basename(path)
    public = not (basename.startswith("__") and basename.endswith("__.py"))
    hot = any(
        module == pkg or module.startswith(pkg + "/") for pkg in HOT_PACKAGES
    )
    kernel = module in KERNEL_MODULES
    backend_layer = module == "backends" or module.startswith("backends/")
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(
        source, filename=os.path.relpath(path), module=module,
        hot=hot, kernel=kernel, public=public, backend_layer=backend_layer,
    )


def lint_tree(root: str | None = None) -> list[Diagnostic]:
    """Lint every ``.py`` module under ``root`` (default: the installed
    ``repro`` package)."""
    if root is None:
        root = default_root()
    diags: list[Diagnostic] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if name.endswith(".py"):
                diags.extend(lint_file(os.path.join(dirpath, name), root=root))
    return diags
