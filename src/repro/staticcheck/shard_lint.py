"""Sharded-serving configuration lints (``FSTC304``/``FSTC305``).

The process-sharded router (:mod:`repro.serve.router`) adds two
statically-knowable misconfigurations on top of the single-process
``FSTC301``–``FSTC303`` family:

* **host oversubscription** (``FSTC304``) — ``n_shards`` processes each
  running ``n_workers`` threads of CPU-bound contraction work want
  ``n_shards × n_workers`` cores; past ``os.cpu_count()`` the shards
  time-slice against each other and per-shard latency inflates without
  any throughput gain.  (``FSTC303`` covers one service against the
  *modeled* machine; this lint covers the whole fleet against the
  *actual* host.)
* **pathological ring balance** (``FSTC305``) — consistent hashing is
  only statistically fair.  For a *declared* signature set the split is
  exactly computable before any load is offered: a shard owning zero
  signatures is dead weight, and a shard owning far more than its fair
  share caps the fleet's throughput at ``1 / max_share``.

Both lints are duck-typed (any object with ``n_shards`` and a
``service.n_workers``-shaped attribute works), keeping
:mod:`repro.staticcheck` import-free of :mod:`repro.serve`.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

__all__ = ["lint_shard_config", "lint_ring_balance"]

#: A shard whose declared-signature share exceeds this multiple of fair
#: share is reported: the fleet's scaling is capped at 1/share, so 2x
#: fair share on 4 shards already halves the headroom.
PATHOLOGICAL_SHARE = 2.0


def _shard_workers(config) -> tuple[int, int]:
    """(n_shards, per-shard workers) from a duck-typed sharded config."""
    n_shards = int(getattr(config, "n_shards", 1))
    service = getattr(config, "service", None)
    n_workers = int(getattr(service, "n_workers", getattr(config, "n_workers", 1)))
    return n_shards, n_workers


def lint_shard_config(
    config,
    *,
    cpu_count: int | None = None,
    location: str = "sharded config",
) -> list[Diagnostic]:
    """``FSTC304`` findings for one sharded-router configuration.

    ``cpu_count`` defaults to the live ``os.cpu_count()``; tests pass a
    fixed value so findings do not depend on the host running the
    suite.
    """
    out: list[Diagnostic] = []
    n_shards, n_workers = _shard_workers(config)
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    total = n_shards * max(1, n_workers)
    if n_shards > 1 and total > cpus:
        out.append(make_diagnostic(
            "FSTC304",
            f"{n_shards} shards x {n_workers} workers want {total} cores "
            f"but the host has {cpus}; shards will time-slice instead of "
            "scaling",
            hint="size n_shards * n_workers at or below os.cpu_count(), "
                 "or accept latency inflation on an oversubscribed host",
            location=location,
            data={"n_shards": n_shards, "n_workers": n_workers, "cpus": cpus},
        ))
    return out


def lint_ring_balance(
    n_shards: int,
    signature_keys: Sequence[str],
    *,
    replicas: int | None = None,
    location: str = "shard ring",
) -> list[Diagnostic]:
    """``FSTC305`` findings for a declared signature set on N shards.

    Builds the same deterministic ring the router would
    (:class:`repro.serve.sharding.HashRing` over shard ids
    ``0..n_shards-1``) and inspects the exact split of
    ``signature_keys``: an empty shard (when there are at least as many
    signatures as shards) and any shard owning more than
    :data:`PATHOLOGICAL_SHARE` times its fair share are each reported.
    """
    from repro.serve.sharding import DEFAULT_REPLICAS, HashRing, ring_shares

    out: list[Diagnostic] = []
    keys = [str(k) for k in signature_keys]
    if n_shards < 2 or not keys:
        return out
    ring = HashRing(
        range(n_shards),
        replicas=DEFAULT_REPLICAS if replicas is None else replicas,
    )
    shares = ring_shares(ring, keys)
    fair = 1.0 / n_shards
    if len(keys) >= n_shards:
        empty = sorted(s for s, share in shares.items() if share == 0.0)
        if empty:
            out.append(make_diagnostic(
                "FSTC305",
                f"shard(s) {empty} own none of the {len(keys)} declared "
                f"signatures; the ring wastes {len(empty)}/{n_shards} of "
                "the fleet",
                hint="raise the ring's replicas, rebalance weights, or "
                     "reduce the shard count toward the signature count",
                location=location,
                data={"shares": {str(s): v for s, v in shares.items()}},
            ))
    worst_shard, worst = max(shares.items(), key=lambda kv: (kv[1], str(kv[0])))
    if worst > PATHOLOGICAL_SHARE * fair and len(keys) >= 2 * n_shards:
        out.append(make_diagnostic(
            "FSTC305",
            f"shard {worst_shard} owns {worst:.0%} of the declared "
            f"signatures ({PATHOLOGICAL_SHARE:.0f}x its fair share "
            f"{fair:.0%}); throughput is capped at ~{1 / worst:.1f}x of "
            f"one shard instead of {n_shards}x",
            hint="rebalance ring weights against the declared signature "
                 "set (ShardRouter.rebalance) or raise replicas",
            location=location,
            data={"shares": {str(s): v for s, v in shares.items()}},
        ))
    return out
