"""Expression/plan linter: diagnose a contraction before running it.

The planner's inputs — subscripts (or mode pairs), declared shapes,
expected nonzero counts, and a :class:`~repro.machine.specs.MachineSpec`
— fully determine the plan Algorithm 7 will pick *and* the guard
outcomes the kernel would hit: the paper's Table 3 DNF entry (NIPS
mode 2 under a dense accumulator) is a pure function of these numbers.
This module evaluates exactly the decision procedure the runtime uses
(:func:`repro.core.model.choose_plan` plus the workspace/task guards of
:mod:`repro.core.tiled_co` and :mod:`repro.core.accumulators`) without
allocating any workspace, and reports the outcome as diagnostics.

Two entry points:

* :func:`lint_problem` — linearized parameters ``(L, R, C, nnz_l,
  nnz_r)``, the Table 3 calculator's input form;
* :func:`lint_expression` — einsum subscripts + per-operand shapes, the
  :func:`repro.core.expression.contract_expression` input form.

Both return an :class:`ExpressionReport` whose ``verdict`` is one of
``"ok"``, ``"dnf"`` (the run is predicted to be refused by a guard), or
``"invalid"`` (the request can never construct a plan at all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.errors import PlanError, ShapeError, StaticCheckError
from repro.machine.specs import DESKTOP, MachineSpec
from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic
from repro.util.arrays import ceil_div

__all__ = [
    "ExpressionReport",
    "PlanPrediction",
    "lint_problem",
    "lint_expression",
    "predict_plan",
    "DENSE_ANTIPATTERN_EXPECTED_NNZ",
    "NETWORK_BLOWUP_FACTOR",
]

#: The model's own dense-tile profitability threshold (Algorithm 7
#: chooses dense when the expected nonzeros in a probe tile reach 1);
#: a *forced* dense accumulator below it is the cost-model anti-pattern
#: FSTC013 flags.
DENSE_ANTIPATTERN_EXPECTED_NNZ = 1.0

#: Value dtypes the kernels accumulate in (see repro.util.arrays).
_SUPPORTED_DTYPES = ("float64", "float32", "int64", "complex128")

#: A planned intermediate predicted to exceed this multiple of the total
#: input nonzeros is an intermediate blowup (FSTC018): the path choice,
#: not the pairwise kernel, dominates the cost.
NETWORK_BLOWUP_FACTOR = 10.0


@dataclass(frozen=True)
class PlanPrediction:
    """What the planner + guards are predicted to do, statically."""

    accumulator: str
    tile_l: int
    tile_r: int
    est_output_density: float
    expected_tile_nnz: float
    grid_l: int  # NL — tiles along the left external index
    grid_r: int  # NR
    est_nonempty_pairs: int  # upper bound on dispatched tile-pair tasks
    dense_cells: int  # tile_l * tile_r when dense, else 0
    verdict: str  # "ok" | "dnf"


@dataclass
class ExpressionReport:
    """Outcome of one lint pass over a contraction request."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    prediction: PlanPrediction | None = None
    verdict: str = "ok"  # "ok" | "dnf" | "invalid"

    @property
    def ok(self) -> bool:
        return self.verdict == "ok" and not any(
            d.severity == "error" for d in self.diagnostics
        )

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)


def predict_plan(
    L: int,
    R: int,
    C: int,
    nnz_l: int,
    nnz_r: int,
    machine: MachineSpec,
    *,
    accumulator: str = "auto",
    tile_size: int | None = None,
    max_tasks: int | None = None,
    dense_cell_guard: int | None = None,
) -> PlanPrediction:
    """Replay the planner and guard arithmetic without any allocation.

    The task-count estimate is the *upper bound* ``min(NL, nnz_l) *
    min(NR, nnz_r)`` — an operand with ``n`` nonzeros can occupy at most
    ``n`` tiles.  The runtime counts actually-occupied tiles, which can
    only be lower, so a predicted ``"ok"`` is definitive while a
    predicted ``"dnf"`` is conservative; every Table 3 configuration is
    far from the boundary in the direction the prediction gives.
    """
    from repro.core.accumulators import DEFAULT_DENSE_CELL_GUARD
    from repro.core.tiled_co import DEFAULT_MAX_TASKS

    if max_tasks is None:
        max_tasks = DEFAULT_MAX_TASKS
    if dense_cell_guard is None:
        dense_cell_guard = DEFAULT_DENSE_CELL_GUARD

    # A minimal 2-D spec carrying the linearized extents: the planner
    # only consumes L, R and C, so matrix form loses nothing.
    spec = ContractionSpec((L, C), (C, R), [(1, 0)])
    plan = choose_plan(
        spec, nnz_l, nnz_r, machine,
        accumulator=accumulator, tile_size=tile_size,
    )
    grid_l = ceil_div(L, plan.tile_l)
    grid_r = ceil_div(R, plan.tile_r)
    est_pairs = min(grid_l, max(0, nnz_l)) * min(grid_r, max(0, nnz_r))
    dense_cells = plan.tile_l * plan.tile_r if plan.accumulator == "dense" else 0

    verdict = "ok"
    if plan.accumulator == "dense" and dense_cells > dense_cell_guard:
        verdict = "dnf"
    if est_pairs > max_tasks:
        verdict = "dnf"
    return PlanPrediction(
        accumulator=plan.accumulator,
        tile_l=plan.tile_l,
        tile_r=plan.tile_r,
        est_output_density=plan.est_output_density,
        expected_tile_nnz=plan.expected_tile_nnz,
        grid_l=grid_l,
        grid_r=grid_r,
        est_nonempty_pairs=est_pairs,
        dense_cells=dense_cells,
        verdict=verdict,
    )


def lint_problem(
    L: int,
    R: int,
    C: int,
    nnz_l: int,
    nnz_r: int,
    machine: MachineSpec = DESKTOP,
    *,
    accumulator: str = "auto",
    tile_size: int | None = None,
    location: str = "",
) -> ExpressionReport:
    """Lint a contraction given its linearized problem parameters."""
    report = ExpressionReport()
    if min(L, R, C) < 1:
        report.add(make_diagnostic(
            "FSTC004",
            f"linearized extents must be >= 1, got L={L}, R={R}, C={C}",
            hint="empty index spaces cannot be contracted; check the shapes",
            location=location,
        ))
    for label, nnz, cells in (("left", nnz_l, L * C), ("right", nnz_r, C * R)):
        if nnz < 0:
            report.add(make_diagnostic(
                "FSTC005", f"{label} operand declares negative nnz ({nnz})",
                location=location,
            ))
        elif cells > 0 and nnz > cells:
            report.add(make_diagnostic(
                "FSTC005",
                f"{label} operand declares nnz={nnz} but has only "
                f"{cells} cells",
                hint="duplicate coordinates are merged before planning; "
                     "declare the post-merge count",
                location=location,
            ))
    if any(d.severity == "error" for d in report.diagnostics):
        report.verdict = "invalid"
        return report

    if accumulator not in ("auto", "dense", "sparse"):
        raise StaticCheckError(
            f"accumulator must be auto|dense|sparse, got {accumulator!r}"
        )
    prediction = predict_plan(
        L, R, C, nnz_l, nnz_r, machine,
        accumulator=accumulator, tile_size=tile_size,
    )
    report.prediction = prediction
    _lint_prediction(report, prediction, machine, location)
    report.verdict = prediction.verdict
    return report


def _lint_prediction(
    report: ExpressionReport,
    p: PlanPrediction,
    machine: MachineSpec,
    location: str,
) -> None:
    """Turn a :class:`PlanPrediction` into guard/anti-pattern findings."""
    from repro.core.accumulators import DEFAULT_DENSE_CELL_GUARD
    from repro.core.tiled_co import DEFAULT_MAX_TASKS

    if p.accumulator == "dense" and p.dense_cells > DEFAULT_DENSE_CELL_GUARD:
        report.add(make_diagnostic(
            "FSTC011",
            f"dense tile of {p.tile_l}x{p.tile_r} = {p.dense_cells} cells "
            f"exceeds the memory guard ({DEFAULT_DENSE_CELL_GUARD}); the run "
            "would raise WorkspaceLimitError before any work",
            hint="use a sparse accumulator or a smaller tile_size",
            location=location,
        ))
    if p.est_nonempty_pairs > DEFAULT_MAX_TASKS:
        report.add(make_diagnostic(
            "FSTC010",
            f"a {p.grid_l}x{p.grid_r} tile grid dispatches up to "
            f"{p.est_nonempty_pairs} tile-pair tasks, over the task guard "
            f"({DEFAULT_MAX_TASKS}): the paper's Table 3 DNF regime — the "
            "run would raise WorkspaceLimitError",
            hint="let Algorithm 7 choose the accumulator (sparse tiles grow "
                 "with output sparsity, collapsing the grid)",
            location=location,
        ))
    if (
        p.accumulator == "dense"
        and p.expected_tile_nnz < DENSE_ANTIPATTERN_EXPECTED_NNZ
    ):
        report.add(make_diagnostic(
            "FSTC013",
            f"dense accumulator with {p.expected_tile_nnz:.3e} expected "
            f"nonzeros per probe tile (model threshold "
            f"{DENSE_ANTIPATTERN_EXPECTED_NNZ:g}): almost every cell is "
            "written, cleared and scanned for nothing",
            hint="Algorithm 7 would choose sparse here; drop the override",
            location=location,
        ))
    if (
        p.accumulator == "sparse"
        and p.expected_tile_nnz >= DENSE_ANTIPATTERN_EXPECTED_NNZ
    ):
        report.add(make_diagnostic(
            "FSTC014",
            f"sparse accumulator with {p.expected_tile_nnz:.3e} expected "
            "nonzeros per probe tile: hash upserts cost more than dense "
            "writes at this density",
            hint="Algorithm 7 would choose dense here; drop the override",
            location=location,
        ))
    if p.est_output_density == 0.0:
        report.add(make_diagnostic(
            "FSTC015",
            "predicted output density is zero (an operand declares no "
            "nonzeros); the contraction is a no-op",
            location=location,
        ))
    # Degenerate tiles: a tile clamped to (or chosen as) a sliver makes
    # the grid explode and the per-tile workspace useless.
    for side, tile, grid in (("l", p.tile_l, p.grid_l), ("r", p.tile_r, p.grid_r)):
        if tile <= 1 and grid > 1:
            report.add(make_diagnostic(
                "FSTC012",
                f"tile_{side}={tile} degenerates that axis to one element "
                f"per tile ({grid} tiles)",
                hint="raise tile_size or let the machine model size the tile",
                location=location,
            ))


def _parse_subscripts_lint(
    subscripts: str, n_operands: int, report: ExpressionReport, location: str
):
    """Run the runtime parser, converting failures to FSTC001."""
    from repro.core.einsum import parse_subscripts

    try:
        return parse_subscripts(subscripts, n_operands)
    except PlanError as exc:
        report.add(make_diagnostic(
            "FSTC001", str(exc),
            hint="write explicit-output einsum, e.g. 'ij,jk->ik'",
            location=location,
        ))
        return None


def lint_expression(
    subscripts: str,
    shapes,
    *,
    nnz=None,
    machine: MachineSpec = DESKTOP,
    accumulator: str = "auto",
    tile_size: int | None = None,
    dtypes=None,
    location: str = "",
) -> ExpressionReport:
    """Lint an einsum-style contraction request end to end.

    Parameters mirror :func:`repro.core.expression.contract_expression`:
    ``shapes`` is one shape tuple per operand, ``nnz`` the expected
    nonzero counts (default 1% density), ``dtypes`` optional per-operand
    value dtypes.  Plan-level prediction (guards, anti-patterns) runs
    for two-operand expressions — the form every Table 3 benchmark
    takes; network requests get the structural lints plus per-index
    extent checking.
    """
    report = ExpressionReport()
    shapes_t = tuple(tuple(int(s) for s in shape) for shape in shapes)
    # Pre-scan for the specific network-structure failure (an index in
    # more than two operands) so it gets its own code instead of the
    # generic FSTC001 the parser would raise.
    if "->" in subscripts:
        raw_inputs = subscripts.replace(" ", "").split("->")[0].split(",")
        raw_counts: dict[str, int] = {}
        for sub in raw_inputs:
            for ch in set(sub):
                raw_counts[ch] = raw_counts.get(ch, 0) + 1
        over = {ch: n for ch, n in raw_counts.items() if n > 2}
        for ch, n in sorted(over.items()):
            report.add(make_diagnostic(
                "FSTC016",
                f"index {ch!r} appears in {n} operands; tensor-network "
                "contraction allows at most two",
                hint="factor the expression into a tree of pairwise "
                     "contractions with intermediate indices",
                location=location,
            ))
        if over:
            report.verdict = "invalid"
            return report
    parsed = _parse_subscripts_lint(subscripts, len(shapes_t), report, location)
    if parsed is None:
        report.verdict = "invalid"
        return report
    inputs, out_sub = parsed

    for k, (sub, shape) in enumerate(zip(inputs, shapes_t)):
        if len(sub) != len(shape):
            report.add(make_diagnostic(
                "FSTC002",
                f"operand {k} subscript {sub!r} names {len(sub)} modes but "
                f"shape {shape} has {len(shape)}",
                location=location,
            ))
        for m, extent in enumerate(shape):
            if extent < 1:
                report.add(make_diagnostic(
                    "FSTC004",
                    f"operand {k} mode {m} has non-positive extent {extent}",
                    location=location,
                ))

    extent_of: dict[str, tuple[int, int]] = {}  # index -> (operand, extent)
    for k, (sub, shape) in enumerate(zip(inputs, shapes_t)):
        for ch, extent in zip(sub, shape):
            if ch in extent_of and extent_of[ch][1] != extent:
                prev_k, prev_e = extent_of[ch]
                report.add(make_diagnostic(
                    "FSTC003",
                    f"index {ch!r} has extent {prev_e} in operand {prev_k} "
                    f"but {extent} in operand {k}",
                    hint="contracted and shared indices must agree exactly",
                    location=location,
                ))
            else:
                extent_of.setdefault(ch, (k, extent))

    counts: dict[str, int] = {}
    for sub in inputs:
        for ch in sub:
            counts[ch] = counts.get(ch, 0) + 1
    for ch, n in counts.items():
        if n == 1 and ch not in out_sub:
            report.add(make_diagnostic(
                "FSTC006",
                f"index {ch!r} appears in one operand and not in the output: "
                "it is summed out before contraction",
                hint="intentional marginalization is fine; a typo in the "
                     "output subscripts is not",
                location=location,
            ))

    if dtypes is not None:
        seen = [str(d) for d in dtypes]
        for k, d in enumerate(seen):
            if d not in _SUPPORTED_DTYPES:
                report.add(make_diagnostic(
                    "FSTC007",
                    f"operand {k} dtype {d!r} is not supported "
                    f"(supported: {', '.join(_SUPPORTED_DTYPES)})",
                    location=location,
                ))
        if len(set(seen) & set(_SUPPORTED_DTYPES)) > 1:
            report.add(make_diagnostic(
                "FSTC007",
                f"operands mix value dtypes {sorted(set(seen))}: the "
                "accumulator works in a single dtype",
                hint="cast the operands to a common dtype before contracting",
                location=location,
            ))

    if len(shapes_t) == 2 and not any(
        counts.get(ch, 0) == 2 for ch in inputs[0]
    ):
        report.add(make_diagnostic(
            "FSTC008",
            "the two operands share no index: this is an outer product, "
            "materializing up to nnz_l * nnz_r output nonzeros",
            hint="outer products are planned as explicit network steps; "
                 "make sure the blowup is intended",
            location=location,
        ))

    if any(d.severity == "error" for d in report.diagnostics):
        report.verdict = "invalid"
        return report

    if nnz is None:
        nnz = [max(1, int(0.01 * math.prod(s))) for s in shapes_t]
    nnz = [int(n) for n in nnz]
    if len(nnz) != len(shapes_t):
        raise StaticCheckError("need one nnz estimate per operand")
    for k, (n, shape) in enumerate(zip(nnz, shapes_t)):
        cells = math.prod(shape)
        if n < 0 or n > cells:
            report.add(make_diagnostic(
                "FSTC005",
                f"operand {k} declares nnz={n} for a shape with {cells} cells",
                location=location,
            ))
    if any(d.severity == "error" for d in report.diagnostics):
        report.verdict = "invalid"
        return report

    pairwise = len(shapes_t) == 2 and any(
        counts.get(ch, 0) == 2 for ch in inputs[0]
    )
    if not pairwise:
        # 3+ operands, or a 2-operand outer product: plan the network
        # and lint each predicted step.
        _lint_network(report, inputs, out_sub, shapes_t, nnz, machine, location)
        return report

    sub_a, sub_b = inputs
    shared = [ch for ch in sub_a if ch in sub_b]
    pairs = [(sub_a.index(ch), sub_b.index(ch)) for ch in shared]
    try:
        spec = ContractionSpec(shapes_t[0], shapes_t[1], pairs)
    except (ShapeError, PlanError) as exc:  # pragma: no cover - pre-checked
        report.add(make_diagnostic("FSTC001", str(exc), location=location))
        report.verdict = "invalid"
        return report
    problem = lint_problem(
        spec.L, spec.R, spec.C, nnz[0], nnz[1], machine,
        accumulator=accumulator, tile_size=tile_size, location=location,
    )
    report.diagnostics.extend(problem.diagnostics)
    report.prediction = problem.prediction
    report.verdict = problem.verdict
    return report


def _lint_network(
    report: ExpressionReport,
    inputs,
    out_sub: str,
    shapes_t,
    nnz,
    machine: MachineSpec,
    location: str,
) -> None:
    """Network-level lints: plan the network (``auto`` optimizer) and
    replay the pairwise guard prediction on every planned step."""
    from repro.network.ir import OperandMeta, TensorNetwork
    from repro.network.optimize import build_plan, resolve_optimizer

    metas = [
        OperandMeta.declared(sub, shape, n)
        for sub, shape, n in zip(inputs, shapes_t, nnz)
    ]
    network = TensorNetwork(metas, out_sub)
    components = network.connected_components()
    if len(components) > 1:
        report.add(make_diagnostic(
            "FSTC017",
            f"network splits into {len(components)} disconnected components "
            f"(operand groups {[list(c) for c in components]}); they are "
            "combined with explicit outer products",
            hint="a missing shared index silently turns a contraction into "
                 "an outer product — check the subscripts",
            location=location,
        ))

    try:
        plan = build_plan(
            network, machine, resolve_optimizer("auto", network)
        )
    except PlanError as exc:  # pragma: no cover - defensive
        report.add(make_diagnostic("FSTC001", str(exc), location=location))
        report.verdict = "invalid"
        return

    # Replay each planned contraction step through the pairwise guard
    # prediction, propagating intermediate nnz estimates along the path.
    extents = network.extents
    live: list[tuple[str, float]] = [
        (sub, float(min(meta.nnz, math.prod(extents[ch] for ch in sub) or 1)))
        for sub, meta in zip(plan.input_subs, network.operands)
    ]
    verdict = report.verdict
    for k, step in enumerate(plan.steps):
        (sub_l, nnz_l), (sub_r, nnz_r) = live[step.i], live[step.j]
        step_loc = (
            f"{location} step {k} ({step.subscripts})".strip()
            if location else f"step {k} ({step.subscripts})"
        )
        if step.kind == "contract":
            shared = [ch for ch in sub_l if ch in sub_r]
            L = math.prod(extents[ch] for ch in sub_l if ch not in shared)
            R = math.prod(extents[ch] for ch in sub_r if ch not in shared)
            C = math.prod(extents[ch] for ch in shared)
            p = predict_plan(
                max(1, L), max(1, R), max(1, C),
                int(nnz_l), int(nnz_r), machine,
            )
            _lint_prediction(report, p, machine, step_loc)
            if p.verdict == "dnf":
                verdict = "dnf"
        for pos in sorted((step.i, step.j), reverse=True):
            del live[pos]
        live.append((step.sub_out, float(step.est_nnz)))

    total_in = sum(m.nnz for m in network.operands)
    if plan.est_peak_nnz > NETWORK_BLOWUP_FACTOR * max(1, total_in):
        report.add(make_diagnostic(
            "FSTC018",
            f"the planned path materializes a peak intermediate of "
            f"~{plan.est_peak_nnz:.3g} nonzeros, over "
            f"{NETWORK_BLOWUP_FACTOR:g}x the {total_in} input nonzeros "
            f"(path {plan.path}, optimizer {plan.optimizer!r})",
            hint="try optimizer='dp' for small networks, or restructure "
                 "the expression to contract small extents first",
            location=location,
        ))
    report.verdict = verdict
