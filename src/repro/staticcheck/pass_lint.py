"""Soundness lints for optimizer-pass rewrites (``FSTC5xx``).

The pass pipeline's rewrite language is annotations-only (see
:mod:`repro.network.passes`), which makes verification mechanical: this
module re-derives the dataflow facts for a rewritten plan and checks
every annotation against them.  :func:`verify_rewrite` compares a
pass's output plan against its input; :func:`lint_plan_annotations`
checks a single (possibly deserialized) plan in isolation — useful for
plans loaded from a cache whose producing pipeline is unknown.

Checks, by code:

``FSTC501``
    The rewrite changed something outside the annotation language — a
    step's positions/subscripts/estimates, the plan interface
    (signature, subscripts, costs), the step count — or produced a plan
    whose structural skeleton no longer builds a
    :class:`~repro.network.dataflow.PlanGraph`.
``FSTC502``
    A ``cse_of`` annotation names a step that is not an earlier,
    non-reused root computing an identical expression key — the
    available-expression fact it relies on is stale or wrong.
``FSTC503``
    A ``cse_of`` annotation merges steps whose expressions match
    structurally but whose operand dtypes differ: reuse would change
    the result dtype.
``FSTC504``
    A hoist annotation crosses an operand mutation: the hoisted side is
    an intermediate (changes every execution), a declared-volatile
    operand, or the step builds no tables at all.
``FSTC505``
    A ``dead`` annotation contradicts the nnz-interval facts (the
    step's upper bound is positive), or the recorded zero premise is
    false/incomplete — the density model's monotonicity is violated.
``FSTC506`` (warning)
    The pipeline pessimized the modeled cost: the effective cost of the
    rewritten plan (skipping dead/reused steps) exceeds its input's.

All :mod:`repro.network` imports are function-level: ``staticcheck``
must stay importable without the network layer (and vice versa).
"""

from __future__ import annotations

from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

__all__ = [
    "lint_plan_annotations",
    "verify_rewrite",
    "self_test_passes",
]

#: PlanStep fields a pass may write.  Everything else is the step's
#: computational core and must survive any rewrite bit-for-bit.
ANNOTATION_FIELDS = ("cse_of", "dead", "hoist_l", "hoist_r")

#: NetworkPlan fields a pass may write.
PLAN_ANNOTATION_FIELDS = ("passes", "zero_operands")

_CORE_STEP_FIELDS = (
    "i", "j", "sub_l", "sub_r", "sub_out", "kind", "pairs",
    "est_nnz", "est_cost", "accumulator", "tile",
)

_INTERFACE_FIELDS = (
    "signature_key", "subscripts", "output", "optimizer", "machine_name",
    "input_subs", "final_sub", "est_total_cost", "est_peak_nnz",
)


def _loc(pass_name: str, detail: str) -> str:
    return f"pass {pass_name}: {detail}" if pass_name else detail


def effective_cost(plan) -> float:
    """Modeled cost of the steps the executor will actually run."""
    return sum(
        s.est_cost for s in plan.steps if not s.dead and s.cse_of < 0
    )


def lint_plan_annotations(
    plan,
    network,
    *,
    dtypes=None,
    volatile=(),
    pass_name: str = "",
) -> list[Diagnostic]:
    """Check one plan's pass annotations against its dataflow facts."""
    from repro.errors import PlanError
    from repro.network.dataflow import (
        NnzIntervals,
        PlanGraph,
        ReachableOperands,
        expression_key,
        run_analysis,
    )

    out: list[Diagnostic] = []
    try:
        graph = PlanGraph.from_plan(plan, network)
    except PlanError as exc:
        return [make_diagnostic(
            "FSTC501",
            f"plan no longer builds a dataflow graph: {exc}",
            hint="passes may only set annotation fields, never the "
                 "step skeleton",
            location=_loc(pass_name, "plan"),
        )]

    volatile_set = set(volatile)
    intervals = run_analysis(graph, NnzIntervals()).at_exit()
    reach = run_analysis(graph, ReachableOperands()).at_exit()

    # -- zero premise (plan.zero_operands) ------------------------------
    declared_zero = set(network.empty_operands())
    premise = set(plan.zero_operands)
    for pos in sorted(premise):
        if not (0 <= pos < network.n_operands):
            out.append(make_diagnostic(
                "FSTC505",
                f"zero premise names operand {pos}, but the network has "
                f"{network.n_operands} operands",
                location=_loc(pass_name, "zero_operands"),
            ))
        elif pos not in declared_zero:
            out.append(make_diagnostic(
                "FSTC505",
                f"zero premise claims operand {pos} is empty, but its "
                f"declared nnz is {network.operands[pos].nnz}",
                hint="the dead pass may only record operands with "
                     "declared nnz == 0",
                location=_loc(pass_name, "zero_operands"),
            ))

    # -- per-step annotations -------------------------------------------
    for op in graph.ops:
        step = op.step
        where = _loc(pass_name, f"step {op.index}")

        # monotonicity of the derived intervals (defensive; the transfer
        # maintains these by construction)
        lo, hi = intervals[op.out]
        cells = float(graph.values[op.out].cells)
        if not (0.0 <= lo <= hi <= cells):
            out.append(make_diagnostic(
                "FSTC505",
                f"nnz interval [{lo:.3g}, {hi:.3g}] violates "
                f"0 <= lo <= hi <= cells ({cells:.3g})",
                location=where,
            ))

        if step.dead:
            if hi > 0.0:
                out.append(make_diagnostic(
                    "FSTC505",
                    f"step annotated dead but its nnz upper bound is "
                    f"{hi:.3g} (> 0)",
                    hint="dead requires an exact-zero interval from "
                         "declared-empty operands",
                    location=where,
                ))
            else:
                # the zero inputs that justify the shortcut must be
                # recorded so the executor's runtime guard covers them
                unrecorded = (declared_zero & reach[op.out]) - premise
                if unrecorded:
                    out.append(make_diagnostic(
                        "FSTC505",
                        f"dead step's empty operands "
                        f"{sorted(unrecorded)} are missing from the "
                        f"plan's zero premise",
                        hint="record every empty operand in "
                             "zero_operands so the runtime guard is "
                             "complete",
                        location=where,
                    ))

        if step.cse_of >= 0:
            m = step.cse_of
            if not (0 <= m < op.index):
                out.append(make_diagnostic(
                    "FSTC502",
                    f"cse_of -> {m} is not an earlier step",
                    location=where,
                ))
            elif graph.ops[m].step.cse_of >= 0:
                out.append(make_diagnostic(
                    "FSTC502",
                    f"cse_of -> {m} targets a step that itself reuses "
                    f"step {graph.ops[m].step.cse_of} (targets must be "
                    f"roots)",
                    location=where,
                ))
            else:
                key_here = expression_key(graph, op.out)
                key_there = expression_key(graph, graph.ops[m].out)
                if key_here != key_there:
                    out.append(make_diagnostic(
                        "FSTC502",
                        f"cse_of -> {m} reuses a structurally different "
                        f"expression (stale available-expression fact)",
                        location=where,
                    ))
                elif dtypes is not None:
                    typed_here = expression_key(graph, op.out, dtypes)
                    typed_there = expression_key(
                        graph, graph.ops[m].out, dtypes
                    )
                    if typed_here != typed_there:
                        out.append(make_diagnostic(
                            "FSTC503",
                            f"cse_of -> {m} merges expressions over "
                            f"operands of different dtypes",
                            hint="CSE keys must include dtypes when "
                                 "they are known",
                            location=where,
                        ))

        for flag, side in (("hoist_l", op.left), ("hoist_r", op.right)):
            if not getattr(step, flag):
                continue
            if step.kind != "contract":
                out.append(make_diagnostic(
                    "FSTC504",
                    f"{flag} on an {step.kind!r} step, which builds no "
                    f"tiled tables",
                    location=where,
                ))
                continue
            value = graph.values[side]
            if not value.is_input:
                out.append(make_diagnostic(
                    "FSTC504",
                    f"{flag} hoists an intermediate (value of step "
                    f"{value.origin[1]}), which changes every execution",
                    location=where,
                ))
            elif value.origin[1] in volatile_set:
                out.append(make_diagnostic(
                    "FSTC504",
                    f"{flag} hoists operand {value.origin[1]}, which is "
                    f"declared volatile — the hoist crosses its "
                    f"mutation",
                    hint="volatile operands must be rebuilt each "
                         "execution",
                    location=where,
                ))
    return out


def verify_rewrite(
    before,
    after,
    network,
    *,
    dtypes=None,
    volatile=(),
    pass_name: str = "",
) -> list[Diagnostic]:
    """Check one pass's output plan against its input plan.

    Returns every finding; the caller (the
    :class:`~repro.network.passes.PassPipeline`) refuses the rewrite on
    any error-severity diagnostic.
    """
    out: list[Diagnostic] = []

    # -- interface immutability (FSTC501) -------------------------------
    for name in _INTERFACE_FIELDS:
        b, a = getattr(before, name), getattr(after, name)
        if b != a:
            out.append(make_diagnostic(
                "FSTC501",
                f"rewrite changed plan.{name} ({b!r} -> {a!r})",
                hint="passes may only set annotation fields",
                location=_loc(pass_name, "plan"),
            ))
    if len(before.steps) != len(after.steps):
        out.append(make_diagnostic(
            "FSTC501",
            f"rewrite changed the step count "
            f"({len(before.steps)} -> {len(after.steps)})",
            location=_loc(pass_name, "plan"),
        ))
    else:
        for k, (b, a) in enumerate(zip(before.steps, after.steps)):
            broken = [
                name for name in _CORE_STEP_FIELDS
                if getattr(b, name) != getattr(a, name)
            ]
            if broken:
                out.append(make_diagnostic(
                    "FSTC501",
                    f"rewrite changed core step field(s) "
                    f"{', '.join(broken)}",
                    location=_loc(pass_name, f"step {k}"),
                ))
    if tuple(after.passes[: len(before.passes)]) != tuple(before.passes):
        out.append(make_diagnostic(
            "FSTC501",
            f"rewrite rewrote the applied-pass record "
            f"({before.passes!r} -> {after.passes!r})",
            location=_loc(pass_name, "plan"),
        ))
    if any(d.severity == "error" for d in out):
        return out

    # -- annotation soundness against re-derived facts ------------------
    out.extend(lint_plan_annotations(
        after, network,
        dtypes=dtypes, volatile=volatile, pass_name=pass_name,
    ))
    if any(d.severity == "error" for d in out):
        return out

    # -- pessimization (FSTC506, warning) -------------------------------
    cost_b, cost_a = effective_cost(before), effective_cost(after)
    if cost_a > cost_b * (1.0 + 1e-12):
        out.append(make_diagnostic(
            "FSTC506",
            f"rewrite raised the effective modeled cost "
            f"{cost_b:.3e}s -> {cost_a:.3e}s",
            hint="a pass should never un-annotate shortcuts a prior "
                 "pass proved",
            location=_loc(pass_name, "plan"),
        ))
    return out


# -- self test ----------------------------------------------------------


def _self_test_fixtures():
    """(name, network, dtypes, volatile) fixtures for the self-test."""
    from repro.network.ir import TensorNetwork

    chain = TensorNetwork.parse(
        "ab,bc,cd,de->ae",
        [(16, 16)] * 4,
        nnz=[48, 48, 48, 48],
    )
    shared = TensorNetwork.parse(
        "ab,bc,dc,de->ae",
        [(12, 12), (12, 12), (12, 12), (12, 12)],
        nnz=[30, 40, 40, 30],
    )
    empty = TensorNetwork.parse(
        "ij,jk,kl->il",
        [(10, 10)] * 3,
        nnz=[25, 0, 25],
    )
    outer = TensorNetwork.parse(
        "ij,kl->ijkl",
        [(6, 7), (5, 4)],
        nnz=[10, 8],
    )
    return [
        ("chain", chain, ("float64",) * 4, ()),
        ("shared", shared, ("float64",) * 4, ()),
        ("empty-mid", empty, ("float64",) * 3, ()),
        ("outer", outer, ("float64", "float64"), (1,)),
        ("mixed-dtype", chain, ("float64", "float32", "float64", "float64"), ()),
    ]


def _corruptions():
    """(name, corrupt(plan) -> plan, expected code) adversarial cases.

    Each function takes a *clean, pipeline-optimized* plan and produces
    a deliberately unsound rewrite the verifier must refuse.
    """
    from dataclasses import replace

    def forward_cse(plan):
        steps = list(plan.steps)
        steps[0] = replace(steps[0], cse_of=len(steps) - 1)
        return replace(plan, steps=tuple(steps))

    def mismatched_cse(plan):
        steps = list(plan.steps)
        steps[-1] = replace(steps[-1], cse_of=0)
        return replace(plan, steps=tuple(steps))

    def false_dead(plan):
        steps = list(plan.steps)
        # the last step NOT already annotated dead has a positive nnz
        # upper bound (the dead pass annotates every exact-zero step)
        alive = [k for k, s in enumerate(steps) if not s.dead]
        if not alive:
            return None
        steps[alive[-1]] = replace(steps[alive[-1]], dead=True)
        return replace(plan, steps=tuple(steps))

    def false_premise(plan):
        return replace(plan, zero_operands=(0,))

    def hoist_intermediate(plan):
        steps = list(plan.steps)
        # the final step's left input is an intermediate in any
        # multi-step left-deep plan
        steps[-1] = replace(steps[-1], hoist_l=True, hoist_r=True)
        return replace(plan, steps=tuple(steps))

    def tampered_skeleton(plan):
        steps = list(plan.steps)
        steps[0] = replace(steps[0], sub_out=steps[0].sub_out[::-1] + "z")
        return replace(plan, steps=tuple(steps))

    def stripped_record(plan):
        return replace(plan, passes=())

    return [
        ("cse-forward-reference", forward_cse, "FSTC502"),
        ("cse-different-expression", mismatched_cse, "FSTC502"),
        ("dead-with-positive-bound", false_dead, "FSTC505"),
        ("false-zero-premise", false_premise, "FSTC505"),
        ("hoist-of-intermediate", hoist_intermediate, "FSTC504"),
        ("tampered-step-skeleton", tampered_skeleton, "FSTC501"),
        ("stripped-pass-record", stripped_record, "FSTC501"),
    ]


def self_test_passes() -> tuple[list[Diagnostic], dict]:
    """End-to-end check of the pass pipeline and its verifier.

    Runs every registered pipeline configuration over fixture networks
    (clean plans must verify with zero errors), then applies adversarial
    corruptions that the verifier must catch.  Returns the findings plus
    a summary dict; an empty error set means the gate passes.
    """
    from repro.errors import PlanError
    from repro.machine.specs import DESKTOP
    from repro.network.optimize import OPTIMIZERS, build_plan
    from repro.network.passes import PassContext, resolve_pipeline

    out: list[Diagnostic] = []
    n_clean = n_caught = n_scenarios = 0

    for fixture, network, dtypes, volatile in _self_test_fixtures():
        context = PassContext(dtypes=dtypes, volatile=volatile)
        for optimizer in OPTIMIZERS:
            base = build_plan(network, DESKTOP, optimizer)
            pipeline = resolve_pipeline("default")
            n_scenarios += 1
            try:
                optimized = pipeline.run(base, network, context=context)
            except PlanError as exc:
                out.append(make_diagnostic(
                    "FSTC501",
                    f"verifier refused a clean pipeline run: {exc}",
                    location=f"{fixture}/{optimizer}",
                ))
                continue
            residual = verify_rewrite(
                base, optimized, network,
                dtypes=dtypes, volatile=volatile, pass_name="pipeline",
            )
            errors = [d for d in residual if d.severity == "error"]
            if errors:
                out.extend(
                    d.with_location(f"{fixture}/{optimizer}: {d.location}")
                    for d in errors
                )
                continue
            n_clean += 1

            if optimizer != "dp" or not optimized.steps:
                continue
            for cname, corrupt, expected in _corruptions():
                bad = corrupt(optimized)
                if bad is None:  # precondition absent on this fixture
                    continue
                n_scenarios += 1
                found = verify_rewrite(
                    optimized, bad, network,
                    dtypes=dtypes, volatile=volatile, pass_name=cname,
                )
                flagged = {
                    d.code for d in found if d.severity in ("error", "warning")
                }
                if expected in flagged:
                    n_caught += 1
                else:
                    out.append(make_diagnostic(
                        "FSTC501",
                        f"verifier missed corruption {cname!r} "
                        f"(expected {expected}, flagged "
                        f"{sorted(flagged) or 'nothing'})",
                        location=f"{fixture}/{optimizer}",
                    ))

    summary = {
        "scenarios": n_scenarios,
        "clean_pipelines": n_clean,
        "corruptions_caught": n_caught,
        "errors": sum(1 for d in out if d.severity == "error"),
    }
    return out, summary
