"""Consistency audit between the ``FSTC`` code registry and its docs.

Codes are stable API: ``docs/staticcheck.md`` catalogues every code with
its default severity and a minimal triggering example, and tests, CI
gates and suppression pragmas refer to the codes by name.  This audit
(part of ``python -m repro check --self``) catches the registry and the
catalogue drifting apart: a code added to
:data:`repro.staticcheck.diagnostics.CODES` but never documented, a
documented code missing from the registry, or a severity mismatch.
Each disagreement is reported as ``FSTC105``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.staticcheck.diagnostics import CODES, Diagnostic, make_diagnostic

__all__ = [
    "audit_code_registry",
    "documented_codes",
    "duplicate_codes",
    "find_docs",
]

#: Catalogue entry form: ``**FSTC008** (warning) — ...``.
_ENTRY_RE = re.compile(r"\*\*(FSTC\d{3})\*\*\s*\((error|warning|info)\)")


def find_docs(start: Path | None = None) -> Path | None:
    """Locate ``docs/staticcheck.md`` relative to the package checkout.

    Returns ``None`` when the tree layout does not carry the docs (e.g.
    an installed wheel) — the audit then reports nothing rather than
    failing on a legitimate layout.
    """
    here = start if start is not None else Path(__file__).resolve()
    for parent in [here] + list(here.parents):
        candidate = parent / "docs" / "staticcheck.md"
        if candidate.is_file():
            return candidate
    return None


def documented_codes(text: str) -> dict[str, str]:
    """Code -> documented severity, parsed from the catalogue text."""
    return {code: sev for code, sev in _ENTRY_RE.findall(text)}


def duplicate_codes(text: str) -> dict[str, int]:
    """Code -> entry count, for codes catalogued more than once."""
    counts: dict[str, int] = {}
    for code, _ in _ENTRY_RE.findall(text):
        counts[code] = counts.get(code, 0) + 1
    return {code: n for code, n in counts.items() if n > 1}


def audit_code_registry(docs_path: Path | None = None) -> list[Diagnostic]:
    """Compare :data:`CODES` against the documented catalogue.

    Returns one ``FSTC105`` diagnostic per disagreement; an empty list
    when registry and docs agree (or when no docs file can be found).
    """
    if docs_path is None:
        docs_path = find_docs()
        if docs_path is None:
            return []
    text = Path(docs_path).read_text()
    documented = documented_codes(text)
    location = str(docs_path)

    out: list[Diagnostic] = []
    for code, (severity, title) in sorted(CODES.items()):
        if code not in documented:
            out.append(make_diagnostic(
                "FSTC105",
                f"{code} ({severity}, {title!r}) is registered but not "
                "documented in the code catalogue",
                hint="add a catalogue entry with a minimal triggering example",
                location=location,
            ))
        elif documented[code] != severity:
            out.append(make_diagnostic(
                "FSTC105",
                f"{code} is documented as {documented[code]!r} but the "
                f"registry default is {severity!r}",
                hint="codes are stable, severities can change — update the docs",
                location=location,
            ))
    for code in sorted(set(documented) - set(CODES)):
        out.append(make_diagnostic(
            "FSTC105",
            f"{code} is documented but missing from the registry",
            hint="retired codes stay reserved: keep a tombstone entry in "
                 "the docs and drop the severity marker, or restore the code",
            location=location,
        ))
    for code, n in sorted(duplicate_codes(text).items()):
        out.append(make_diagnostic(
            "FSTC105",
            f"{code} has {n} catalogue entries (codes are documented "
            "exactly once)",
            hint="merge the duplicate entries",
            location=location,
        ))
    return out
