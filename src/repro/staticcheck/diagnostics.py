"""Diagnostic records and the ``FSTC`` error-code registry.

Every finding the static checker produces — from the expression/plan
linter, the AST lint pass, or the task-graph hazard analysis — is a
:class:`Diagnostic` carrying a stable ``FSTC0xx``/``FSTC1xx``/``FSTC2xx``
code, a severity, a human-readable message, and a fix hint.  Codes are
stable API: tests, CI gates, and suppression pragmas refer to them, so
codes are never renumbered (retired codes stay reserved).

Code ranges
-----------
``FSTC0xx``
    Expression/plan lints: statically-knowable problems with a
    contraction request (shapes, subscripts, nnz, predicted plan).
``FSTC1xx``
    Source lints: AST rules over the ``repro`` code base itself.
``FSTC2xx``
    Task-graph hazards: conflicts detectable from tile-task write sets
    before execution.
``FSTC3xx``
    Service/shard configuration lints.
``FSTC4xx``
    Backend-layer discipline: kernel code reaching around the
    :mod:`repro.backends` interface.
``FSTC5xx``
    Optimizer-pass soundness: plan rewrites checked against re-derived
    dataflow facts.
``FSTC6xx``
    Autotune configuration lints: online-exploration knobs that would
    burn serving latency or lose learned state.
``FSTC7xx``
    Streaming lints: dependency-tracker soundness (stale reads,
    unreachable invalidation) and mutation-log/staleness configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "Diagnostic",
    "Severity",
    "CODES",
    "ERROR",
    "WARNING",
    "INFO",
    "make_diagnostic",
    "has_errors",
    "max_exit_status",
    "render_diagnostics",
    "diagnostics_to_json",
]

#: Severity levels, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

Severity = str

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``location`` is free-form context: ``file.py:42`` for source lints,
    ``case NIPS_2 [desktop, dense]`` for plan lints, ``task 7 vs 12``
    for hazards.
    """

    code: str
    severity: Severity
    message: str
    hint: str = ""
    location: str = ""
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        loc = f"{self.location}: " if self.location else ""
        tail = f"  [hint: {self.hint}]" if self.hint else ""
        return f"{loc}{self.code} {self.severity}: {self.message}{tail}"

    def to_json(self) -> dict:
        """JSON-friendly dict (stable field names; CI gates consume
        this via ``python -m repro check --json``)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    def with_location(self, location: str) -> "Diagnostic":
        return replace(self, location=location)


#: code -> (default severity, one-line title).  ``docs/staticcheck.md``
#: documents each with a minimal triggering example.
CODES: dict[str, tuple[Severity, str]] = {
    # --- expression/plan lints -------------------------------------------
    "FSTC001": (ERROR, "malformed einsum subscripts"),
    "FSTC002": (ERROR, "subscript arity does not match operand rank"),
    "FSTC003": (ERROR, "index used with conflicting extents"),
    "FSTC004": (ERROR, "non-positive mode extent"),
    "FSTC005": (ERROR, "nonzero count inconsistent with the shape"),
    "FSTC006": (WARNING, "index is implicitly summed out"),
    "FSTC007": (ERROR, "operand dtype unsupported or mismatched"),
    "FSTC008": (WARNING, "operands share no contraction index"),
    "FSTC010": (ERROR, "predicted DNF: tile-task grid exceeds the task guard"),
    "FSTC011": (ERROR, "predicted workspace overflow: dense tile exceeds the cell guard"),
    "FSTC012": (WARNING, "degenerate tile size"),
    "FSTC013": (WARNING, "dense accumulator on a predicted-sparse output"),
    "FSTC014": (WARNING, "sparse accumulator on a predicted-dense output"),
    "FSTC015": (INFO, "predicted output density is zero"),
    # --- network lints ---------------------------------------------------
    "FSTC016": (ERROR, "index appears in more than two operands"),
    "FSTC017": (INFO, "network has disconnected components (outer products)"),
    "FSTC018": (WARNING, "predicted intermediate blowup along the planned path"),
    # --- AST source lints ------------------------------------------------
    "FSTC101": (ERROR, "per-nonzero Python loop in a kernel function"),
    "FSTC102": (ERROR, "bare builtin exception raised instead of a repro.errors subclass"),
    "FSTC103": (ERROR, "nondeterministic call inside a kernel module"),
    "FSTC104": (ERROR, "public module does not declare __all__"),
    "FSTC105": (ERROR, "diagnostic registry and docs/staticcheck.md disagree"),
    # --- task-graph hazards ----------------------------------------------
    "FSTC201": (ERROR, "write-write conflict on a shared accumulator tile"),
    "FSTC202": (WARNING, "order-dependent floating-point reduction"),
    "FSTC203": (INFO, "task grid smaller than the worker count"),
    # --- service configuration lints -------------------------------------
    "FSTC301": (ERROR, "service admission queue is unbounded or undrainable"),
    "FSTC302": (WARNING, "request deadline below the model-predicted cost floor"),
    "FSTC303": (WARNING, "worker pool oversubscribes the machine's cores"),
    "FSTC304": (WARNING, "shard processes oversubscribe the host's CPUs"),
    "FSTC305": (WARNING, "consistent-hash ring is pathologically unbalanced"),
    # --- backend-layer discipline -----------------------------------------
    "FSTC401": (ERROR, "direct NumPy kernel call outside the backend layer"),
    # --- autotune configuration lints -------------------------------------
    "FSTC601": (ERROR, "autotune exploration rate outside the sane band"),
    "FSTC602": (WARNING, "learned autotune state is not persisted"),
    "FSTC603": (ERROR, "champion promotion without a positive margin"),
    "FSTC604": (WARNING, "autotune trials floor below two samples"),
    # --- streaming lints ---------------------------------------------------
    "FSTC701": (ERROR, "stale cached artifact is still registered for reads"),
    "FSTC702": (ERROR, "artifact tracked with no dependencies (invalidation cannot reach it)"),
    "FSTC703": (WARNING, "staleness threshold misprices incremental patching"),
    "FSTC704": (WARNING, "mutation log is unbounded or effectively unbounded"),
    # --- optimizer-pass soundness -----------------------------------------
    "FSTC501": (ERROR, "unsound plan rewrite (structure or interface changed)"),
    "FSTC502": (ERROR, "stale available-expression reuse (CSE target mismatch)"),
    "FSTC503": (ERROR, "CSE across incompatible operand dtypes"),
    "FSTC504": (ERROR, "table hoist crosses an operand mutation"),
    "FSTC505": (ERROR, "density-model monotonicity violated by a rewrite"),
    "FSTC506": (WARNING, "pass pipeline pessimized the modeled cost"),
}


def make_diagnostic(
    code: str,
    message: str,
    *,
    hint: str = "",
    location: str = "",
    severity: Severity | None = None,
    data: dict | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from the registry."""
    from repro.errors import StaticCheckError

    if code not in CODES:
        raise StaticCheckError(f"unknown diagnostic code {code!r}")
    sev = severity if severity is not None else CODES[code][0]
    if sev not in _SEVERITY_ORDER:
        raise StaticCheckError(f"unknown severity {sev!r}")
    return Diagnostic(
        code=code, severity=sev, message=message, hint=hint,
        location=location, data=dict(data or {}),
    )


def has_errors(diagnostics) -> bool:
    """True when any diagnostic carries ``error`` severity."""
    return any(d.severity == ERROR for d in diagnostics)


def max_exit_status(diagnostics) -> int:
    """CLI convention: 1 when errors are present, else 0."""
    return 1 if has_errors(diagnostics) else 0


def diagnostics_to_json(diagnostics) -> dict:
    """The ``--json`` document: sorted findings plus severity tallies."""
    ordered = sorted(
        diagnostics,
        key=lambda d: (_SEVERITY_ORDER[d.severity], d.code, d.location),
    )
    return {
        "findings": [d.to_json() for d in ordered],
        "errors": sum(1 for d in ordered if d.severity == ERROR),
        "warnings": sum(1 for d in ordered if d.severity == WARNING),
    }


def render_diagnostics(diagnostics, *, verbose: bool = True) -> str:
    """Sort (errors first, then by code/location) and format findings."""
    ordered = sorted(
        diagnostics,
        key=lambda d: (_SEVERITY_ORDER[d.severity], d.code, d.location),
    )
    lines = [d.render() for d in ordered]
    if verbose:
        n_err = sum(1 for d in ordered if d.severity == ERROR)
        n_warn = sum(1 for d in ordered if d.severity == WARNING)
        n_info = len(ordered) - n_err - n_warn
        lines.append(
            f"{len(ordered)} finding(s): {n_err} error(s), "
            f"{n_warn} warning(s), {n_info} info"
        )
    return "\n".join(lines)
