"""Autotune-configuration lints (``FSTC6xx``).

Online exploration spends real serving latency, so a bad configuration
is not just suboptimal — it is a production incident waiting on traffic:

* an **exploration rate above 0.5** makes exploration the workload
  rather than a measurement tax, and a **non-positive rate** with
  autotuning enabled configures a tuner that can never learn
  (``FSTC601``, error);
* **unpersisted learned state** relearns from zero on every restart —
  every process pays the full exploration cost again and shard workers
  cannot warm-start or merge (``FSTC602``, warning);
* a **zero promotion margin** lets measurement noise flip the champion
  back and forth — promotion must demand a strict win (``FSTC603``,
  error);
* a **trials floor below 2** promotes or rolls back on a single sample,
  which on wall-clock measurements is promotion by coin flip
  (``FSTC604``, warning).

Configs are duck-typed, like the ``FSTC3xx`` service lints: anything
carrying ``explore_rate``/``min_trials``/``promote_margin``/
``state_path`` — or the ``autotune_``-prefixed spellings used by
:class:`repro.serve.ServiceConfig` — lints the same way, so the checks
run on plain stand-ins in tests and on either config layer.
"""

from __future__ import annotations

from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

__all__ = ["lint_autotune_config"]

#: Above this fraction of eligible traffic, exploration is the workload.
MAX_SANE_EXPLORE_RATE = 0.5

_MISSING = object()


def _knob(config, name: str, default):
    """Read a knob under either its bare or ``autotune_``-prefixed name."""
    value = getattr(config, name, _MISSING)
    if value is _MISSING:
        value = getattr(config, f"autotune_{name}", _MISSING)
    return default if value is _MISSING else value


def lint_autotune_config(
    config, *, location: str = "autotune config"
) -> list[Diagnostic]:
    """``FSTC601``–``FSTC604`` findings for one autotune configuration.

    ``config`` is duck-typed: a :class:`repro.autotune.TunerConfig`, a
    :class:`repro.serve.ServiceConfig` (``autotune_*`` fields), or any
    stand-in.  An object whose ``autotune`` attribute is present and
    false is skipped entirely — a disabled tuner has no unsafe knobs.
    """
    if not _knob(config, "autotune", True):
        return []
    out: list[Diagnostic] = []

    rate = float(_knob(config, "explore_rate", 0.05))
    if rate <= 0.0:
        out.append(make_diagnostic(
            "FSTC601",
            f"exploration rate {rate} can never explore; the tuner "
            "records measurements but no challenger is ever tried",
            hint="set explore_rate in (0, 0.5] or disable autotuning",
            location=location,
        ))
    elif rate > MAX_SANE_EXPLORE_RATE:
        out.append(make_diagnostic(
            "FSTC601",
            f"exploration rate {rate} makes exploration the workload "
            f"(more than {MAX_SANE_EXPLORE_RATE:.0%} of eligible calls "
            "would run challengers)",
            hint=f"keep explore_rate at or below {MAX_SANE_EXPLORE_RATE}",
            location=location,
        ))

    if _knob(config, "state_path", None) is None:
        out.append(make_diagnostic(
            "FSTC602",
            "learned autotune state is not persisted; every restart "
            "relearns from zero and shard workers cannot warm-start",
            hint="set a state_path (or the router's cache_dir) so "
                 "weights, measurements and champions survive restarts",
            location=location,
        ))

    margin = float(_knob(config, "promote_margin", 0.10))
    if margin <= 0.0:
        out.append(make_diagnostic(
            "FSTC603",
            f"promotion margin {margin} promotes on any mean difference; "
            "measurement noise would oscillate the champion",
            hint="require a strictly positive promote_margin "
                 "(0.05-0.2 is a sane band)",
            location=location,
        ))

    trials = int(_knob(config, "min_trials", 3))
    if trials < 2:
        out.append(make_diagnostic(
            "FSTC604",
            f"trials floor {trials} promotes or rolls back on a single "
            "wall-clock sample",
            hint="set min_trials to at least 2 (3+ recommended)",
            location=location,
        ))
    return out
