"""Task-graph hazard analysis for tile-task schedules.

FaSTCC's parallel section is safe by construction: every tile pair
``(i, j)`` writes exactly one disjoint output tile, so tasks commute and
the dynamic queue may run them in any order.  That safety is an
*invariant of the task list*, not of the executor — a task list with a
repeated tile pair double-accumulates its tile, and a custom kernel
whose tasks share an accumulator tile reintroduces the write-write race
the tiling removed.  This module checks those invariants **before
execution**, from the write sets alone.

Checks
------
``FSTC201``
    Two tasks write the same accumulator tile.  Under the thread-pool
    executor this is a write-write conflict (lost updates on the shared
    tile); even inline it double-counts drained output.
``FSTC202``
    Several tasks *reduce into* the same output region with
    floating-point addition: the result then depends on schedule order
    (fp addition is not associative).  Reported as a warning — the
    deviation is bounded by rounding — unless the reduction is declared
    exact (integer/boolean semirings).
``FSTC203``
    Fewer tasks than workers: the schedule cannot use every worker, so
    simulated/measured speedup saturates at the task count.

Write sets come from :func:`write_sets_for_pairs` (the kernel's
dispatch list), from a :class:`~repro.core.tiled_co.ContractionStats`
(``stats.task_pairs``), or are supplied directly for custom task
graphs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.errors import StaticCheckError
from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

__all__ = [
    "TileTask",
    "analyze_task_graph",
    "write_sets_for_pairs",
    "hazards_for_stats",
    "assert_disjoint_writes",
]


@dataclass(frozen=True)
class TileTask:
    """One schedulable task and the accumulator tiles it writes.

    ``writes`` members are hashable tile identities — ``(i, j)`` grid
    coordinates for the FaSTCC kernel.  ``reduces`` marks the writes as
    read-modify-write accumulation (the kernel's upsert) rather than
    exclusive ownership.
    """

    task_id: int
    writes: frozenset = field(default_factory=frozenset)
    reduces: bool = True


def write_sets_for_pairs(pairs: Sequence[tuple]) -> list[TileTask]:
    """Tasks for a tile-pair dispatch list: task ``k`` writes tile
    ``pairs[k]`` (exactly the write set of Algorithm 6's task ``(i, j)``)."""
    return [
        TileTask(task_id=k, writes=frozenset([tuple(p)]))
        for k, p in enumerate(pairs)
    ]


def analyze_task_graph(
    tasks: Sequence[TileTask],
    *,
    n_workers: int | None = None,
    exact_reduction: bool = False,
) -> list[Diagnostic]:
    """Flag hazards in a task graph from its write sets.

    ``exact_reduction`` declares the accumulation order-insensitive
    (integer or boolean semiring), downgrading shared reductions from a
    finding to silence; floating-point addition (the default) keeps the
    FSTC202 warning.
    """
    diags: list[Diagnostic] = []
    writers: dict[Hashable, list[int]] = defaultdict(list)
    for task in tasks:
        for tile in task.writes:
            writers[tile].append(task.task_id)

    for tile, ids in sorted(writers.items(), key=lambda kv: str(kv[0])):
        if len(ids) < 2:
            continue
        shown = ", ".join(str(i) for i in ids[:4]) + ("…" if len(ids) > 4 else "")
        reducing = all(t.reduces for t in tasks if t.task_id in set(ids))
        if not reducing:
            diags.append(make_diagnostic(
                "FSTC201",
                f"tasks {shown} all write accumulator tile {tile}: "
                "write-write conflict (lost updates under any parallel "
                "schedule)",
                hint="repartition so each tile has exactly one owner task",
                location=f"tile {tile}",
            ))
        else:
            # Reducing writers: correct only if the executor serializes
            # them AND the reduction is order-insensitive.  The FaSTCC
            # queue gives no such serialization across tasks.
            diags.append(make_diagnostic(
                "FSTC201",
                f"tasks {shown} concurrently reduce into accumulator tile "
                f"{tile}: the task queue does not serialize distinct tasks, "
                "so updates race",
                hint="merge them into one task or give each its own tile "
                     "and combine at drain",
                location=f"tile {tile}",
            ))
            if not exact_reduction:
                diags.append(make_diagnostic(
                    "FSTC202",
                    f"reduction into tile {tile} spans {len(ids)} tasks: "
                    "floating-point accumulation order — and thus the "
                    "result — depends on the schedule",
                    hint="declare exact_reduction=True for integer "
                         "semirings, or canonicalize the combine order",
                    location=f"tile {tile}",
                ))

    if n_workers is not None and n_workers > 1 and len(tasks) < n_workers:
        diags.append(make_diagnostic(
            "FSTC203",
            f"{len(tasks)} task(s) for {n_workers} workers: speedup is "
            f"capped at {max(1, len(tasks))}x regardless of scheduling",
            hint="shrink the tile size to create more tasks, or lower "
                 "n_workers",
        ))
    return diags


def hazards_for_stats(stats, *, n_workers: int | None = None) -> list[Diagnostic]:
    """Analyze a recorded run's dispatch list (``stats.task_pairs``)."""
    pairs = getattr(stats, "task_pairs", None)
    if pairs is None:
        raise StaticCheckError(
            "stats object has no task_pairs; pass a ContractionStats from "
            "a fastcc run"
        )
    return analyze_task_graph(write_sets_for_pairs(pairs), n_workers=n_workers)


def assert_disjoint_writes(
    write_sets: Sequence[frozenset | set | tuple | list],
) -> None:
    """Pre-execution gate: raise ``SchedulerError`` on any shared tile.

    Used by :meth:`repro.parallel.taskqueue.TaskQueue.run` when callers
    hand over per-task write sets — the cheap O(total writes) subset of
    the full analysis, suitable for every dispatch.
    """
    from repro.errors import SchedulerError

    owner: dict[Hashable, int] = {}
    for task_id, writes in enumerate(write_sets):
        for tile in writes:
            prev = owner.get(tile)
            if prev is not None:
                raise SchedulerError(
                    f"write-write hazard: tasks {prev} and {task_id} both "
                    f"write accumulator tile {tile}; the task list violates "
                    "the disjoint-tile invariant (FSTC201)"
                )
            owner[tile] = task_id
