"""Analytic data-access cost model.

Implements the closed forms of the paper's Table 1 (untiled CI/CM/CO)
and Section 5.3 (tiled CO): hash-query counts, retrieved data volume,
and accumulator size, as functions of the linearized problem parameters
``(L, R, C, nnz_L, nnz_R)`` and, for the tiled scheme, the tile sizes.

These predictions are validated against measured counters in
``benchmarks/bench_table1_loop_orders.py`` and the analysis tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.machine.specs import MachineSpec
from repro.util.arrays import ceil_div

__all__ = [
    "ProblemShape",
    "CostEstimate",
    "AccessCostModel",
    "CostWeights",
    "DEFAULT_WEIGHTS",
    "fit_cost_weights",
]


@dataclass(frozen=True)
class ProblemShape:
    """Linearized contraction parameters (Section 2.1 notation)."""

    L: int
    R: int
    C: int
    nnz_L: int
    nnz_R: int

    def __post_init__(self):
        if min(self.L, self.R, self.C) < 1:
            raise ValueError("extents must be >= 1")
        if min(self.nnz_L, self.nnz_R) < 0:
            raise ValueError("nonzero counts must be >= 0")

    @property
    def density_L(self) -> float:
        """``p_L = nnz_L / (L * C)`` (Section 5.1)."""
        return self.nnz_L / (self.L * self.C)

    @property
    def density_R(self) -> float:
        """``p_R = nnz_R / (C * R)`` (Section 5.1)."""
        return self.nnz_R / (self.C * self.R)


@dataclass(frozen=True)
class CostEstimate:
    """Predicted data-access costs for one scheme (Table 1 row)."""

    scheme: str
    queries: float
    data_volume: float
    accumulator_cells: float


@dataclass(frozen=True)
class CostWeights:
    """Per-event costs, in cycles, that turn access counts into time.

    The defaults are the hard-coded machine assumptions the paper's
    platform comparison uses; :func:`fit_cost_weights` refits them from
    measured runs so the time proxy converges toward the observed
    machine (the runtime layer's calibration loop).
    """

    query_cost: float = 30.0
    element_cost: float = 1.0
    update_hit_cost: float = 2.0
    update_miss_cost: float = 60.0
    ghz: float = 3.0

    def __post_init__(self):
        for name in ("query_cost", "element_cost", "update_hit_cost",
                     "update_miss_cost", "ghz"):
            if getattr(self, name) < 0 or (name == "ghz" and self.ghz <= 0):
                raise ValueError(f"{name} must be positive, got "
                                 f"{getattr(self, name)}")

    def scaled(self, alpha: float) -> "CostWeights":
        """Uniformly rescale every per-event cost by ``alpha``."""
        return replace(
            self,
            query_cost=self.query_cost * alpha,
            element_cost=self.element_cost * alpha,
            update_hit_cost=self.update_hit_cost * alpha,
            update_miss_cost=self.update_miss_cost * alpha,
        )

    def seconds(
        self, queries: float, data_volume: float, updates: float, *,
        workspace_fits: bool,
    ) -> float:
        """Time proxy for one execution's access counts."""
        update_cost = self.update_hit_cost if workspace_fits else self.update_miss_cost
        cycles = (
            queries * self.query_cost
            + data_volume * self.element_cost
            + updates * update_cost
        )
        return cycles / (self.ghz * 1e9)


#: The uncalibrated machine assumptions (class constants of
#: :class:`AccessCostModel`, packaged).
DEFAULT_WEIGHTS = CostWeights()


def fit_cost_weights(
    samples: Sequence[tuple[float, float, float, bool]],
    seconds: Sequence[float],
    *,
    base: CostWeights = DEFAULT_WEIGHTS,
) -> CostWeights:
    """Refit the cost weights from measured executions.

    ``samples`` holds one ``(queries, data_volume, accum_updates,
    workspace_fits)`` tuple per measured run and ``seconds`` the matching
    wall-clock kernel times.  With few or degenerate samples the fit
    falls back to a single least-squares scale factor applied to
    ``base`` — always well-posed, and already enough to absorb the
    host-vs-model speed gap.  With >= 4 samples a clipped least squares
    refits the three per-event costs independently (the hit/miss update
    costs keep the base ratio, since one run only ever exercises one of
    the two regimes).
    """
    import numpy as np

    if len(samples) != len(seconds) or not samples:
        raise ValueError("need equally many (non-zero) samples and seconds")
    feats = np.array(
        [[q, v, u if fits else 0.0, 0.0 if fits else u]
         for q, v, u, fits in samples],
        dtype=np.float64,
    )
    meas = np.asarray(seconds, dtype=np.float64) * (base.ghz * 1e9)  # cycles

    base_vec = np.array([base.query_cost, base.element_cost,
                         base.update_hit_cost, base.update_miss_cost])
    predicted = feats @ base_vec
    denom = float(predicted @ predicted)
    alpha = float(predicted @ meas) / denom if denom > 0 else 1.0
    if not np.isfinite(alpha):
        alpha = 1.0
    alpha = max(alpha, 1e-12)
    scaled = base.scaled(alpha)

    if len(samples) < 4:
        return scaled
    # Full refit: solve for (query, element, update) with the update
    # column folding hit/miss through the base ratio, then split back.
    miss_ratio = base.update_miss_cost / max(base.update_hit_cost, 1e-12)
    design = np.column_stack(
        [feats[:, 0], feats[:, 1], feats[:, 2] + feats[:, 3] * miss_ratio]
    )
    try:
        coef, _, rank, _ = np.linalg.lstsq(design, meas, rcond=None)
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return scaled
    if rank < 3 or np.any(~np.isfinite(coef)) or np.any(coef <= 0):
        return scaled
    return replace(
        base,
        query_cost=float(coef[0]),
        element_cost=float(coef[1]),
        update_hit_cost=float(coef[2]),
        update_miss_cost=float(coef[2] * miss_ratio),
    )


class AccessCostModel:
    """Table 1 / Section 5.3 closed forms, optionally weighted by a machine.

    The machine parameter only matters for :meth:`estimated_seconds`,
    which converts abstract counts into a rough time proxy for the
    platform-comparison harness; the count formulas themselves are
    machine-independent.
    """

    def __init__(
        self,
        shape: ProblemShape,
        machine: MachineSpec | None = None,
        weights: CostWeights | None = None,
    ):
        self.shape = shape
        self.machine = machine
        self.weights = weights if weights is not None else CostWeights(
            query_cost=self.QUERY_COST,
            element_cost=self.ELEMENT_COST,
            update_hit_cost=self.UPDATE_HIT_COST,
            update_miss_cost=self.UPDATE_MISS_COST,
        )

    # -- untiled schemes (Table 1) -------------------------------------

    def ci(self) -> CostEstimate:
        """Contraction-inner: O(L*R) queries, O(L*nnz_R + R*nnz_L) volume."""
        s = self.shape
        return CostEstimate(
            scheme="CI",
            queries=float(s.L) * s.R,
            data_volume=float(s.L) * s.nnz_R + float(s.R) * s.nnz_L,
            accumulator_cells=1.0,
        )

    def cm(self) -> CostEstimate:
        """Contraction-middle: L + nnz_L queries, nnz_L + nnz_L*nnz_R/C volume."""
        s = self.shape
        return CostEstimate(
            scheme="CM",
            queries=float(s.L) + s.nnz_L,
            data_volume=float(s.nnz_L) + float(s.nnz_L) * s.nnz_R / s.C,
            accumulator_cells=float(s.R),
        )

    def co(self) -> CostEstimate:
        """Contraction-outer: 2C queries, nnz_L + nnz_R volume."""
        s = self.shape
        return CostEstimate(
            scheme="CO",
            queries=2.0 * s.C,
            data_volume=float(s.nnz_L) + s.nnz_R,
            accumulator_cells=float(s.L) * s.R,
        )

    # -- tiled CO (Section 5.3) ----------------------------------------

    def tiled_co(self, tile_l: int, tile_r: int) -> CostEstimate:
        """2-D tiled CO with tile sizes ``(T_L, T_R)``.

        ``N_queries = 2 * C * NL * NR`` and
        ``Data_Vol = nnz_L * NR + nnz_R * NL`` (Section 5.3): both shrink
        inversely with tile size, while the accumulator is capped at
        ``T_L * T_R`` cells.
        """
        s = self.shape
        nl = ceil_div(s.L, tile_l)
        nr = ceil_div(s.R, tile_r)
        return CostEstimate(
            scheme=f"TiledCO[{tile_l}x{tile_r}]",
            queries=2.0 * s.C * nl * nr,
            data_volume=float(s.nnz_L) * nr + float(s.nnz_R) * nl,
            accumulator_cells=float(tile_l) * tile_r,
        )

    def all_untiled(self) -> list[CostEstimate]:
        return [self.ci(), self.cm(), self.co()]

    # -- time proxy -----------------------------------------------------

    #: Cost weights, in arbitrary "cycles": a hash query is a dependent
    #: random access; retrieving one payload element is a streaming read;
    #: a workspace update that misses cache costs a DRAM round-trip.
    QUERY_COST = 30.0
    ELEMENT_COST = 1.0
    UPDATE_HIT_COST = 2.0
    UPDATE_MISS_COST = 60.0

    def workspace_fits(self, estimate: CostEstimate) -> bool:
        """Whether the scheme's accumulator fits one core's L3 share."""
        if self.machine is None:
            raise ValueError("a MachineSpec is required for fit checks")
        ws_bytes = estimate.accumulator_cells * self.machine.word_bytes
        return ws_bytes <= self.machine.l3_bytes_per_core

    def estimated_seconds(
        self, estimate: CostEstimate, accum_updates: float, *,
        ghz: float | None = None,
    ) -> float:
        """Convert counts into a crude time proxy for platform comparison.

        Accumulator updates are charged the DRAM-miss cost when the
        workspace exceeds the machine's per-core L3 share — the effect
        Section 3.4 identifies as the CO scheme's untiled weakness.
        The per-event costs come from ``self.weights`` (the class
        constants unless a calibrated :class:`CostWeights` was given).
        """
        fits = self.workspace_fits(estimate)
        weights = self.weights
        if ghz is not None and ghz != weights.ghz:
            weights = replace(weights, ghz=ghz)
        return weights.seconds(
            estimate.queries, estimate.data_volume, accum_updates,
            workspace_fits=fits,
        )
