"""Analytic data-access cost model.

Implements the closed forms of the paper's Table 1 (untiled CI/CM/CO)
and Section 5.3 (tiled CO): hash-query counts, retrieved data volume,
and accumulator size, as functions of the linearized problem parameters
``(L, R, C, nnz_L, nnz_R)`` and, for the tiled scheme, the tile sizes.

These predictions are validated against measured counters in
``benchmarks/bench_table1_loop_orders.py`` and the analysis tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.specs import MachineSpec
from repro.util.arrays import ceil_div

__all__ = ["ProblemShape", "CostEstimate", "AccessCostModel"]


@dataclass(frozen=True)
class ProblemShape:
    """Linearized contraction parameters (Section 2.1 notation)."""

    L: int
    R: int
    C: int
    nnz_L: int
    nnz_R: int

    def __post_init__(self):
        if min(self.L, self.R, self.C) < 1:
            raise ValueError("extents must be >= 1")
        if min(self.nnz_L, self.nnz_R) < 0:
            raise ValueError("nonzero counts must be >= 0")

    @property
    def density_L(self) -> float:
        """``p_L = nnz_L / (L * C)`` (Section 5.1)."""
        return self.nnz_L / (self.L * self.C)

    @property
    def density_R(self) -> float:
        """``p_R = nnz_R / (C * R)`` (Section 5.1)."""
        return self.nnz_R / (self.C * self.R)


@dataclass(frozen=True)
class CostEstimate:
    """Predicted data-access costs for one scheme (Table 1 row)."""

    scheme: str
    queries: float
    data_volume: float
    accumulator_cells: float


class AccessCostModel:
    """Table 1 / Section 5.3 closed forms, optionally weighted by a machine.

    The machine parameter only matters for :meth:`estimated_seconds`,
    which converts abstract counts into a rough time proxy for the
    platform-comparison harness; the count formulas themselves are
    machine-independent.
    """

    def __init__(self, shape: ProblemShape, machine: MachineSpec | None = None):
        self.shape = shape
        self.machine = machine

    # -- untiled schemes (Table 1) -------------------------------------

    def ci(self) -> CostEstimate:
        """Contraction-inner: O(L*R) queries, O(L*nnz_R + R*nnz_L) volume."""
        s = self.shape
        return CostEstimate(
            scheme="CI",
            queries=float(s.L) * s.R,
            data_volume=float(s.L) * s.nnz_R + float(s.R) * s.nnz_L,
            accumulator_cells=1.0,
        )

    def cm(self) -> CostEstimate:
        """Contraction-middle: L + nnz_L queries, nnz_L + nnz_L*nnz_R/C volume."""
        s = self.shape
        return CostEstimate(
            scheme="CM",
            queries=float(s.L) + s.nnz_L,
            data_volume=float(s.nnz_L) + float(s.nnz_L) * s.nnz_R / s.C,
            accumulator_cells=float(s.R),
        )

    def co(self) -> CostEstimate:
        """Contraction-outer: 2C queries, nnz_L + nnz_R volume."""
        s = self.shape
        return CostEstimate(
            scheme="CO",
            queries=2.0 * s.C,
            data_volume=float(s.nnz_L) + s.nnz_R,
            accumulator_cells=float(s.L) * s.R,
        )

    # -- tiled CO (Section 5.3) ----------------------------------------

    def tiled_co(self, tile_l: int, tile_r: int) -> CostEstimate:
        """2-D tiled CO with tile sizes ``(T_L, T_R)``.

        ``N_queries = 2 * C * NL * NR`` and
        ``Data_Vol = nnz_L * NR + nnz_R * NL`` (Section 5.3): both shrink
        inversely with tile size, while the accumulator is capped at
        ``T_L * T_R`` cells.
        """
        s = self.shape
        nl = ceil_div(s.L, tile_l)
        nr = ceil_div(s.R, tile_r)
        return CostEstimate(
            scheme=f"TiledCO[{tile_l}x{tile_r}]",
            queries=2.0 * s.C * nl * nr,
            data_volume=float(s.nnz_L) * nr + float(s.nnz_R) * nl,
            accumulator_cells=float(tile_l) * tile_r,
        )

    def all_untiled(self) -> list[CostEstimate]:
        return [self.ci(), self.cm(), self.co()]

    # -- time proxy -----------------------------------------------------

    #: Cost weights, in arbitrary "cycles": a hash query is a dependent
    #: random access; retrieving one payload element is a streaming read;
    #: a workspace update that misses cache costs a DRAM round-trip.
    QUERY_COST = 30.0
    ELEMENT_COST = 1.0
    UPDATE_HIT_COST = 2.0
    UPDATE_MISS_COST = 60.0

    def estimated_seconds(
        self, estimate: CostEstimate, accum_updates: float, *, ghz: float = 3.0
    ) -> float:
        """Convert counts into a crude time proxy for platform comparison.

        Accumulator updates are charged the DRAM-miss cost when the
        workspace exceeds the machine's per-core L3 share — the effect
        Section 3.4 identifies as the CO scheme's untiled weakness.
        """
        if self.machine is None:
            raise ValueError("a MachineSpec is required for time estimates")
        ws_words = estimate.accumulator_cells
        fits = ws_words * self.machine.word_bytes <= self.machine.l3_bytes_per_core
        update_cost = self.UPDATE_HIT_COST if fits else self.UPDATE_MISS_COST
        cycles = (
            estimate.queries * self.QUERY_COST
            + estimate.data_volume * self.ELEMENT_COST
            + accum_updates * update_cost
        )
        return cycles / (ghz * 1e9)
