"""Machine models for the paper's two evaluation platforms.

The reproduction cannot run on the paper's physical 8-core desktop and
64-core server; instead, :class:`MachineSpec` carries exactly the
parameters FaSTCC's tile-size model consumes (core count, last-level
cache size, word width), and the scheduling simulator in
:mod:`repro.parallel` replays per-tile costs at each platform's thread
count.
"""

from repro.machine.specs import DESKTOP, SERVER, MachineSpec
from repro.machine.cost_model import AccessCostModel
from repro.machine.cache_sim import CacheSim

__all__ = ["MachineSpec", "DESKTOP", "SERVER", "AccessCostModel", "CacheSim"]
