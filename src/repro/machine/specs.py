"""Platform descriptions.

The paper evaluates on two machines (Section 6):

* an 8-core Intel i7-11700F desktop with 512 KiB per-core L2 and a
  shared 16 MiB L3, and
* a 64-core AMD Ryzen Threadripper 3990X server with 512 KiB per-core L2
  and a shared 256 MiB L3.

FaSTCC's dense-tile model (Section 5.3/6.2) sizes tiles so that every
core's tile fits in its share of L3: ``T = sqrt(L3_words / N_cores)``,
rounded down to a power of two because the dense drain's bitmask needs
one.  That yields T=512 on the desktop (exactly) and 724 -> 512 on the
server, both reproduced by :meth:`MachineSpec.dense_tile_size`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.arrays import prev_power_of_two

__all__ = ["MachineSpec", "DESKTOP", "SERVER", "from_current_host"]

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of a target CPU platform.

    Attributes
    ----------
    name:
        Human-readable platform label.
    n_cores:
        Physical cores; also the thread count used in the paper's runs.
    l3_bytes:
        Shared last-level cache capacity in bytes.
    l2_bytes_per_core:
        Private L2 capacity per core in bytes.
    word_bytes:
        Accumulator element width (8 for double precision, ``DT`` in
        Algorithm 7).
    """

    name: str
    n_cores: int
    l3_bytes: int
    l2_bytes_per_core: int = 512 * KIB
    word_bytes: int = 8

    def __post_init__(self):
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.l3_bytes <= 0 or self.l2_bytes_per_core <= 0 or self.word_bytes <= 0:
            raise ValueError("cache and word sizes must be positive")

    @property
    def l3_words(self) -> int:
        """L3 capacity in accumulator words."""
        return self.l3_bytes // self.word_bytes

    @property
    def l3_bytes_per_core(self) -> int:
        """Each core's share of the shared L3."""
        return self.l3_bytes // self.n_cores

    def dense_tile_size(self) -> int:
        """Square dense-tile side per Section 5.3 / 6.2.

        ``T = sqrt(L3_words / N_cores)``, rounded *down* to a power of
        two (the drain bitmask requires one).
        """
        t = math.isqrt(self.l3_words // self.n_cores)
        return prev_power_of_two(max(1, t))

    def sparse_tile_size(self, output_density: float) -> int:
        """Square sparse-tile side per Section 5.4 / Algorithm 7.

        Sizes the tile so that the expected hash-table payload —
        16 bytes per entry at 90% utilization, i.e. 17.7 bytes per
        expected output nonzero — fills one core's L3 share:
        ``T = sqrt(L3_bytes / (17.7 * density * N_cores))``, rounded *up*
        to a power of two (Section 6.3).
        """
        if output_density <= 0.0:
            # A degenerate estimate: a single tile covering everything is
            # the right limit; callers clamp to the index-space extents.
            return 1 << 62
        t = math.sqrt(self.l3_bytes / (17.7 * output_density * self.n_cores))
        t = max(1, int(t))
        from repro.util.arrays import next_power_of_two

        return next_power_of_two(t)


def from_current_host(*, fallback: "MachineSpec | None" = None) -> "MachineSpec":
    """Build a MachineSpec for the machine this process runs on.

    Reads the core count from :func:`os.cpu_count` and the last-level
    cache size from Linux sysfs (the largest ``index*/size`` under
    ``cpu0/cache``).  Falls back to ``fallback`` (default: a spec with
    the detected cores and a conservative 2 MiB-per-core L3) when the
    cache topology is unreadable — e.g. containers, non-Linux hosts.
    """
    import os
    import re

    n_cores = os.cpu_count() or 1
    l3_bytes = None
    cache_dir = "/sys/devices/system/cpu/cpu0/cache"
    try:
        sizes = []
        for entry in sorted(os.listdir(cache_dir)):
            if not entry.startswith("index"):
                continue
            try:
                with open(os.path.join(cache_dir, entry, "size")) as fh:
                    text = fh.read().strip()
            except OSError:
                continue
            match = re.fullmatch(r"(\d+)([KMG]?)B?", text, re.IGNORECASE)
            if not match:
                continue
            value = int(match.group(1))
            unit = match.group(2).upper()
            value *= {"": 1, "K": KIB, "M": MIB, "G": 1024 * MIB}[unit]
            sizes.append(value)
        if sizes:
            l3_bytes = max(sizes)
    except OSError:
        pass
    if l3_bytes is None:
        if fallback is not None:
            return fallback
        l3_bytes = 2 * MIB * n_cores
    return MachineSpec(name="current-host", n_cores=n_cores, l3_bytes=l3_bytes)


#: The paper's 8-core Intel i7-11700F desktop (Section 6).
DESKTOP = MachineSpec(
    name="desktop-i7-11700F", n_cores=8, l3_bytes=16 * MIB, l2_bytes_per_core=512 * KIB
)

#: The paper's 64-core AMD Threadripper 3990X server (Section 6).
SERVER = MachineSpec(
    name="server-tr-3990x", n_cores=64, l3_bytes=256 * MIB, l2_bytes_per_core=512 * KIB
)

#: A scaled-down model used by the test-suite and the scaled benchmark
#: datasets: same core ratio as the desktop, cache small enough that the
#: model's tile choices are exercised on small synthetic tensors.
MINIATURE = MachineSpec(name="miniature", n_cores=4, l3_bytes=2 * MIB)
