"""Set-associative LRU cache simulator.

Used by the tiling ablation to demonstrate the locality claim of
Section 5.3: accumulator updates within a cache-sized tile hit, while the
same update stream against an untiled workspace misses.  The simulator is
deliberately simple (single level, LRU, no prefetch) — it measures the
*capacity* effect the paper's tile-size model is built around, nothing
micro-architectural.

The hot loop is per-access Python, so keep traces to ~1e6 accesses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CacheSim"]


class CacheSim:
    """A ``size_bytes`` cache with ``line_bytes`` lines and ``ways`` ways."""

    def __init__(self, size_bytes: int, *, line_bytes: int = 64, ways: int = 8):
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache parameters must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines < ways:
            raise ValueError("cache too small for the requested associativity")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = max(1, n_lines // ways)
        # Each set is an ordered list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def access(self, byte_addresses: np.ndarray) -> None:
        """Replay a trace of byte addresses through the cache."""
        lines = np.asarray(byte_addresses, dtype=np.int64) // self.line_bytes
        set_ids = lines % self.n_sets
        tags = lines // self.n_sets
        sets = self._sets
        ways = self.ways
        hits = 0
        misses = 0
        for s, t in zip(set_ids.tolist(), tags.tolist()):
            entry = sets[s]
            try:
                entry.remove(t)
                hits += 1
            except ValueError:
                misses += 1
                if len(entry) >= ways:
                    entry.pop(0)
            entry.append(t)
        self.hits += hits
        self.misses += misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0
