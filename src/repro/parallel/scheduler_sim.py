"""Deterministic dynamic-scheduling simulator.

The paper's parallel results (Figure 3's 1-to-64-thread scaling, the
64-thread server runs of Figure 2) cannot be measured natively in this
environment (see DESIGN.md).  Instead, every kernel records the cost of
each tile-pair task on the real machine, and this simulator replays those
costs under the same dynamic scheduling policy the Taskflow queue uses:
each of ``k`` workers repeatedly takes the next task from the shared
queue when it becomes free (greedy list scheduling in task order).

What the simulation captures — and what the paper attributes its load
balance to — is the interaction between the task-cost *distribution* and
dynamic assignment: a few heavy tiles bound the speedup, many uniform
tiles scale nearly linearly, and fewer tasks than threads caps the
speedup at the task count.  What it deliberately omits is shared-resource
contention (memory bandwidth, L3 conflicts), so simulated efficiency at
high thread counts is an upper bound; EXPERIMENTS.md flags this when
comparing with the paper's Figure 3.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SchedulerError

__all__ = [
    "ScheduleResult",
    "simulate_dynamic_schedule",
    "simulate_static_schedule",
    "simulate_work_stealing",
    "scaling_curve",
]


@dataclass
class ScheduleResult:
    """Outcome of one simulated schedule."""

    n_workers: int
    makespan: float
    worker_loads: np.ndarray  # busy time per worker
    assignment: np.ndarray  # worker id per task

    @property
    def total_work(self) -> float:
        return float(self.worker_loads.sum())

    @property
    def efficiency(self) -> float:
        """``total_work / (n_workers * makespan)`` — 1.0 is perfect."""
        if self.makespan == 0.0:
            return 1.0
        return self.total_work / (self.n_workers * self.makespan)


def simulate_dynamic_schedule(
    task_costs: Sequence[float], n_workers: int
) -> ScheduleResult:
    """Greedy dynamic scheduling of ``task_costs`` onto ``n_workers``.

    Tasks are dispatched in the given order to whichever worker frees up
    first — exactly the behaviour of threads pulling from a shared queue
    (ties broken by worker id, making the simulation deterministic).
    """
    if n_workers < 1:
        raise SchedulerError(f"n_workers must be >= 1, got {n_workers}")
    costs = np.asarray(task_costs, dtype=np.float64)
    if costs.ndim != 1:
        raise SchedulerError("task costs must be a 1-D sequence")
    if costs.size and costs.min() < 0:
        raise SchedulerError("task costs must be nonnegative")

    loads = np.zeros(n_workers, dtype=np.float64)
    assignment = np.full(costs.shape[0], -1, dtype=np.int64)
    # (free_time, worker_id) min-heap: the earliest-free worker takes the
    # next task from the queue.
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    makespan = 0.0
    for tid, cost in enumerate(costs.tolist()):
        free_at, worker = heapq.heappop(heap)
        finish = free_at + cost
        loads[worker] += cost
        assignment[tid] = worker
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, worker))
    return ScheduleResult(n_workers, makespan, loads, assignment)


def simulate_static_schedule(
    task_costs: Sequence[float],
    n_workers: int,
    *,
    policy: str = "block",
) -> ScheduleResult:
    """Static task assignment — the strawman the paper rejects.

    Section 4.2 argues that mapping tasks to threads at run time keeps
    load imbalance much lower than a static partition.  This simulates
    the static side: tasks are pre-assigned ``"block"``-wise (contiguous
    ranges) or ``"cyclic"``-ally (round robin) and each worker runs its
    share; the makespan is the heaviest share.
    """
    if n_workers < 1:
        raise SchedulerError(f"n_workers must be >= 1, got {n_workers}")
    if policy not in ("block", "cyclic"):
        raise SchedulerError(f"policy must be block|cyclic, got {policy!r}")
    costs = np.asarray(task_costs, dtype=np.float64)
    if costs.ndim != 1:
        raise SchedulerError("task costs must be a 1-D sequence")
    if costs.size and costs.min() < 0:
        raise SchedulerError("task costs must be nonnegative")

    n = costs.shape[0]
    assignment = np.empty(n, dtype=np.int64)
    if policy == "cyclic":
        assignment[:] = np.arange(n) % n_workers
    else:
        # Contiguous blocks of ceil(n / k), the classic omp-static split.
        block = max(1, -(-n // n_workers)) if n else 1
        assignment[:] = np.minimum(np.arange(n) // block, n_workers - 1)
    loads = np.zeros(n_workers, dtype=np.float64)
    np.add.at(loads, assignment, costs)
    makespan = float(loads.max()) if n_workers else 0.0
    return ScheduleResult(n_workers, makespan, loads, assignment)


def simulate_work_stealing(
    task_costs: Sequence[float],
    n_workers: int,
    *,
    seed: int = 0,
    steal_overhead: float = 0.0,
) -> ScheduleResult:
    """Work-stealing simulation (Taskflow's actual policy).

    Tasks are dealt round-robin into per-worker deques; each worker pops
    from its own deque's front, and when empty steals from the *back*
    of a uniformly random victim's deque (paying ``steal_overhead``
    seconds per successful steal).  Event-driven and deterministic for a
    given seed.

    For independent tasks the makespan is close to the shared-queue
    simulation (both are greedy); the difference — measured by the
    scheduler tests — is bounded by one task per steal, which is why the
    paper can treat its Taskflow queue as a simple dynamic scheduler.
    """
    if n_workers < 1:
        raise SchedulerError(f"n_workers must be >= 1, got {n_workers}")
    costs = np.asarray(task_costs, dtype=np.float64)
    if costs.ndim != 1:
        raise SchedulerError("task costs must be a 1-D sequence")
    if costs.size and costs.min() < 0:
        raise SchedulerError("task costs must be nonnegative")
    rng = np.random.default_rng(seed)

    from collections import deque

    deques: list[deque[int]] = [deque() for _ in range(n_workers)]
    for tid in range(costs.shape[0]):
        deques[tid % n_workers].append(tid)

    loads = np.zeros(n_workers, dtype=np.float64)
    assignment = np.full(costs.shape[0], -1, dtype=np.int64)
    # Event queue of (free_time, worker).
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    remaining = costs.shape[0]
    makespan = 0.0
    while remaining:
        now, worker = heapq.heappop(heap)
        tid = None
        overhead = 0.0
        if deques[worker]:
            tid = deques[worker].popleft()
        else:
            # Steal from the back of a random non-empty victim.
            victims = [w for w in range(n_workers) if deques[w]]
            if victims:
                victim = victims[int(rng.integers(0, len(victims)))]
                tid = deques[victim].pop()
                overhead = steal_overhead
        if tid is None:
            # Nothing to do *now*; park just after the next event so the
            # worker re-checks once another worker has made progress.
            if heap:
                next_time = heap[0][0]
                heapq.heappush(heap, (max(now, next_time) + 1e-12, worker))
                continue
            break
        finish = now + overhead + costs[tid]
        loads[worker] += costs[tid] + overhead
        assignment[tid] = worker
        makespan = max(makespan, finish)
        remaining -= 1
        heapq.heappush(heap, (finish, worker))
    return ScheduleResult(n_workers, makespan, loads, assignment)


def scaling_curve(
    task_costs: Sequence[float],
    thread_counts: Sequence[int],
    *,
    serial_overhead: float = 0.0,
    per_thread_overhead: float = 0.0,
) -> dict[int, float]:
    """Simulated execution time at each thread count.

    ``serial_overhead`` models the non-parallel phases (hash-table
    construction runs at half-width in the paper, COO concatenation is
    serial); ``per_thread_overhead`` models per-worker startup.  Both
    default to zero for the pure-kernel scaling of Figure 3.
    """
    out: dict[int, float] = {}
    for k in thread_counts:
        result = simulate_dynamic_schedule(task_costs, k)
        out[int(k)] = serial_overhead + per_thread_overhead * k + result.makespan
    return out
