"""Parallel runtime substrate.

FaSTCC parallelizes tile-pair contractions with a Taskflow task queue and
builds per-thread COO output through a memory pool (paper Section 4.2).
This package provides:

* :mod:`repro.parallel.taskqueue` — a dynamic work queue over Python
  threads (the Taskflow substitute);
* :mod:`repro.parallel.scheduler_sim` — a deterministic simulator that
  replays measured per-task costs under dynamic scheduling with ``k``
  workers; it produces the thread-scaling results for platforms this
  environment cannot run natively (DESIGN.md substitution table); and
* :mod:`repro.parallel.memory_pool` — chunked append-only COO builders
  (the 512 MB-chunk pool of the paper, with a configurable chunk size).
"""

from repro.parallel.memory_pool import COOBuilder, PoolStats
from repro.parallel.scheduler_sim import ScheduleResult, simulate_dynamic_schedule
from repro.parallel.taskqueue import TaskQueue, TaskRecord

from repro.parallel.scheduler_sim import scaling_curve

__all__ = [
    "COOBuilder",
    "PoolStats",
    "TaskQueue",
    "TaskRecord",
    "ScheduleResult",
    "simulate_dynamic_schedule",
    "scaling_curve",
]
