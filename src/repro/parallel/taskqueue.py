"""Dynamic task queue over worker threads (Taskflow substitute).

FaSTCC defines each tile-pair contraction as a task and lets a run-time
queue map tasks to threads, which keeps load imbalance low compared to a
static partition of the nonzeros (paper Section 4.2).  This module
provides the same contract: submit a list of task callables, run them on
``n_workers`` threads pulling from a shared queue, and record per-task
timing so the scheduling simulator can replay the run at other thread
counts.

Under CPython's GIL only NumPy-heavy sections overlap, so wall-clock
speedups here are modest; the recorded per-task costs are the faithful
quantity, and :mod:`repro.parallel.scheduler_sim` turns them into the
platform-scale results.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import SchedulerError

__all__ = ["TaskQueue", "TaskRecord"]


@dataclass
class TaskRecord:
    """Execution record of a single task."""

    task_id: int
    worker: int
    start: float
    end: float
    result: object = None

    @property
    def cost(self) -> float:
        """Measured task duration in seconds."""
        return self.end - self.start


class TaskQueue:
    """Run a batch of independent tasks with dynamic scheduling.

    Parameters
    ----------
    n_workers:
        Worker thread count.  ``1`` runs inline on the calling thread
        (no threading overhead), which is also the deterministic mode
        used when benchmarks record per-task costs.
    """

    def __init__(self, n_workers: int = 1):
        if n_workers < 1:
            raise SchedulerError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)

    def run(
        self,
        tasks: Sequence[Callable[[], object]],
        *,
        write_sets: Sequence | None = None,
    ) -> list[TaskRecord]:
        """Execute every task; returns records ordered by task id.

        Any task exception is re-raised in the caller after all workers
        stop (remaining queued tasks are abandoned).

        ``write_sets`` optionally declares, per task, the accumulator
        tiles that task writes.  When given, the queue statically checks
        the disjoint-tile invariant *before* running anything and raises
        :class:`~repro.errors.SchedulerError` on a write-write hazard
        (see :mod:`repro.staticcheck.graph_lint`).
        """
        if write_sets is not None:
            if len(write_sets) != len(tasks):
                raise SchedulerError(
                    f"{len(write_sets)} write sets for {len(tasks)} tasks"
                )
            from repro.staticcheck.graph_lint import assert_disjoint_writes

            assert_disjoint_writes(write_sets)
        if self.n_workers == 1:
            return self._run_inline(tasks)
        return self._run_threaded(tasks)

    def _run_inline(self, tasks: Sequence[Callable[[], object]]) -> list[TaskRecord]:
        records = []
        for tid, task in enumerate(tasks):
            t0 = time.perf_counter()
            result = task()
            t1 = time.perf_counter()
            records.append(TaskRecord(tid, 0, t0, t1, result))
        return records

    def _run_threaded(self, tasks: Sequence[Callable[[], object]]) -> list[TaskRecord]:
        queue: deque[tuple[int, Callable[[], object]]] = deque(enumerate(tasks))
        records: list[TaskRecord | None] = [None] * len(tasks)
        lock = threading.Lock()
        failure: list[BaseException] = []

        def worker(worker_id: int) -> None:
            while True:
                with lock:
                    if failure or not queue:
                        return
                    tid, task = queue.popleft()
                t0 = time.perf_counter()
                try:
                    result = task()
                except BaseException as exc:  # noqa: BLE001 - reraised below
                    with lock:
                        failure.append(exc)
                    return
                t1 = time.perf_counter()
                records[tid] = TaskRecord(tid, worker_id, t0, t1, result)

        threads = [
            threading.Thread(target=worker, args=(w,), daemon=True)
            for w in range(min(self.n_workers, max(1, len(tasks))))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failure:
            raise failure[0]
        done: list[TaskRecord] = [r for r in records if r is not None]
        if len(done) != len(tasks):  # pragma: no cover - defensive
            raise SchedulerError("task queue finished with missing records")
        return done
