"""Chunked memory pool for COO output construction.

The paper's implementation hands each thread heap allocations in 512 MB
chunks as it pushes nonzeros to a thread-local COO list; finished lists
are concatenated by pointer movement (Section 4.2).  ``COOBuilder``
reproduces the behaviour with NumPy block chunks: appends fill the
current chunk and allocate a new one when full, and ``finalize`` stitches
the chunks into flat arrays once.

Amortized append cost is O(1) per element; no per-append reallocation of
previously written data ever happens (unlike naive ``np.concatenate``
accumulation, which is quadratic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.arrays import INDEX_DTYPE, VALUE_DTYPE

__all__ = ["COOBuilder", "PoolStats"]

#: Default chunk capacity in *rows*.  The paper uses 512 MB byte chunks;
#: with 2 index columns + 1 value column of 8 bytes that is ~22M rows.
#: The scaled benchmarks default far lower to keep memory modest.
DEFAULT_CHUNK_ROWS = 1 << 16


@dataclass
class PoolStats:
    """Allocation telemetry for the memory-pool ablation/tests."""

    chunks_allocated: int = 0
    rows_appended: int = 0
    append_calls: int = 0
    finalized: bool = False


class COOBuilder:
    """Append-only builder of linearized (l, r, value) output triples.

    One builder per worker thread; builders are merged (cheaply — array
    concatenation of whole chunks) by the master after all tasks finish,
    mirroring the paper's pointer-stitched thread-local lists.
    """

    __slots__ = ("chunk_rows", "_chunks", "_cur_l", "_cur_r", "_cur_v", "_fill", "stats")

    def __init__(self, chunk_rows: int = DEFAULT_CHUNK_ROWS):
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.chunk_rows = int(chunk_rows)
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._cur_l = None
        self._cur_r = None
        self._cur_v = None
        self._fill = 0
        self.stats = PoolStats()

    def _new_chunk(self) -> None:
        self._cur_l = np.empty(self.chunk_rows, dtype=INDEX_DTYPE)
        self._cur_r = np.empty(self.chunk_rows, dtype=INDEX_DTYPE)
        self._cur_v = np.empty(self.chunk_rows, dtype=VALUE_DTYPE)
        self._fill = 0
        self.stats.chunks_allocated += 1

    def _seal_current(self) -> None:
        if self._cur_l is not None and self._fill:
            self._chunks.append(
                (
                    self._cur_l[: self._fill],
                    self._cur_r[: self._fill],
                    self._cur_v[: self._fill],
                )
            )
        self._cur_l = self._cur_r = self._cur_v = None
        self._fill = 0

    def append_batch(
        self, l_idx: np.ndarray, r_idx: np.ndarray, values: np.ndarray
    ) -> None:
        """Append a batch of output nonzeros, spilling across chunks."""
        n = l_idx.shape[0]
        if not (r_idx.shape[0] == values.shape[0] == n):
            raise ValueError("output triple arrays must be equal length")
        self.stats.append_calls += 1
        self.stats.rows_appended += n
        offset = 0
        while offset < n:
            if self._cur_l is None or self._fill == self.chunk_rows:
                if self._fill == self.chunk_rows:
                    self._seal_current()
                self._new_chunk()
            take = min(n - offset, self.chunk_rows - self._fill)
            end = self._fill + take
            self._cur_l[self._fill : end] = l_idx[offset : offset + take]
            self._cur_r[self._fill : end] = r_idx[offset : offset + take]
            self._cur_v[self._fill : end] = values[offset : offset + take]
            self._fill = end
            offset += take

    @property
    def rows(self) -> int:
        return self.stats.rows_appended

    def finalize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stitch all chunks into flat ``(l, r, values)`` arrays."""
        self._seal_current()
        self.stats.finalized = True
        if not self._chunks:
            return (
                np.empty(0, dtype=INDEX_DTYPE),
                np.empty(0, dtype=INDEX_DTYPE),
                np.empty(0, dtype=VALUE_DTYPE),
            )
        ls, rs, vs = zip(*self._chunks)
        return np.concatenate(ls), np.concatenate(rs), np.concatenate(vs)

    @staticmethod
    def merge(builders: list["COOBuilder"]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenate several thread-local builders (master-thread step)."""
        parts = [b.finalize() for b in builders]
        parts = [p for p in parts if p[0].shape[0]]
        if not parts:
            return COOBuilder().finalize()
        ls, rs, vs = zip(*parts)
        return np.concatenate(ls), np.concatenate(rs), np.concatenate(vs)
