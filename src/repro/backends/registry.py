"""Backend discovery, feature detection, and per-problem selection.

The registry maps stable names to :class:`~repro.backends.base.
KernelBackend` classes, caches one instance of each, and memoizes
feature detection so a scipy-less host pays the failed import once.
Selection happens in three tiers:

1. **Explicit** — ``backend="scipy"`` anywhere a backend parameter is
   accepted (``contract``, the runtime, serve configs, CLI
   ``--backend``).  Unknown or unavailable names raise
   :class:`~repro.errors.BackendError` carrying the detection reason.
2. **Environment** — ``REPRO_BACKEND`` supplies the default when no
   explicit choice is made; unset means the bit-exact ``numpy``
   reference, so existing callers see identical results.
3. **Auto** — ``backend="auto"`` applies the per-problem policy of
   :func:`choose_backend`: high-sparsity pairwise problems go to
   scipy's SpGEMM when available (the regime where compiled SpGEMM
   beats the tiled Python kernel; see ``benchmarks/bench_backends.py``),
   everything else stays on the reference.  The policy is a pure
   function of the :class:`~repro.runtime.signature.ProblemSignature`
   densities, so plan caching stays valid.

Third-party backends register with the :func:`register_backend`
decorator.
"""

from __future__ import annotations

import os

from repro.backends.arrayapi_backend import ArrayAPIBackend
from repro.backends.base import KernelBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.scipy_backend import ScipyBackend
from repro.errors import BackendError

__all__ = [
    "ENV_VAR",
    "register_backend",
    "known_backends",
    "available_backends",
    "backend_status",
    "get_backend",
    "resolve_backend",
    "choose_backend",
    "choose_backend_for_densities",
]

#: Environment variable naming the default backend.
ENV_VAR = "REPRO_BACKEND"

#: ``auto`` routes to scipy only when both operands are at most this
#: dense — the regime where SpGEMM's compiled inner loop wins and a
#: dense workspace would mostly hold zeros.
AUTO_DENSITY_CEILING = 0.05

_CLASSES: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_STATUS: dict[str, tuple[bool, str]] = {}


def register_backend(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Register a backend class under ``cls.name`` (decorator-friendly)."""
    if not cls.name or cls.name == "abstract":
        raise BackendError(f"backend class {cls.__name__} needs a name")
    _CLASSES[cls.name] = cls
    _STATUS.pop(cls.name, None)
    _INSTANCES.pop(cls.name, None)
    return cls


for _cls in (NumpyBackend, ScipyBackend, ArrayAPIBackend):
    register_backend(_cls)


def known_backends() -> list[str]:
    """All registered backend names (available or not), sorted."""
    return sorted(_CLASSES)


def backend_status(*, refresh: bool = False) -> dict[str, tuple[bool, str]]:
    """``{name: (available, reason)}`` for every registered backend."""
    for name, cls in _CLASSES.items():
        if refresh or name not in _STATUS:
            try:
                _STATUS[name] = cls.detect()
            except Exception as exc:  # pragma: no cover - defensive
                _STATUS[name] = (False, f"detection failed: {exc}")
    return {name: _STATUS[name] for name in sorted(_CLASSES)}


def available_backends() -> list[str]:
    """Names of backends that pass feature detection, sorted."""
    return [name for name, (ok, _) in backend_status().items() if ok]


def get_backend(name: str) -> KernelBackend:
    """The cached instance for ``name``; raises :class:`BackendError`
    for unknown names or backends that fail detection."""
    if name not in _CLASSES:
        raise BackendError(
            f"unknown backend {name!r}; known backends: "
            f"{', '.join(known_backends())} (or 'auto')"
        )
    ok, reason = backend_status()[name]
    if not ok:
        raise BackendError(
            f"backend {name!r} is not available on this host: {reason}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _CLASSES[name]()
    return _INSTANCES[name]


def resolve_backend(
    backend: "str | KernelBackend | None" = None,
    signature=None,
) -> KernelBackend:
    """Resolve a user-facing backend argument to an instance.

    ``None`` defers to ``$REPRO_BACKEND`` and then the ``numpy``
    reference; ``"auto"`` applies the per-problem policy (``signature``
    — anything with ``density_l``/``density_r`` — sharpens it); an
    instance passes through untouched.
    """
    if isinstance(backend, KernelBackend):
        return backend
    name = backend or os.environ.get(ENV_VAR) or "numpy"
    if name == "auto":
        return choose_backend(signature)
    return get_backend(name)


def choose_backend(signature=None) -> KernelBackend:
    """The ``auto`` policy: pick a backend for one problem signature."""
    if signature is None:
        return get_backend("numpy")
    return choose_backend_for_densities(
        float(signature.density_l), float(signature.density_r)
    )


def choose_backend_for_densities(
    density_l: float, density_r: float
) -> KernelBackend:
    """Density-only form of the ``auto`` policy (used by ``contract``
    before any :class:`ProblemSignature` exists)."""
    ceiling = AUTO_DENSITY_CEILING
    if density_l <= ceiling and density_r <= ceiling:
        ok, _ = backend_status().get("scipy", (False, ""))
        if ok:
            return get_backend("scipy")
    return get_backend("numpy")
