"""The reference backend: the library's original NumPy kernels.

This is a straight extraction of the NumPy calls that used to live
inline in ``core/accumulators.py`` and the tiled CO kernel, preserved
bit-for-bit:

* ``scatter_accumulate`` keeps the batch-size heuristic the dense
  accumulator shipped with — one ``np.bincount`` pass for batches that
  touch a significant fraction of the tile (the unbuffered scatter of
  ``np.add.at`` serializes on duplicates), ``np.add.at`` otherwise.
  Both variants sum duplicates in input order, so the float results are
  identical; the differential harness asserts the library's output is
  unchanged by the refactor.
* ``hash_accumulate`` is :func:`repro.util.groups.segment_sum` — the
  sort + ``reduceat`` reduction the workspace-free paths always used.

Every other backend is differentially fuzzed against this one.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend
from repro.util.arrays import INDEX_DTYPE, VALUE_DTYPE
from repro.util.groups import segment_sum

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Reference implementation on plain ``numpy.ndarray``s."""

    name = "numpy"
    priority = 0
    native_numpy = True

    @classmethod
    def detect(cls) -> tuple[bool, str]:
        return True, f"numpy {np.__version__} (reference)"

    # -- array lifecycle ------------------------------------------------

    def zeros(self, n: int, dtype=VALUE_DTYPE):
        return np.zeros(int(n), dtype=dtype)

    def asarray(self, arr, dtype=None):
        return np.asarray(arr, dtype=dtype)

    def to_numpy(self, arr) -> np.ndarray:
        return np.asarray(arr)

    # -- kernel ops ------------------------------------------------------

    def gather(self, arr, idx):
        return arr[idx]

    def scatter_accumulate(self, buf, positions, values, *,
                           return_touched: bool = False):
        positions = np.asarray(positions, dtype=INDEX_DTYPE)
        n = positions.shape[0]
        if n == 0:
            return positions if return_touched else None
        if np.ndim(values) == 0:
            # Scalar broadcast (histogram counting, e.g. chained-bucket
            # length tallies); duplicates must still each contribute.
            np.add.at(buf, positions, values)
            return np.unique(positions) if return_touched else None
        cells = buf.shape[0]
        if n >= cells // 8:
            # Large batch: one dense bincount pass beats the unbuffered
            # scatter of np.add.at (which serializes on duplicates).
            buf += np.bincount(positions, weights=values, minlength=cells)
            if not return_touched:
                return None
            hit = np.bincount(positions, minlength=cells).astype(bool)
            return np.flatnonzero(hit).astype(INDEX_DTYPE)
        np.add.at(buf, positions, values)
        return np.unique(positions) if return_touched else None

    def gemm_slices(self, a, b):
        return np.matmul(a, b)

    def hash_accumulate(self, keys, values):
        return segment_sum(keys, values)

    def dense_reduce(self, arr):
        return float(np.sum(arr))

    def multiply(self, a, b):
        return np.multiply(a, b)
