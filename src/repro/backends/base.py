"""The kernel-backend interface: five narrow ops span every hot loop.

Every contraction scheme in the library bottoms out in the same handful
of array primitives — gathering payload slices, scattering partial
products into a workspace, multiplying matched slices, reducing by key,
and (on dense-enough problems) a plain dense GEMM over linearized
slices.  :class:`KernelBackend` names exactly those ops:

``gather``
    ``arr[idx]`` — payload expansion for the per-``c`` outer products.
``scatter_accumulate``
    ``buf[positions] += values`` with duplicate positions combined —
    the dense-tile update of Section 4.2 (the NumPy reference switches
    between an unbuffered scatter and a one-pass bincount internally).
``gemm_slices``
    dense 2-D matrix multiply of two slices — the accelerated path a
    GPU-class substrate provides natively.
``hash_accumulate``
    reduce ``values`` by (unsorted) ``keys`` into
    ``(unique_keys, sums)`` — the workspace-free accumulation the
    sparse paths rely on.
``dense_reduce``
    full reduction of a value array to a scalar.

Plus the lifecycle helpers (``zeros``/``asarray``/``to_numpy``) a
non-NumPy substrate needs to own its workspaces, and one capability
hook: :meth:`KernelBackend.contract_linearized` lets a backend execute
an *entire* pairwise contraction of linearized operands natively
(scipy's SpGEMM, a dense GEMM on an accelerator) instead of feeding the
tiled CO kernel op by op.  Returning ``None`` means "no native path —
run Algorithm 6 through my element ops".

Backends are discovered and selected through
:mod:`repro.backends.registry`; correctness is enforced by the
cross-backend differential harness under ``tests/backends/`` (see
``docs/backends.md`` for the interface contract and tolerance policy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BackendError
from repro.util.arrays import VALUE_DTYPE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import LinearizedOperand, Plan

__all__ = ["KernelBackend"]


class KernelBackend:
    """Abstract kernel backend (see the module docstring for the ops).

    Subclasses set ``name`` (the registry key), ``priority`` (auto-
    selection tie-break, higher wins), and ``native_numpy`` (``False``
    when the backend computes on a foreign array library, in which case
    callers convert results with :meth:`to_numpy` at the boundary).
    """

    name: str = "abstract"
    priority: int = 0
    #: True when the backend's arrays are plain ``numpy.ndarray``s and
    #: results can flow into NumPy consumers without conversion.
    native_numpy: bool = True

    # -- detection ------------------------------------------------------

    @classmethod
    def detect(cls) -> tuple[bool, str]:
        """Feature-detect this backend on the current host.

        Returns ``(available, reason)``; ``reason`` explains an
        unavailable verdict (used verbatim by the test harness's skip
        messages).
        """
        return True, "always available"

    # -- array lifecycle ------------------------------------------------

    def zeros(self, n: int, dtype=VALUE_DTYPE):
        """A zero-filled 1-D workspace owned by this backend."""
        raise NotImplementedError

    def asarray(self, arr, dtype=None):
        """Adopt ``arr`` into this backend's array library."""
        raise NotImplementedError

    def to_numpy(self, arr) -> np.ndarray:
        """Materialize a backend array as a NumPy array (the boundary
        conversion for delinearization and COO assembly)."""
        raise NotImplementedError

    # -- the five kernel ops --------------------------------------------

    def gather(self, arr, idx):
        """``arr[idx]`` for an integer index array."""
        raise NotImplementedError

    def scatter_accumulate(self, buf, positions, values, *,
                           return_touched: bool = False):
        """``buf[positions] += values`` with in-batch duplicates combined.

        ``values`` may be a scalar (broadcast).  With ``return_touched``
        the sorted unique updated positions are returned (the dense
        accumulator's freshness bookkeeping); otherwise ``None``.
        """
        raise NotImplementedError

    def gemm_slices(self, a, b):
        """Dense 2-D matrix product of two slices (``a @ b``)."""
        raise NotImplementedError

    def hash_accumulate(self, keys, values):
        """Reduce ``values`` by unsorted ``keys``; returns
        ``(unique_keys_sorted, sums)``."""
        raise NotImplementedError

    def dense_reduce(self, arr):
        """Sum a value array to a scalar."""
        raise NotImplementedError

    # convenience element op used between gathers (kept overridable so a
    # substrate can fuse it; default composes with the library operator)
    def multiply(self, a, b):
        """Elementwise product of two gathered value arrays."""
        return a * b

    # -- capability hooks -----------------------------------------------

    def has_native_path(
        self,
        left: "LinearizedOperand",
        right: "LinearizedOperand",
        plan: "Plan",
    ) -> bool:
        """Would :meth:`contract_linearized` accept this problem?

        Cheap predicate the runtime uses to decide whether building
        tiled tables is worthwhile; must agree with the actual
        acceptance test in :meth:`contract_linearized`.
        """
        return False

    def contract_linearized(
        self,
        left: "LinearizedOperand",
        right: "LinearizedOperand",
        plan: "Plan",
        *,
        counters=None,
    ):
        """Execute a whole pairwise contraction natively, if supported.

        Returns ``(l_idx, r_idx, values)`` NumPy arrays with unique
        coordinates, or ``None`` when this problem should run through
        the tiled CO kernel using this backend's element ops instead.
        """
        return None

    # -- misc -----------------------------------------------------------

    def require_available(self) -> "KernelBackend":
        """Raise :class:`~repro.errors.BackendError` unless detected."""
        ok, reason = type(self).detect()
        if not ok:
            raise BackendError(
                f"backend {self.name!r} is not available on this host: {reason}"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
