"""scipy.sparse backend: pairwise contractions as one CSR SpGEMM.

After linearization a pairwise contraction *is* a sparse matrix product
``L[l, c] @ R[c, r]`` (paper Section 2.1), which scipy's compiled
SpGEMM executes far faster than the pure-Python tiled kernel on
high-sparsity problems.  :meth:`ScipyBackend.contract_linearized`
builds the two CSR operands straight from the linearized triples,
multiplies, and hands back canonical COO triples.

The element ops are inherited from the NumPy reference (scipy arrays
*are* NumPy arrays), so any problem the SpGEMM path declines — extents
whose ``indptr`` would dwarf the nonzeros — still runs bit-identically
to the reference through the tiled kernel.

Tolerance note (see ``docs/backends.md``): SpGEMM accumulates partial
products in a different order than the tiled accumulator, so float
results match the reference to ``rtol=1e-8`` rather than bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.backends.numpy_backend import NumpyBackend
from repro.util.arrays import INDEX_DTYPE, VALUE_DTYPE

__all__ = ["ScipyBackend"]

#: Decline the CSR path when any matrix dimension exceeds this: CSR
#: carries an ``indptr`` of ``rows + 1`` entries, so a huge linearized
#: extent with few nonzeros would allocate memory proportional to the
#: index space instead of the data (the exact failure mode the tiled
#: tables avoid).
MAX_CSR_DIM = 1 << 23


class ScipyBackend(NumpyBackend):
    """NumPy element ops + a native SpGEMM pairwise path."""

    name = "scipy"
    priority = 10
    native_numpy = True

    @classmethod
    def detect(cls) -> tuple[bool, str]:
        try:
            import scipy
            import scipy.sparse  # noqa: F401  (the part we actually need)
        except Exception as exc:  # pragma: no cover - import-env dependent
            return False, f"scipy not importable: {exc}"
        return True, f"scipy {scipy.__version__}"

    def has_native_path(self, left, right, plan) -> bool:
        return (
            max(left.ext_extent, left.con_extent, right.ext_extent)
            <= MAX_CSR_DIM
        )

    def contract_linearized(self, left, right, plan, *, counters=None):
        from scipy import sparse

        big_l, con = left.ext_extent, left.con_extent
        big_r = right.ext_extent
        if not self.has_native_path(left, right, plan):
            return None  # indptr would dominate memory; use the tiled kernel
        lm = sparse.csr_matrix(
            (left.values, (left.ext, left.con)), shape=(big_l, con)
        )
        rm = sparse.csr_matrix(
            (right.values, (right.con, right.ext)), shape=(con, big_r)
        )
        out = lm @ rm
        out.sort_indices()
        coo = out.tocoo()
        if counters is not None:
            counters.data_volume += int(lm.nnz + rm.nnz)
            counters.output_nnz += int(coo.nnz)
        return (
            coo.row.astype(INDEX_DTYPE, copy=False),
            coo.col.astype(INDEX_DTYPE, copy=False),
            np.asarray(coo.data, dtype=VALUE_DTYPE),
        )
