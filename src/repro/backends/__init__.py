"""Pluggable kernel backends (see ``docs/backends.md``).

The hot loops of every contraction scheme run through a
:class:`~repro.backends.base.KernelBackend` — five narrow ops (gather,
scatter-accumulate, dense GEMM-on-slices, hash-accumulate, dense
reduce) plus an optional whole-contraction fast path.  The ``numpy``
backend is the bit-exact reference extracted from the original
kernels; ``scipy`` adds a CSR SpGEMM pairwise path; ``arrayapi``
speaks the array-API standard so torch/cupy arrays drop in unmodified.
Selection goes through :func:`~repro.backends.registry.resolve_backend`
(explicit name → ``$REPRO_BACKEND`` → ``numpy``; ``"auto"`` picks per
problem).
"""

from repro.backends.arrayapi_backend import ArrayAPIBackend
from repro.backends.base import KernelBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import (
    AUTO_DENSITY_CEILING,
    ENV_VAR,
    available_backends,
    backend_status,
    choose_backend,
    choose_backend_for_densities,
    get_backend,
    known_backends,
    register_backend,
    resolve_backend,
)
from repro.backends.scipy_backend import ScipyBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "ScipyBackend",
    "ArrayAPIBackend",
    "AUTO_DENSITY_CEILING",
    "ENV_VAR",
    "available_backends",
    "backend_status",
    "choose_backend",
    "choose_backend_for_densities",
    "get_backend",
    "known_backends",
    "register_backend",
    "resolve_backend",
]
