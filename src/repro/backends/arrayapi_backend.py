"""Array-API backend: the kernel ops written against a neutral namespace.

Every op resolves its array namespace from its operands via
``__array_namespace__`` (the array-API standard's entry point), so
torch, cupy, jax or numpy≥2 arrays flow through the same code
unmodified — the drop-in substrate path from the roadmap's "laptop-CPU
to GPU without forking kernels".  With no foreign arrays in play the
namespace resolves to NumPy itself, which is how the differential
harness exercises this backend on hosts without torch installed.

Two implementation choices differ from the reference and set the
tolerance policy (``docs/backends.md``):

* ``hash_accumulate`` reduces segments with a cumulative-sum difference
  (the standard has no ``reduceat``), which reassociates float adds —
  results match to ``rtol=1e-8``.
* ``contract_linearized`` offers a dense GEMM-on-slices fast path:
  when the linearized matrices fit a cell guard it densifies both
  operands, multiplies with ``gemm_slices``, and reads back the
  nonzeros.  Cells whose partial products cancel to exactly zero are
  dropped (the tiled kernel keeps them as explicit zeros), so
  differential comparisons go through dense reconstruction.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend
from repro.util.arrays import INDEX_DTYPE, VALUE_DTYPE

__all__ = ["ArrayAPIBackend"]

#: Ceiling on the cell count of each densified matrix in the dense
#: GEMM fast path (L*C, C*R and L*R must all fit).
DENSE_GEMM_CELL_GUARD = 1 << 20


class ArrayAPIBackend(KernelBackend):
    """Kernel ops through the array-API standard namespace."""

    name = "arrayapi"
    priority = 5
    #: Results may live in a foreign array library; callers convert at
    #: the boundary with :meth:`to_numpy`.
    native_numpy = False

    def __init__(self, namespace=None):
        #: Pinned namespace (e.g. ``torch``); ``None`` resolves per-op
        #: from the operands.
        self._ns = namespace

    @classmethod
    def detect(cls) -> tuple[bool, str]:
        probe = np.zeros(1)
        if not hasattr(probe, "__array_namespace__"):
            return False, (
                "no array-API namespace available "
                "(needs numpy>=2 or an array-API library such as torch)"
            )
        return True, f"array-API via numpy {np.__version__} (torch/cupy drop in)"

    # -- namespace resolution -------------------------------------------

    def _xp(self, *arrays):
        if self._ns is not None:
            return self._ns
        for arr in arrays:
            ns = getattr(arr, "__array_namespace__", None)
            if ns is not None:
                return ns()
        return np

    # -- array lifecycle ------------------------------------------------

    def zeros(self, n: int, dtype=VALUE_DTYPE):
        xp = self._xp()
        return xp.zeros(int(n), dtype=xp.asarray(np.zeros(0, dtype=dtype)).dtype)

    def asarray(self, arr, dtype=None):
        xp = self._xp(arr)
        return xp.asarray(arr) if dtype is None else xp.asarray(arr, dtype=dtype)

    def to_numpy(self, arr) -> np.ndarray:
        try:
            return np.asarray(arr)
        except TypeError:
            # Device arrays without __array__: go through DLPack.
            return np.from_dlpack(arr)

    # -- kernel ops ------------------------------------------------------

    def gather(self, arr, idx):
        xp = self._xp(arr, idx)
        return xp.take(xp.asarray(arr), xp.asarray(idx), axis=0)

    def scatter_accumulate(self, buf, positions, values, *,
                           return_touched: bool = False):
        xp = self._xp(buf, positions)
        positions = xp.asarray(positions)
        if positions.shape[0] == 0:
            return positions if return_touched else None
        if np.ndim(values) == 0:
            values = xp.full(positions.shape, values, dtype=buf.dtype)
        else:
            values = xp.asarray(values)
        # The standard has no unbuffered scatter-add; pre-combine
        # duplicates so a plain fancy-index accumulate is race-free.
        uniq, sums = self.hash_accumulate(positions, values)
        buf[uniq] = buf[uniq] + xp.astype(sums, buf.dtype)
        return uniq if return_touched else None

    def gemm_slices(self, a, b):
        xp = self._xp(a, b)
        return xp.matmul(xp.asarray(a), xp.asarray(b))

    def hash_accumulate(self, keys, values):
        xp = self._xp(keys, values)
        keys = xp.asarray(keys)
        values = xp.asarray(values)
        n = keys.shape[0]
        if n == 0:
            return keys, values
        order = xp.argsort(keys, stable=True)
        skeys = xp.take(keys, order)
        svals = xp.take(values, order)
        head = xp.ones(1, dtype=xp.bool)
        change = xp.concat([head, skeys[1:] != skeys[:-1]])
        starts = xp.nonzero(change)[0]
        # Segment sums as cumulative-sum differences at segment ends.
        csum = xp.cumulative_sum(svals)
        ends = xp.concat(
            [starts[1:], xp.asarray([n], dtype=starts.dtype)]
        ) - 1
        totals = xp.take(csum, ends)
        sums = totals - xp.concat(
            [xp.zeros(1, dtype=totals.dtype), totals[:-1]]
        )
        return xp.take(skeys, starts), sums

    def dense_reduce(self, arr):
        xp = self._xp(arr)
        return float(xp.sum(xp.asarray(arr)))

    def multiply(self, a, b):
        xp = self._xp(a, b)
        return xp.multiply(xp.asarray(a), xp.asarray(b))

    # -- native pairwise path -------------------------------------------

    def has_native_path(self, left, right, plan) -> bool:
        big_l, con = left.ext_extent, left.con_extent
        big_r = right.ext_extent
        guard = DENSE_GEMM_CELL_GUARD
        return (
            big_l * con <= guard
            and con * big_r <= guard
            and big_l * big_r <= guard
        )

    def contract_linearized(self, left, right, plan, *, counters=None):
        big_l, con = left.ext_extent, left.con_extent
        big_r = right.ext_extent
        if not self.has_native_path(left, right, plan):
            return None  # too large to densify; use the tiled kernel
        xp = self._ns if self._ns is not None else np
        vdt = xp.asarray(np.zeros(0, dtype=VALUE_DTYPE)).dtype
        lm = xp.zeros(big_l * con, dtype=vdt)
        # Linearized operands are deduplicated, so positions are unique
        # and a fancy-index assignment is a faithful scatter.
        lm[xp.asarray(left.ext * con + left.con)] = xp.asarray(left.values)
        rm = xp.zeros(con * big_r, dtype=vdt)
        rm[xp.asarray(right.con * big_r + right.ext)] = xp.asarray(right.values)
        out = self.gemm_slices(
            xp.reshape(lm, (big_l, con)), xp.reshape(rm, (con, big_r))
        )
        out_np = self.to_numpy(out)
        l_idx, r_idx = np.nonzero(out_np)
        if counters is not None:
            counters.data_volume += int(left.nnz + right.nnz)
            counters.output_nnz += int(l_idx.shape[0])
        return (
            l_idx.astype(INDEX_DTYPE, copy=False),
            r_idx.astype(INDEX_DTYPE, copy=False),
            np.asarray(out_np[l_idx, r_idx], dtype=VALUE_DTYPE),
        )
