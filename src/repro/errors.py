"""Exception hierarchy for the FaSTCC reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Specific subclasses mark the subsystem that raised
them; benchmark harnesses rely on :class:`WorkspaceLimitError` to
reproduce the paper's ``DNF`` (did-not-finish) entries without actually
exhausting memory.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "CapacityError",
    "PlanError",
    "ConfigError",
    "WorkspaceLimitError",
    "SchedulerError",
    "StaticCheckError",
    "BackendError",
    "StreamError",
    "StaleReadError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """Tensor shapes or mode specifications are inconsistent."""


class FormatError(ReproError, ValueError):
    """A sparse tensor file or in-memory representation is malformed."""


class CapacityError(ReproError, RuntimeError):
    """A fixed-capacity structure (hash table, pool chunk) overflowed."""


class PlanError(ReproError, ValueError):
    """A contraction plan could not be constructed or is invalid."""


class WorkspaceLimitError(ReproError, MemoryError):
    """A dense workspace would exceed the configured memory guard.

    The paper reports ``DNF`` for the NIPS mode-2 contraction with a dense
    accumulator (Table 3); this error is the mechanism by which the
    reproduction detects and reports that case instead of thrashing.
    """


class ConfigError(ReproError, ValueError):
    """An argument selecting a mode, policy, or parameter is invalid.

    Covers bad enumeration values (``method``, ``accumulator``,
    ``schedule`` …) and out-of-range configuration numbers; kept a
    :class:`ValueError` subclass so pre-existing callers that caught
    ``ValueError`` keep working.
    """


class SchedulerError(ReproError, RuntimeError):
    """The task queue or scheduling simulator was misused."""


class StaticCheckError(ReproError, ValueError):
    """The :mod:`repro.staticcheck` API itself was misused.

    Raised for malformed checker *inputs* (unknown diagnostic codes,
    unparsable lint targets) — never for findings, which are reported as
    :class:`repro.staticcheck.Diagnostic` records instead.
    """


class BackendError(ReproError, RuntimeError):
    """A kernel backend is unknown or unavailable on this host.

    Raised by :mod:`repro.backends.registry` when an explicitly
    requested backend fails feature detection (e.g. ``scipy`` without
    scipy installed); the message carries the detection reason so
    callers — and the test harness's skip messages — can surface it.
    """


class StreamError(ReproError, RuntimeError):
    """The :mod:`repro.streaming` subsystem was misused.

    Covers unknown stream names, deltas applied to tensors they were
    not built for, and mutation-log misuse.
    """


class StaleReadError(StreamError):
    """A cached artifact was read after a dependency moved past it.

    The :class:`repro.streaming.DependencyTracker` raises this when a
    consumer asserts freshness on an artifact whose underlying tensor
    has been mutated since the artifact was (re)built — the dynamic
    counterpart of the static ``FSTC701`` lint.
    """
