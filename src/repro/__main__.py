"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``info``
    Print version, platform models, and the benchmark case registry.
``run CASE``
    Run one registry case (e.g. ``chic_01``, ``C-vvov``) with a chosen
    method and print the plan, timings and counters.
``plan``
    Evaluate Algorithm 7 for explicit problem parameters without
    running anything — the paper's Table 3 calculation as a calculator.
``contract FILE_A FILE_B``
    Contract two FROSTT ``.tns`` files over given mode pairs and write
    the result as ``.tns``.
``batch CASE [CASE ...]``
    Run a pipeline of registry cases through the adaptive runtime
    (``repro.runtime``): plans are cached by structural signature,
    tiled tables are reused across steps sharing an operand, and the
    aggregate hit-rate/speedup metrics are printed at the end.
``check``
    Static analysis (:mod:`repro.staticcheck`) without running any
    kernel.  The default audits every registry case under both paper
    machines and all three Table 3 accumulator columns, reporting
    predicted guard outcomes (the NIPS mode-2 dense DNF appears as
    ``FSTC010``); ``--expr``/``--shapes`` lints one einsum request;
    ``--self`` AST-lints the ``repro`` source tree and audits the FSTC
    code registry against its docs.  Exit status is 1 when any
    error-severity finding is reported.
``network EXPR``
    Plan a multi-operand tensor-network contraction through
    :mod:`repro.network` — ``--explain`` prints the chosen path, per-step
    subscripts, predicted nnz/cost and accumulator choices without
    executing; without it, random operands are drawn at the declared
    shapes/nnz and the plan runs through the network executor
    (``--repeat`` shows the warm plan-cache path).
``serve``
    Run a load generator against a live :mod:`repro.serve`
    :class:`~repro.serve.ContractionService`: a mixed-signature
    synthetic workload is submitted open-loop (Poisson arrivals at
    ``--rate``) or closed-loop (``--closed N`` clients), and the SLO
    metrics — per-stage latency percentiles, terminal status counts,
    queue stats, cache hit rates — are printed (``--json`` for the raw
    document).  ``--demo`` runs a canned capacity-then-overload
    sequence; with ``--quick`` it is the CI smoke configuration.
    ``--autotune`` turns on online bandit exploration
    (:mod:`repro.autotune`), with ``--autotune-state`` persisting the
    learned weights, measurements and promotions across restarts.
``autotune``
    Operate on learned autotune state: inspect a state file (default),
    ``--replay`` the promotion/rollback audit log, ``--reset`` the
    learned state in place, or run the end-to-end ``--self-check``
    (explore on live contractions, promote on synthetic skew, roll back
    on regression, round-trip persistence) — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_info(args) -> int:
    import repro
    from repro.data.registry import all_cases
    from repro.machine.specs import DESKTOP, SERVER

    from repro.backends import backend_status

    print(f"repro {repro.__version__} — FaSTCC reproduction (SC '25)")
    for m in (DESKTOP, SERVER):
        print(f"  machine {m.name}: {m.n_cores} cores, "
              f"L3 {m.l3_bytes >> 20} MiB, dense tile {m.dense_tile_size()}")
    print("\nkernel backends:")
    for name, (ok, reason) in backend_status().items():
        mark = "available" if ok else "unavailable"
        print(f"  {name:<10} {mark:<12} {reason}")
    print(f"\nregistered benchmark cases ({len(all_cases())}):")
    for name, case in all_cases().items():
        print(f"  {name:<10} [{case.family}]  paper model: {case.paper['model']}")
    return 0


def _cmd_run(args) -> int:
    from repro import Counters, contract
    from repro.data.registry import get_case
    from repro.machine.specs import DESKTOP, SERVER

    from repro.errors import WorkspaceLimitError

    case = get_case(args.case)
    machine = SERVER if args.machine == "server" else DESKTOP
    left, right, pairs = case.load()
    counters = Counters()
    t0 = time.perf_counter()
    try:
        out, stats = contract(
            left, right, pairs,
            method=args.method, machine=machine,
            accumulator=args.accumulator, tile_size=args.tile,
            n_workers=args.workers, counters=counters, return_stats=True,
            backend=args.backend,
        )
    except WorkspaceLimitError as exc:
        # The paper's DNF regime (Table 3, NIPS mode 2 with dense tiles).
        print(f"case {args.case}: DNF — {exc}")
        return 2
    dt = time.perf_counter() - t0
    plan = stats.plan
    print(f"case {args.case} [{case.family}] via {args.method}")
    print(f"  inputs: nnz_L={left.nnz}, nnz_R={right.nnz}; "
          f"L={plan.spec.L}, R={plan.spec.R}, C={plan.spec.C}")
    print(f"  plan: {plan.accumulator} accumulator, tile "
          f"{plan.tile_l}x{plan.tile_r} on {plan.machine_name}")
    print(f"  output: nnz={out.nnz} ({out.ndim} modes), time={dt:.4f}s")
    print(f"  phases: " + ", ".join(
        f"{k}={v:.4f}s" for k, v in stats.phase_seconds.items()))
    print(f"  counters: {counters.snapshot()}")
    return 0


def _cmd_plan(args) -> int:
    from repro.core.model import choose_accumulator
    from repro.machine.specs import DESKTOP, SERVER

    machine = SERVER if args.machine == "server" else DESKTOP
    choice = choose_accumulator(
        args.L, args.R, args.C, args.nnz_l, args.nnz_r, machine
    )
    print(f"Algorithm 7 on {machine.name}:")
    print(f"  p_L = {choice.p_l:.4e}, p_R = {choice.p_r:.4e}")
    print(f"  estimated output density = {choice.output_density:.4e}")
    print(f"  E_nnz(T^2) = {choice.expected_tile_nnz:.4e} "
          f"(probe tile T = {choice.dense_probe_tile})")
    print(f"  decision: {choice.accumulator} accumulator, "
          f"tile size {choice.tile_size}")
    return 0


def _cmd_contract(args) -> int:
    from repro import contract
    from repro.tensors.io import read_tns, write_tns

    left = read_tns(args.file_a)
    right = read_tns(args.file_b)
    pairs = []
    for token in args.pairs.split(","):
        a, b = token.split(":")
        pairs.append((int(a), int(b)))
    t0 = time.perf_counter()
    out = contract(left, right, pairs, method=args.method, backend=args.backend)
    dt = time.perf_counter() - t0
    write_tns(out, args.output)
    print(f"contracted {left.nnz} x {right.nnz} nonzeros over {pairs} "
          f"-> {out.nnz} nonzeros in {dt:.3f}s; wrote {args.output}")
    return 0


def _cmd_batch(args) -> int:
    from repro.machine.specs import DESKTOP, SERVER
    from repro.runtime import BatchExecutor, BatchItem, ContractionRuntime

    machine = SERVER if args.machine == "server" else DESKTOP
    runtime = ContractionRuntime(
        machine=machine,
        cache_path=args.cache_file,
        n_workers=args.workers,
        calibrate=not args.no_calibrate,
        backend=args.backend,
        # Size the operand cache so a full pass over the distinct cases
        # fits — otherwise --repeat evicts every table before reuse.
        operand_cache_size=max(8, 2 * len(set(args.cases))),
    )
    items = []
    for _ in range(max(1, args.repeat)):
        for name in args.cases:
            left, right, pairs = _batch_operands(name)
            items.append(BatchItem(left, right, tuple(pairs), name=name))

    executor = BatchExecutor(runtime)
    t0 = time.perf_counter()
    report = executor.run(items)
    dt = time.perf_counter() - t0
    print(f"batch of {len(items)} contractions on {machine.name} "
          f"({dt:.4f}s wall):")
    print(report.summary())
    if runtime.calibrator is not None and runtime.calibrator.samples:
        runtime.calibrator.fit()
        before, after = runtime.calibrator.improvement()
        print(f"cost-model calibration over {len(runtime.calibrator.samples)} "
              f"runs: relative error {before:.2f} -> {after:.2f}")
    if args.cache_file:
        runtime.flush()
        print(f"plan cache persisted to {args.cache_file} "
              f"({len(runtime.plan_cache)} entries)")
    return 0


def _batch_operands(name: str):
    """Load one registry case, memoized so repeated steps share the
    *same* tensor objects (what makes table reuse kick in)."""
    from repro.data.registry import get_case

    cache = _batch_operands.__dict__.setdefault("cache", {})
    if name not in cache:
        cache[name] = get_case(name).load()
    return cache[name]


def _cmd_network(args) -> int:
    import json

    from repro.data.random_tensors import random_coo
    from repro.machine.specs import DESKTOP, SERVER
    from repro.network import NetworkExecutor, TensorNetwork, build_plan
    from repro.network.optimize import resolve_optimizer

    machine = SERVER if args.machine == "server" else DESKTOP
    shapes = _parse_shapes(args.shapes)
    nnz = [int(n) for n in args.nnz.split(",")] if args.nnz else None

    network = TensorNetwork.parse(args.expr, shapes, nnz=nnz)
    plan = build_plan(
        network, machine, resolve_optimizer(args.optimizer, network)
    )
    if args.json:
        print(json.dumps(plan.to_json(), indent=2))
    else:
        print(plan.explain())
    if args.explain:
        return 0

    # Execute mode: draw random operands at the declared shapes/nnz and
    # run the plan through a fresh executor, --repeat times (repeats
    # after the first replay cached plans at both levels).
    executor = NetworkExecutor(
        machine=machine, n_workers=args.workers, passes=args.passes,
    )
    operands = [
        random_coo(meta.shape, nnz=meta.nnz, seed=args.seed + k)
        for k, meta in enumerate(network.operands)
    ]
    print()
    for r in range(max(1, args.repeat)):
        out, report = executor.contract(
            args.expr, *operands,
            optimizer=args.optimizer, method=args.method,
            return_report=True, backend=args.backend,
        )
        print(f"run {r}:")
        print(report.summary())
    print()
    print("executor metrics:")
    for k, v in executor.metrics().items():
        print(f"  {k} = {v}")
    return 0


def _parse_shapes(text: str) -> list[tuple[int, ...]]:
    return [
        tuple(int(d) for d in token.split("x"))
        for token in text.split(",") if token
    ]


#: Hazard analysis materializes the occupied tile-pair list; past this
#: many *potential* pairs we only report the guard verdict (which the
#: plan lint already covers) instead of enumerating millions of tasks.
_HAZARD_PAIR_LIMIT = 1 << 18


def _emit_diagnostics(args, diags, extra: dict | None = None) -> int:
    """Print findings (text or ``--json``) and return the exit status."""
    from repro.staticcheck import (
        diagnostics_to_json,
        max_exit_status,
        render_diagnostics,
    )

    if getattr(args, "json", False):
        import json

        doc = diagnostics_to_json(diags)
        if extra:
            doc.update(extra)
        print(json.dumps(doc, indent=2))
    elif diags:
        print(render_diagnostics(diags))
    else:
        print("no findings")
    return max_exit_status(diags)


def _cmd_check(args) -> int:
    from repro.staticcheck import lint_expression

    if args.self_check:
        from repro.staticcheck import audit_code_registry, lint_tree

        diags = list(lint_tree())
        # The FSTC catalogue itself is part of the checked surface: the
        # registry and docs/staticcheck.md must agree code-for-code.
        diags.extend(audit_code_registry())
        return _emit_diagnostics(args, diags)

    if args.passes_check:
        from repro.staticcheck import self_test_passes

        diags, summary = self_test_passes()
        if not args.json:
            print(f"pass self-test: {summary['scenarios']} scenarios, "
                  f"{summary['clean_pipelines']} clean pipeline runs, "
                  f"{summary['corruptions_caught']} corruptions caught")
        return _emit_diagnostics(args, diags, extra={"summary": summary})

    if args.expr is not None:
        from repro.machine.specs import DESKTOP, SERVER

        if args.shapes is None:
            print("check --expr requires --shapes", file=sys.stderr)
            return 2
        machine = SERVER if args.machine == "server" else DESKTOP
        nnz = (
            [int(n) for n in args.nnz.split(",")] if args.nnz else None
        )
        report = lint_expression(
            args.expr, _parse_shapes(args.shapes),
            nnz=nnz, machine=machine,
            accumulator=(
                "auto" if args.accumulator == "all" else args.accumulator
            ),
            tile_size=args.tile,
            dtypes=args.dtypes.split(",") if args.dtypes else None,
            location=f"expr {args.expr!r}",
        )
        if not args.json:
            if report.prediction is not None:
                p = report.prediction
                print(f"predicted plan on {machine.name}: {p.accumulator} "
                      f"accumulator, tile {p.tile_l}x{p.tile_r}, grid "
                      f"{p.grid_l}x{p.grid_r} "
                      f"(<= {p.est_nonempty_pairs} tasks)")
            print(f"verdict: {report.verdict}")
        return _emit_diagnostics(
            args, report.diagnostics, extra={"verdict": report.verdict}
        )

    return _check_audit(args)


def _check_audit(args) -> int:
    """Registry-wide static audit (the Table 3 reproduction)."""
    from repro.staticcheck import audit_registry
    from repro.staticcheck.audit import occupied_tile_pairs
    from repro.staticcheck.graph_lint import (
        analyze_task_graph,
        write_sets_for_pairs,
    )

    machines = (
        ("desktop", "server") if args.machine == "both" else (args.machine,)
    )
    accumulators = (
        ("auto", "dense", "sparse") if args.accumulator == "all"
        else (args.accumulator,)
    )
    audits = audit_registry(
        cases=args.cases or None,
        machines=machines, accumulators=accumulators,
    )

    diags = []
    verdicts = {}
    header = f"{'case':<12}" + "".join(
        f"{m}/{a:<8}" for m in machines for a in accumulators
    )
    if not args.json:
        print(header)
    for audit in audits:
        cells = []
        for m in machines:
            for a in accumulators:
                v = audit.verdict(m, a)
                verdicts[f"{audit.case}/{m}/{a}"] = v
                cells.append("DNF" if v == "dnf" else v)
        if not args.json:
            print(f"{audit.case:<12}" + "".join(f"{c:<{len(m) + 9}}"
                  for c, m in zip(cells, [m for m in machines
                                          for _ in accumulators])))
        diags.extend(audit.diagnostics)
        if args.hazards:
            diags.extend(_audit_hazards(
                audit, machines, analyze_task_graph,
                write_sets_for_pairs, occupied_tile_pairs,
                n_workers=args.workers,
            ))

    if not args.json:
        print()
    return _emit_diagnostics(args, diags, extra={"verdicts": verdicts})


def _audit_hazards(
    audit, machines, analyze_task_graph, write_sets_for_pairs,
    occupied_tile_pairs, *, n_workers,
):
    """Hazard-check each machine's chosen (auto) dispatch list."""
    out = []
    for m in machines:
        report = audit.reports.get((m, "auto"))
        if report is None or report.prediction is None:
            continue
        p = report.prediction
        if p.est_nonempty_pairs > _HAZARD_PAIR_LIMIT:
            print(f"  [{audit.case}/{m}] skipping hazard enumeration: "
                  f"up to {p.est_nonempty_pairs} pairs (> "
                  f"{_HAZARD_PAIR_LIMIT}); guard verdicts above still apply")
            continue
        pairs = occupied_tile_pairs(audit.problem, p.tile_l, p.tile_r)
        found = analyze_task_graph(
            write_sets_for_pairs(pairs), n_workers=n_workers
        )
        out.extend(
            d.with_location(f"case {audit.case} [{m}] {d.location}")
            for d in found
        )
    return out


def _serve_backend(args, machine, config):
    """The serving backend the CLI flags select.

    ``--shards 1`` (the default) runs the in-process
    :class:`~repro.serve.ContractionService`; ``--shards N`` fronts N
    spawned shard processes with the consistent-hash
    :class:`~repro.serve.ShardRouter`.  Both speak the same
    ``submit``/context-manager surface, so the load generators drive
    either.
    """
    from repro.serve import ContractionService, ShardedConfig, ShardRouter

    if args.shards > 1:
        sharded = ShardedConfig(
            n_shards=args.shards,
            service=config,
            cache_dir=getattr(args, "cache_dir", None),
        )
        return ShardRouter(machine=machine, config=sharded)
    return ContractionService(machine=machine, config=config)


def _render_service(service) -> str:
    """Human-readable metrics for either backend."""
    metrics = getattr(service, "metrics", None)
    if metrics is not None:
        return metrics.render()
    doc = service.metrics_json()
    router = doc["router"]
    agg = doc["aggregate"]
    lines = [
        f"sharded service: {router['live_shards']}/{router['n_shards']} "
        f"shards live, deaths={router['deaths']}, "
        f"requeued={router['requeued']}, respawns={router['respawns']}",
        f"  aggregate statuses: {agg['statuses']}",
        f"  aggregate plan hit rate: "
        f"{agg['runtime']['plan_hit_rate']:.1%}",
    ]
    for shard_id, shard in sorted(doc["shards"].items()):
        runtime = shard.get("runtime", {})
        lines.append(
            f"  shard {shard_id}: statuses {shard['statuses']}, "
            f"plan hit rate {runtime.get('plan_hit_rate', 0.0):.1%}"
        )
    return "\n".join(lines)


def _cmd_serve(args) -> int:
    import json

    from repro.machine.specs import DESKTOP, SERVER
    from repro.serve import (
        ServiceConfig,
        run_closed_loop,
        run_open_loop,
        synthetic_requests,
    )

    machine = SERVER if args.machine == "server" else DESKTOP
    if args.demo:
        return _serve_demo(args, machine)

    config = ServiceConfig(
        queue_capacity=args.capacity,
        policy=args.policy,
        n_workers=args.workers,
        max_batch=args.max_batch,
        default_deadline_s=args.deadline,
        backend=args.backend or "numpy",
        autotune=args.autotune,
        autotune_explore_rate=args.autotune_rate,
        autotune_state_path=args.autotune_state,
    )
    requests = synthetic_requests(
        args.requests,
        n_signatures=args.signatures,
        seed=args.seed,
        deadline_s=args.deadline,
    )
    # Not a ``with`` block: a KeyboardInterrupt would unwind the context
    # manager, but ``close()`` in ``finally`` also reaps shard processes
    # spawned before ``start()`` finished (see ShardRouter.close).
    service = _serve_backend(args, machine, config)
    try:
        service.start()
        if args.closed:
            report = run_closed_loop(
                service, requests, concurrency=args.closed, seed=args.seed
            )
        else:
            report = run_open_loop(
                service, requests, args.rate, seed=args.seed
            )
        if args.json:
            doc = {"load": report.to_json(), "service": service.metrics_json()}
            print(json.dumps(doc, indent=2))
        else:
            print(report.render())
            print()
            print(_render_service(service))
            tuner = getattr(service, "tuner", None)
            if tuner is not None:
                print(f"  autotune: {tuner.metrics()}")
    finally:
        service.close()
    return 0


def _serve_demo(args, machine) -> int:
    """Canned capacity-then-overload sequence (the CI smoke path).

    Phase 1 measures capacity closed-loop; phase 2 offers a multiple of
    it open-loop against a small bounded queue so the admission policy
    visibly sheds.  Exit is nonzero if any request fails outright or
    the queue ever exceeds its bound.  With ``--shards N`` the same
    two phases run against the process-sharded router instead.
    """
    from repro.serve import (
        ServiceConfig,
        run_closed_loop,
        run_open_loop,
        synthetic_requests,
    )
    from repro.serve.loadgen import _queue_stats

    n = 12 if args.quick else 60
    capacity = 4 if args.quick else 16
    config = ServiceConfig(
        queue_capacity=capacity, policy="shed_oldest",
        n_workers=args.workers, max_batch=args.max_batch,
        backend=args.backend or "numpy",
        autotune=args.autotune,
        autotune_explore_rate=args.autotune_rate,
        autotune_state_path=args.autotune_state,
    )
    requests = synthetic_requests(n, n_signatures=3, seed=args.seed)
    # try/finally rather than ``with``: Ctrl-C during the demo must
    # still reap any spawned shard processes (the old context-manager
    # form leaked them when the interrupt landed inside ``start()``).
    service = _serve_backend(args, machine, config)
    try:
        service.start()
        closed = run_closed_loop(
            service, requests, concurrency=2, seed=args.seed
        )
        print("phase 1 — capacity (closed loop):")
        print(closed.render())
        # Offer well above the measured capacity so shedding engages.
        rate = max(10.0, 4.0 * closed.achieved_rps)
        open_report = run_open_loop(
            service, requests, rate, seed=args.seed
        )
        print("\nphase 2 — overload (open loop):")
        print(open_report.render())
        queue_stats = _queue_stats(service)
        print()
        print(_render_service(service))
        tuner = getattr(service, "tuner", None)
        if tuner is not None:
            print(f"  autotune: {tuner.metrics()}")
        ok = (
            open_report.statuses.get("failed", 0) == 0
            and closed.statuses.get("failed", 0) == 0
            and queue_stats["high_water"] <= queue_stats["capacity"]
        )
    finally:
        service.close()
    if ok:
        print(f"\ndemo PASS: bounded queue high-water "
              f"{queue_stats['high_water']}/{queue_stats['capacity']}, "
              f"no failed requests")
    else:
        print(f"\ndemo FAIL: statuses {open_report.statuses}, "
              f"queue {queue_stats}")
    return 0 if ok else 1


def _cmd_autotune(args) -> int:
    import json

    if args.self_check:
        return _autotune_self_check(args)
    if args.state is None:
        print("repro autotune needs --state FILE (or --self-check)",
              file=sys.stderr)
        return 2

    from repro.autotune import AutotuneState

    # The machine name is embedded in the file; read it first so the
    # loader's machine-mismatch guard does not fight the inspector.
    try:
        with open(args.state, encoding="utf-8") as fh:
            machine_name = str(json.load(fh).get("machine", ""))
    except (OSError, ValueError) as exc:
        if args.reset:
            machine_name = "desktop-i7-11700F"
        else:
            print(f"cannot read {args.state}: {exc}", file=sys.stderr)
            return 1

    if args.reset:
        fresh = AutotuneState(machine_name)
        path = fresh.save(args.state)
        print(f"reset learned autotune state at {path} "
              f"(machine {machine_name})")
        return 0

    state = AutotuneState(machine_name)
    if not state.load(args.state):
        print(f"cannot load {args.state}: {state.load_error}",
              file=sys.stderr)
        return 1

    if args.replay:
        if args.json:
            print(json.dumps([e.to_json() for e in state.history], indent=2))
            return 0
        if not state.history:
            print("no promotion history")
            return 0
        for e in state.history:
            print(f"{e.timestamp:.3f} {e.event:<9} {e.arm_id:<16} "
                  f"challenger {e.challenger_mean:.3e}s vs champion "
                  f"{e.champion_mean:.3e}s  [{e.sig_key}]")
            if e.reason:
                print(f"    {e.reason}")
        return 0

    if args.json:
        print(json.dumps(state.summary(), indent=2))
        return 0
    s = state.summary()
    print(f"autotune state {args.state} (machine {s['machine']}):")
    print(f"  weights fitted: {s['weights_fitted']}")
    print(f"  measurements: {s['samples']} samples over "
          f"{s['signatures']} signatures")
    print(f"  champions: {s['champions']} promoted "
          f"({s['promotions']} promotions, {s['rollbacks']} rollbacks "
          f"on record)")
    for sig_key, record in sorted(state.champions.items()):
        print(f"    {record.arm_id:<16} baseline "
              f"{record.baseline_mean:.3e}s  [{sig_key}]")
    return 0


def _autotune_self_check(args) -> int:
    """End-to-end tuner exercise on live contractions (the CI gate).

    Four assertions: exploration happens on eligible traffic; explored
    executions are numerically identical to the champion's; a
    synthetically skewed challenger is promoted and a synthetic
    regression rolls it back; flushed state round-trips into a fresh
    tuner (warm start).
    """
    import os
    import tempfile

    import numpy as np

    from repro.autotune import (
        CHAMPION_ARM,
        OnlineTuner,
        TunerConfig,
        pairwise_candidates,
    )
    from repro.data.random_tensors import random_coo
    from repro.machine.specs import DESKTOP
    from repro.runtime import ContractionRuntime
    from repro.runtime.signature import signature_for

    rounds = 24 if args.quick else 80
    failures: list[str] = []

    def check(ok: bool, label: str) -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures.append(label)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "autotune.json")
        runtime = ContractionRuntime(machine=DESKTOP)
        tuner = OnlineTuner(DESKTOP, TunerConfig(
            explore_rate=0.25, min_trials=2, promote_margin=0.05,
            refit_every=8, state_path=path, default_eligible=True,
            seed=args.seed,
        )).attach(runtime)

        left = random_coo((48, 40), nnz=320, seed=args.seed)
        right = random_coo((40, 44), nnz=320, seed=args.seed + 1)
        reference = runtime.contract(left, right, [(1, 0)]).to_dense()

        print("autotune self-check:")
        max_diff = 0.0
        for _ in range(rounds):
            out = runtime.contract(left, right, [(1, 0)])
            max_diff = max(
                max_diff, float(np.abs(out.to_dense() - reference).max())
            )
        metrics = tuner.metrics()
        check(metrics["explorations"] > 0,
              f"exploration under budget ({metrics['explorations']} of "
              f"{metrics['eligible_calls']} eligible calls)")
        check(max_diff <= 1e-8 * max(1.0, float(np.abs(reference).max())),
              f"explored results match champion (max diff {max_diff:.2e})")

        # Synthetic skew on a *fresh* signature (the live loop above may
        # already hold promotions or cooldowns on its own): a fast
        # challenger must be promoted, then a regression rolled back.
        sig = signature_for(
            random_coo((32, 28), nnz=200, seed=args.seed + 2),
            random_coo((28, 36), nnz=200, seed=args.seed + 3),
            [(1, 0)], DESKTOP,
        )
        arm = pairwise_candidates(sig, DESKTOP)[0].arm_id
        for _ in range(3):
            tuner.observe_pairwise(sig, CHAMPION_ARM, 10e-3)
            tuner.observe_pairwise(sig, arm, 1e-3)
        promoted = tuner.state.champion(sig.key)
        check(promoted is not None and promoted.arm_id == arm,
              f"synthetic skew promotes the fast challenger ({arm})")
        for _ in range(8):
            tuner.observe_pairwise(sig, None, 100e-3)
        check(tuner.state.champion(sig.key) is None and tuner.rollbacks >= 1,
              "synthetic regression rolls the promotion back")

        flushed = tuner.flush()
        samples_before = tuner.state.store.summary()["samples"]

        runtime2 = ContractionRuntime(machine=DESKTOP)
        tuner2 = OnlineTuner(DESKTOP, TunerConfig(
            state_path=path, default_eligible=True,
        )).attach(runtime2)
        samples_after = tuner2.state.store.summary()["samples"]
        check(flushed == path and tuner2.state.loaded_from == path
              and samples_after == samples_before,
              f"persisted state round-trips ({samples_after} samples "
              f"warm-started)")

    if failures:
        print(f"self-check FAIL: {len(failures)} of 5 checks failed")
        return 1
    print("self-check PASS")
    return 0


def _cmd_stream(args) -> int:
    if not args.demo:
        print("repro stream currently only supports --demo", file=sys.stderr)
        return 2
    return _stream_demo(args)


def _stream_demo(args) -> int:
    """End-to-end streaming exercise (the CI gate).

    Checks: a registered stream matches einsum; a small delta takes the
    incremental path and its patched output is *bit-identical* (same
    coordinates, same bytes of values) to a from-scratch contraction of
    the mutated tensor under the same plan; a sweeping delta falls back
    to full recompute; the stale-read guard fires between a bump and
    its refresh; and the ``stream`` request kind round-trips through a
    live :class:`~repro.serve.ContractionService`.
    """
    import time

    import numpy as np

    import repro
    from repro.data.random_tensors import random_coo
    from repro.errors import StaleReadError
    from repro.machine.specs import DESKTOP
    from repro.serve import ContractionService, Request, ServiceConfig
    from repro.streaming import DeltaBatch, IncrementalEngine

    failures: list[str] = []

    def check(ok: bool, label: str) -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures.append(label)

    nnz = 1200 if args.quick else 6000
    left = random_coo((2048, 48), nnz=nnz, seed=args.seed)
    right = random_coo((48, 400), nnz=nnz // 2, seed=args.seed + 1)

    print("stream demo:")
    engine = IncrementalEngine(DESKTOP)
    out0 = engine.register("demo", left, right, [(1, 0)])
    expect0 = repro.einsum("ij,jk->ik", left, right)
    check(out0.allclose(expect0), "registered stream matches einsum")

    # A delta confined to one row block (insert, update and delete all
    # land on nearby rows): one touched tile, so the density model
    # prices the patch far below a full recompute.
    victim = left.coords[:, int(np.argmin(left.coords[0]))]
    delta = DeltaBatch.from_ops(
        [("insert", (int(victim[0]), j % left.shape[1]), 1.0 + j)
         for j in range(8)]
        + [("delete", tuple(victim), 0.0)],
        left.shape,
    )
    t0 = time.perf_counter()
    stats = engine.apply_delta("demo", delta)
    dt_inc = time.perf_counter() - t0
    mutated = delta.apply(left)
    check(
        stats.mode == "incremental",
        f"small delta takes the incremental path (modeled fraction "
        f"{stats.modeled_fraction:.3f}, {stats.tiles_touched} of "
        f"{stats.tiles_total} tiles)",
    )
    out1 = engine.result("demo")
    fresh = IncrementalEngine(DESKTOP)
    ref1 = fresh.register(
        "ref", mutated, right, [(1, 0)], plan=engine._state("demo").plan
    )
    check(
        np.array_equal(out1.coords, ref1.coords)
        and np.array_equal(out1.values, ref1.values),
        "patched output is bit-identical to a from-scratch contraction",
    )

    # A delta sweeping most row blocks must fall back to full recompute.
    rows = np.linspace(0, left.shape[0] - 1, 400).astype(int)
    wide = DeltaBatch.inserts(
        np.stack([rows, np.full(rows.size, 3)]),
        np.ones(rows.size), left.shape,
    )
    t0 = time.perf_counter()
    stats_full = engine.apply_delta("demo", wide)
    dt_full = time.perf_counter() - t0
    check(
        stats_full.mode == "full",
        f"sweeping delta falls back to full recompute (modeled fraction "
        f"{stats_full.modeled_fraction:.3f})",
    )
    check(
        engine.result("demo").allclose(
            repro.einsum("ij,jk->ik", wide.apply(mutated), right)
        ),
        "output stays correct across the incremental/full chain",
    )
    print(f"  (incremental delta {dt_inc * 1e3:.1f} ms, "
          f"full recompute {dt_full * 1e3:.1f} ms)")

    stale = False
    engine.tracker.bump("demo.left")
    try:
        engine.result("demo")
    except StaleReadError:
        stale = True
    check(stale, "stale-read guard fires between bump and refresh")
    engine.invalidate("demo")

    with ContractionService(config=ServiceConfig(n_workers=2)) as service:
        resp = service.call(Request.stream(
            "served", "register", left=left, right=right, pairs=[(1, 0)],
        ))
        resp_d = service.call(Request.stream("served", "delta", delta=delta))
        ok = (
            resp.status == "ok" and resp_d.status == "ok"
            and resp_d.result is not None
            and resp_d.result.allclose(
                repro.einsum("ij,jk->ik", mutated, right)
            )
        )
        check(ok, f"stream requests serve end-to-end (delta path "
                  f"{resp_d.plan_source!r})")

    if failures:
        print(f"stream demo FAIL: {len(failures)} of 6 checks failed")
        return 1
    print("stream demo PASS")
    return 0


def _add_backend_flag(subparser) -> None:
    """Shared ``--backend`` flag (kernel backend selection)."""
    subparser.add_argument(
        "--backend", default=None,
        choices=["numpy", "scipy", "arrayapi", "auto"],
        help="kernel backend (default: $REPRO_BACKEND or the numpy "
             "reference; 'auto' picks per problem)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FaSTCC sparse tensor contraction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show version, machines and cases")

    run = sub.add_parser("run", help="run a registry benchmark case")
    run.add_argument("case")
    run.add_argument("--method", default="fastcc",
                     choices=["fastcc", "sparta", "taco", "ci", "cm", "co"])
    run.add_argument("--machine", default="desktop",
                     choices=["desktop", "server"])
    run.add_argument("--accumulator", default="auto",
                     choices=["auto", "dense", "sparse"])
    run.add_argument("--tile", type=int, default=None)
    run.add_argument("--workers", type=int, default=1)
    _add_backend_flag(run)

    plan = sub.add_parser("plan", help="evaluate Algorithm 7 for parameters")
    plan.add_argument("--L", type=int, required=True)
    plan.add_argument("--R", type=int, required=True)
    plan.add_argument("--C", type=int, required=True)
    plan.add_argument("--nnz-l", type=int, required=True, dest="nnz_l")
    plan.add_argument("--nnz-r", type=int, required=True, dest="nnz_r")
    plan.add_argument("--machine", default="desktop",
                      choices=["desktop", "server"])

    batch = sub.add_parser(
        "batch", help="run registry cases through the adaptive runtime"
    )
    batch.add_argument("cases", nargs="+",
                       help="registry case names, executed in order")
    batch.add_argument("--repeat", type=int, default=1,
                       help="repeat the whole pipeline N times")
    batch.add_argument("--machine", default="desktop",
                       choices=["desktop", "server"])
    batch.add_argument("--workers", type=int, default=1)
    batch.add_argument("--cache-file", default=None,
                       help="JSON plan-cache file (loaded if present, "
                            "saved on exit)")
    batch.add_argument("--no-calibrate", action="store_true",
                       help="skip cost-model calibration")
    _add_backend_flag(batch)

    check = sub.add_parser(
        "check", help="static analysis: audit cases, lint an expression, "
                      "or lint the source tree"
    )
    check.add_argument("cases", nargs="*",
                       help="registry cases to audit (default: all)")
    check.add_argument("--machine", default="both",
                       choices=["desktop", "server", "both"])
    check.add_argument("--accumulator", default="all",
                       choices=["auto", "dense", "sparse", "all"])
    check.add_argument("--hazards", action="store_true",
                       help="also hazard-check each case's tile-task "
                            "write sets")
    check.add_argument("--workers", type=int, default=1,
                       help="worker count assumed by the hazard analysis")
    check.add_argument("--expr", default=None,
                       help="einsum subscripts to lint (e.g. 'ij,jk->ik')")
    check.add_argument("--shapes", default=None,
                       help="per-operand shapes, e.g. '100x200,200x50'")
    check.add_argument("--nnz", default=None,
                       help="per-operand nonzero counts, e.g. '1000,2000'")
    check.add_argument("--dtypes", default=None,
                       help="per-operand dtypes, e.g. 'float64,float64'")
    check.add_argument("--tile", type=int, default=None,
                       help="tile-size override to lint")
    check.add_argument("--self", dest="self_check", action="store_true",
                       help="AST-lint the repro source tree")
    check.add_argument("--passes", dest="passes_check", action="store_true",
                       help="self-test the network optimizer-pass "
                            "pipeline and its verifier (FSTC5xx)")
    check.add_argument("--json", action="store_true",
                       help="machine-readable findings (code, severity, "
                            "location, message) instead of text")

    net = sub.add_parser(
        "network", help="plan (and optionally execute) a multi-operand "
                        "tensor-network contraction"
    )
    net.add_argument("expr",
                     help="einsum subscripts, e.g. 'ij,jk,kl->il'")
    net.add_argument("--shapes", required=True,
                     help="per-operand shapes, e.g. '100x200,200x50,50x30'")
    net.add_argument("--nnz", default=None,
                     help="per-operand nonzero counts (default 1%% density)")
    net.add_argument("--optimizer", default="auto",
                     choices=["auto", "left", "greedy", "dp", "sparsity"])
    net.add_argument("--machine", default="desktop",
                     choices=["desktop", "server"])
    net.add_argument("--explain", action="store_true",
                     help="print the plan only; do not execute")
    net.add_argument("--json", action="store_true",
                     help="print the plan as JSON instead of the table")
    net.add_argument("--method", default="fastcc",
                     choices=["fastcc", "sparta", "taco", "ci", "cm", "co"])
    net.add_argument("--seed", type=int, default=0,
                     help="seed for the randomly drawn operands")
    net.add_argument("--repeat", type=int, default=1,
                     help="execute the network N times (repeats hit the "
                          "plan caches)")
    net.add_argument("--passes", default="default",
                     help="optimizer pass pipeline: 'default', 'none', "
                          "or a comma-separated pass list")
    net.add_argument("--workers", type=int, default=1)
    _add_backend_flag(net)

    serve = sub.add_parser(
        "serve", help="run a load generator against a live contraction "
                      "service and report SLO metrics"
    )
    serve.add_argument("--demo", action="store_true",
                       help="canned capacity-then-overload sequence "
                            "(exit 1 if the bounded-queue invariant or "
                            "any request fails)")
    serve.add_argument("--quick", action="store_true",
                       help="shrink --demo to the CI smoke budget")
    serve.add_argument("--policy", default="reject",
                       choices=["reject", "shed_oldest", "block"])
    serve.add_argument("--capacity", type=int, default=64,
                       help="admission queue bound")
    serve.add_argument("--workers", type=int, default=2,
                       help="service worker threads")
    serve.add_argument("--max-batch", type=int, default=8, dest="max_batch",
                       help="micro-batch drain size")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds")
    serve.add_argument("--requests", type=int, default=40,
                       help="synthetic request count")
    serve.add_argument("--signatures", type=int, default=4,
                       help="distinct problem signatures in the stream")
    serve.add_argument("--rate", type=float, default=50.0,
                       help="open-loop offered rate (requests/second)")
    serve.add_argument("--closed", type=int, default=0, metavar="N",
                       help="use N closed-loop clients instead of the "
                            "open-loop Poisson generator")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--shards", type=int, default=1,
                       help="front N shard processes with the "
                            "consistent-hash router (1 = in-process)")
    serve.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="per-shard plan-cache directory for "
                            "warm-start across restarts")
    serve.add_argument("--machine", default="desktop",
                       choices=["desktop", "server"])
    serve.add_argument("--json", action="store_true",
                       help="print the load report and service metrics "
                            "as one JSON document")
    serve.add_argument("--autotune", action="store_true",
                       help="explore challenger plans on eligible live "
                            "traffic (bandit autotuning)")
    serve.add_argument("--autotune-rate", type=float, default=0.05,
                       dest="autotune_rate",
                       help="fraction of eligible calls that may run a "
                            "challenger (default 0.05)")
    serve.add_argument("--autotune-state", default=None,
                       dest="autotune_state",
                       help="JSON file persisting learned weights, "
                            "measurements and promotions across restarts "
                            "(sharded serving derives per-shard files "
                            "from --cache-dir instead)")
    _add_backend_flag(serve)

    tune = sub.add_parser(
        "autotune", help="inspect, replay, reset, or self-check learned "
                         "autotune state"
    )
    tune.add_argument("--state", default=None,
                      help="autotune state file to operate on")
    tune.add_argument("--replay", action="store_true",
                      help="print the promotion/rollback audit log")
    tune.add_argument("--reset", action="store_true",
                      help="clear the learned state in place")
    tune.add_argument("--self-check", dest="self_check", action="store_true",
                      help="run the end-to-end tuner exercise (explore, "
                           "promote, roll back, persist) and exit nonzero "
                           "on any failed check")
    tune.add_argument("--quick", action="store_true",
                      help="shrink --self-check to the CI smoke budget")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--json", action="store_true",
                      help="machine-readable output")

    stream = sub.add_parser(
        "stream", help="exercise the streaming subsystem (delta "
                       "ingestion, incremental re-contraction)"
    )
    stream.add_argument("--demo", action="store_true",
                        help="canned register/delta/fallback sequence "
                             "(exit 1 if any bit-identity, pricing or "
                             "staleness check fails)")
    stream.add_argument("--quick", action="store_true",
                        help="shrink --demo to the CI smoke budget")
    stream.add_argument("--seed", type=int, default=0)

    con = sub.add_parser("contract", help="contract two .tns files")
    con.add_argument("file_a")
    con.add_argument("file_b")
    con.add_argument("--pairs", required=True,
                     help="mode pairs as 'a:b,c:d' (left:right)")
    con.add_argument("--output", default="out.tns")
    con.add_argument("--method", default="fastcc")
    _add_backend_flag(con)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "info": _cmd_info,
        "run": _cmd_run,
        "plan": _cmd_plan,
        "contract": _cmd_contract,
        "batch": _cmd_batch,
        "check": _cmd_check,
        "network": _cmd_network,
        "serve": _cmd_serve,
        "autotune": _cmd_autotune,
        "stream": _cmd_stream,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
