"""Seeded random sparse tensor generation.

The probabilistic model of Section 5 assumes uniformly random nonzero
placement; these generators produce exactly that regime (plus skewed
variants for stress tests), with deterministic seeding throughout.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.plan import LinearizedOperand
from repro.errors import ShapeError
from repro.tensors.coo import COOTensor
from repro.tensors.linearize import ModeLinearizer
from repro.util.arrays import INDEX_DTYPE

__all__ = ["random_coo", "random_operand_pair", "clustered_coo"]


def _sample_unique_linear(size: int, nnz: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``nnz`` distinct cells from a ``size``-cell index space."""
    if nnz > size:
        raise ShapeError(f"cannot place {nnz} distinct nonzeros in {size} cells")
    if size <= 4 * nnz or size <= 1 << 22:
        # Dense regime: a partial permutation is cheap and exact.
        return rng.choice(size, size=nnz, replace=False).astype(INDEX_DTYPE)
    # Sparse regime: oversample with replacement and deduplicate;
    # collisions are rare (birthday bound), so a couple of rounds suffice.
    picked = np.unique(rng.integers(0, size, size=int(nnz * 1.05) + 16))
    while picked.shape[0] < nnz:
        extra = rng.integers(0, size, size=nnz)
        picked = np.unique(np.concatenate([picked, extra]))
    return rng.permutation(picked)[:nnz].astype(INDEX_DTYPE)


def random_coo(
    shape: Sequence[int],
    nnz: int,
    *,
    seed: int = 0,
    value_dist: str = "uniform",
) -> COOTensor:
    """A tensor with ``nnz`` distinct uniformly placed nonzeros.

    ``value_dist`` is ``"uniform"`` (values in (0, 1]; never exactly
    zero, so nnz is exact) or ``"normal"``.
    """
    shape = tuple(int(s) for s in shape)
    rng = np.random.default_rng(seed)
    lin = ModeLinearizer(shape)
    flat = _sample_unique_linear(lin.size, int(nnz), rng)
    coords = lin.decode(flat)
    if value_dist == "uniform":
        values = rng.uniform(np.finfo(np.float64).tiny, 1.0, size=nnz)
    elif value_dist == "normal":
        values = rng.standard_normal(nnz)
    else:
        raise ValueError(f"unknown value_dist {value_dist!r}")
    return COOTensor(coords, values, shape, check=False)


def clustered_coo(
    shape: Sequence[int],
    nnz: int,
    *,
    seed: int = 0,
    n_clusters: int = 8,
    spread: float = 0.05,
) -> COOTensor:
    """A tensor whose nonzeros cluster around random centers.

    Violates the model's uniformity assumption on purpose: used to test
    how Algorithm 7's decisions degrade on structured sparsity.
    Duplicate coordinates are merged, so the result may have slightly
    fewer than ``nnz`` stored entries.
    """
    shape = tuple(int(s) for s in shape)
    rng = np.random.default_rng(seed)
    centers = np.vstack(
        [rng.integers(0, s, size=n_clusters) for s in shape]
    ).astype(np.float64)
    assign = rng.integers(0, n_clusters, size=nnz)
    coords = np.empty((len(shape), nnz), dtype=INDEX_DTYPE)
    for k, s in enumerate(shape):
        jitter = rng.normal(0.0, max(1.0, spread * s), size=nnz)
        coords[k] = np.clip(np.rint(centers[k, assign] + jitter), 0, s - 1)
    values = rng.uniform(0.1, 1.0, size=nnz)
    return COOTensor(coords, values, shape, check=False).sum_duplicates()


def random_operand_pair(
    L: int,
    C: int,
    R: int,
    *,
    density_l: float,
    density_r: float,
    seed: int = 0,
) -> tuple[LinearizedOperand, LinearizedOperand]:
    """Directly build a matched pair of linearized operands.

    Convenient for scheme-level tests and the Table 1 benchmark, where
    the multi-mode structure is irrelevant and only ``(L, R, C,
    densities)`` matter.
    """
    rng = np.random.default_rng(seed)
    nnz_l = max(1, int(round(density_l * L * C)))
    nnz_r = max(1, int(round(density_r * C * R)))
    flat_l = _sample_unique_linear(L * C, nnz_l, rng)
    flat_r = _sample_unique_linear(C * R, nnz_r, rng)
    left = LinearizedOperand(
        ext=flat_l // C,
        con=flat_l % C,
        values=rng.uniform(0.1, 1.0, size=nnz_l),
        ext_extent=L,
        con_extent=C,
    )
    right = LinearizedOperand(
        ext=flat_r % R,
        con=flat_r // R,
        values=rng.uniform(0.1, 1.0, size=nnz_r),
        ext_extent=R,
        con_extent=C,
    )
    return left, right
