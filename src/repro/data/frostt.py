"""FROSTT-shaped synthetic tensor generators.

The paper's Table 2 datasets (nips, chicago, vast, uber) cannot be
downloaded in this environment; these generators reproduce each tensor's
*mode extents and density* — the quantities every model decision and
Table 1 formula depends on — at a configurable scale (DESIGN.md
substitution table).

Scaling rule: each mode extent is multiplied by ``scale`` (floored at
small minima that keep tiny modes intact, e.g. chicago's 24-hour mode),
and the nonzero count is chosen to keep the tensor's *density* equal to
the original's.  Density equality is what makes the scaled contractions
hit the same dense/sparse accumulator decisions as the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.random_tensors import random_coo
from repro.tensors.coo import COOTensor

__all__ = ["FrosttSpec", "FROSTT_SPECS", "generate_frostt", "scaled_shape"]


@dataclass(frozen=True)
class FrosttSpec:
    """Published metadata of one FROSTT tensor (paper Table 2)."""

    name: str
    shape: tuple[int, ...]
    nnz: int

    @property
    def density(self) -> float:
        cells = 1
        for s in self.shape:
            cells *= s
        return self.nnz / cells


#: Table 2 of the paper, verbatim.
FROSTT_SPECS: dict[str, FrosttSpec] = {
    "nips": FrosttSpec("nips", (2482, 2862, 14036, 17), 3_101_609),
    "chicago": FrosttSpec("chicago", (6186, 24, 77, 32), 5_330_673),
    "vast": FrosttSpec("vast", (165_427, 11_374, 2, 100, 89), 26_021_945),
    "uber": FrosttSpec("uber", (183, 24, 1140, 1717), 3_309_490),
}


def scaled_shape(spec: FrosttSpec, scale: float, *, min_extent: int = 2) -> tuple[int, ...]:
    """Shrink mode extents by ``scale``, preserving tiny modes.

    Modes whose extent is already <= 32 (hour-of-day, day-of-month
    style categorical modes) are kept verbatim: shrinking them would
    change the tensor's character, not just its size.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    out = []
    for s in spec.shape:
        if s <= 32:
            out.append(s)
        else:
            out.append(max(min_extent, int(round(s * scale))))
    return tuple(out)


def generate_frostt(
    name: str,
    *,
    scale: float = 0.05,
    seed: int = 0,
    density_override: float | None = None,
    nnz_target: int | None = None,
) -> COOTensor:
    """Generate a scaled synthetic stand-in for a FROSTT tensor.

    The returned tensor has the scaled shape of :func:`scaled_shape` and,
    by default, the original tensor's density, with uniformly random
    nonzero placement.

    Density fidelity and nonzero-count fidelity cannot both survive
    shrinking (nnz = density x cells).  ``nnz_target`` trades density for
    a workload big enough to measure — used for the ultra-sparse vast and
    uber tensors, whose *contraction character* (tiny dense output, hash
    construction dominating) depends on nnz >> L*R rather than on the
    absolute density.  ``density_override`` pins the density instead.
    """
    spec = FROSTT_SPECS.get(name)
    if spec is None:
        raise KeyError(f"unknown FROSTT tensor {name!r}; have {sorted(FROSTT_SPECS)}")
    if density_override is not None and nnz_target is not None:
        raise ValueError("give at most one of density_override / nnz_target")
    shape = scaled_shape(spec, scale)
    cells = 1
    for s in shape:
        cells *= s
    if nnz_target is not None:
        nnz = max(1, min(cells, int(nnz_target)))
    else:
        density = spec.density if density_override is None else density_override
        nnz = max(1, min(cells, int(round(density * cells))))
    return random_coo(shape, nnz, seed=seed)
