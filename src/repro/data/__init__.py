"""Workload generation.

Synthetic stand-ins for the paper's datasets (see DESIGN.md's
substitution table): seeded random sparse tensors, FROSTT-shaped
generators matching Table 2, DLPNO-style quantum-chemistry tensors, and
the registry mapping the paper's 16 experiment ids to concrete
contractions.
"""

from repro.data.random_tensors import random_coo, random_operand_pair
from repro.data.frostt import FROSTT_SPECS, FrosttSpec, generate_frostt
from repro.data.quantum import MOLECULES, MoleculeSpec, generate_dlpno_operands
from repro.data.registry import (
    BenchmarkCase,
    FROSTT_CASES,
    QUANTUM_CASES,
    all_cases,
    get_case,
)

__all__ = [
    "random_coo",
    "random_operand_pair",
    "FrosttSpec",
    "FROSTT_SPECS",
    "generate_frostt",
    "MoleculeSpec",
    "MOLECULES",
    "generate_dlpno_operands",
    "BenchmarkCase",
    "FROSTT_CASES",
    "QUANTUM_CASES",
    "all_cases",
    "get_case",
]
