"""Benchmark registry: the paper's 16 evaluation contractions.

Maps each experiment id used in Table 3 and Figures 2-5 (e.g.
``chic_01``, ``NIPS_2``, ``C-vvov``) to a reproducible workload: the
generated operand tensors and the contracted mode pairs.  Benchmarks and
examples fetch cases from here so every harness agrees on the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.data.frostt import generate_frostt
from repro.data.quantum import generate_dlpno_operands
from repro.tensors.coo import COOTensor

__all__ = [
    "BenchmarkCase",
    "FROSTT_CASES",
    "QUANTUM_CASES",
    "all_cases",
    "get_case",
]

#: Default FROSTT scale factor: keeps nonzero counts in the 10k-500k
#: range so the full suite runs in minutes of pure Python.
DEFAULT_FROSTT_SCALE = 0.05


@dataclass(frozen=True)
class BenchmarkCase:
    """One paper experiment: a named contraction with its inputs.

    ``paper`` carries the values the paper reports for this case (used
    by harnesses to print paper-vs-measured rows); keys include
    ``p_l_pct``/``p_r_pct`` (Table 3 densities, percent), ``model``
    ("D"/"S", the accumulator Table 3 selects) and, where shown,
    ``time_dense_s``/``time_sparse_s``.
    """

    name: str
    family: str  # "frostt" | "quantum"
    loader: Callable[[], tuple[COOTensor, COOTensor, list[tuple[int, int]]]]
    paper: dict = field(default_factory=dict)

    def load(self) -> tuple[COOTensor, COOTensor, list[tuple[int, int]]]:
        """Generate the operands (deterministic; safe to call repeatedly)."""
        return self.loader()


def _frostt_case(
    name: str,
    tensor: str,
    modes: Sequence[int],
    paper: dict,
    *,
    scale: float = DEFAULT_FROSTT_SCALE,
    nnz_target: int | None = None,
    seed: int = 7,
) -> BenchmarkCase:
    modes = tuple(int(m) for m in modes)

    def loader():
        t = generate_frostt(tensor, scale=scale, seed=seed, nnz_target=nnz_target)
        return t, t, [(m, m) for m in modes]

    # The paper-scale problem parameters (original extents and nnz):
    # Table 3's model outputs are recomputed from these exactly, while
    # the measured runs use the scaled generators.
    from repro.data.frostt import FROSTT_SPECS

    spec = FROSTT_SPECS[tensor]
    contracted = set(modes)
    ext = 1
    con = 1
    for m, extent in enumerate(spec.shape):
        if m in contracted:
            con *= extent
        else:
            ext *= extent
    paper = dict(paper)
    paper["original"] = {
        "L": ext, "R": ext, "C": con, "nnz_L": spec.nnz, "nnz_R": spec.nnz,
    }
    return BenchmarkCase(name=name, family="frostt", loader=loader, paper=paper)


def _quantum_case(name: str, molecule: str, contraction: str, paper: dict) -> BenchmarkCase:
    def loader():
        return generate_dlpno_operands(molecule, contraction, seed=11)

    return BenchmarkCase(name=name, family="quantum", loader=loader, paper=dict(paper))


#: The ten FROSTT contractions of Table 3 (self-contractions over the
#: subscripted modes), with the paper's Table 3 numbers attached.
FROSTT_CASES: dict[str, BenchmarkCase] = {
    c.name: c
    for c in [
        _frostt_case(
            "chic_0", "chicago", [0],
            {"p_l_pct": 1.46, "p_r_pct": 1.46, "e_nnz": 4.79e4, "model": "D",
             "time_dense_s": 9.21, "time_sparse_s": 9.36},
        ),
        _frostt_case(
            "chic_01", "chicago", [0, 1],
            {"p_l_pct": 1.46, "p_r_pct": 1.46, "e_nnz": 65536.0, "model": "D",
             "time_dense_s": 0.33, "time_sparse_s": 0.54},
        ),
        _frostt_case(
            "chic_123", "chicago", [1, 2, 3],
            {"p_l_pct": 1.46, "p_r_pct": 1.46, "e_nnz": 6.55e4, "model": "D",
             "time_dense_s": 1.23, "time_sparse_s": 2.06},
        ),
        _frostt_case(
            "uber_02", "uber", [0, 2],
            {"p_l_pct": 0.04, "p_r_pct": 0.04, "e_nnz": 2.00e3, "model": "D",
             "time_dense_s": 0.55, "time_sparse_s": 0.73},
            scale=0.2,
        ),
        _frostt_case(
            "uber_123", "uber", [1, 2, 3],
            {"p_l_pct": 0.04, "p_r_pct": 0.04, "e_nnz": 6.55e4, "model": "D",
             "time_dense_s": 0.34, "time_sparse_s": 0.38},
            scale=0.2,
        ),
        _frostt_case(
            "vast_01", "vast", [0, 1],
            {"p_l_pct": 7.78e-6, "p_r_pct": 7.78e-6, "e_nnz": 7.38, "model": "D",
             "time_dense_s": 4.23, "time_sparse_s": 4.26},
            scale=0.05, nnz_target=30_000,
        ),
        _frostt_case(
            "vast_014", "vast", [0, 1, 4],
            {"p_l_pct": 7.78e-6, "p_r_pct": 7.78e-6, "e_nnz": 6.54e2, "model": "D",
             "time_dense_s": 4.36, "time_sparse_s": 4.45},
            scale=0.05, nnz_target=30_000,
        ),
        _frostt_case(
            "NIPS_2", "nips", [2],
            {"p_l_pct": 1.83e-4, "p_r_pct": 1.83e-4, "e_nnz": 3.08e-3, "model": "S",
             "time_dense_s": float("inf"), "time_sparse_s": 2.44},
            scale=0.15,
        ),
        _frostt_case(
            "NIPS_23", "nips", [2, 3],
            {"p_l_pct": 1.83e-4, "p_r_pct": 1.83e-4, "e_nnz": 5.24e-2, "model": "S",
             "time_dense_s": 0.73, "time_sparse_s": 0.259},
            scale=0.15,
        ),
        _frostt_case(
            "NIPS_013", "nips", [0, 1, 3],
            {"p_l_pct": 1.83e-4, "p_r_pct": 1.83e-4, "e_nnz": 2.65e1, "model": "D",
             "time_dense_s": 1.44, "time_sparse_s": 1.48},
            scale=0.15,
        ),
    ]
}

#: The six quantum-chemistry contractions of Table 3.
QUANTUM_CASES: dict[str, BenchmarkCase] = {
    c.name: c
    for c in [
        _quantum_case(
            "G-ovov", "guanine", "ovov",
            {"p_l_pct": 0.63, "p_r_pct": 0.63, "e_nnz": 1.98e4, "model": "D",
             "time_dense_s": 0.315, "time_sparse_s": 0.566},
        ),
        _quantum_case(
            "G-vvoo", "guanine", "vvoo",
            {"p_l_pct": 18.36, "p_r_pct": 0.17, "e_nnz": 6.16e4, "model": "D",
             "time_dense_s": 11.28, "time_sparse_s": 12.12},
        ),
        _quantum_case(
            "G-vvov", "guanine", "vvov",
            {"p_l_pct": 18.36, "p_r_pct": 0.63, "e_nnz": 6.55e4, "model": "D",
             "time_dense_s": 36.09, "time_sparse_s": 85.91},
        ),
        _quantum_case(
            "C-ovov", "caffeine", "ovov",
            {"p_l_pct": 3.66, "p_r_pct": 3.66, "e_nnz": 6.50e4, "model": "D",
             "time_dense_s": 0.219, "time_sparse_s": 0.566},
        ),
        _quantum_case(
            "C-vvoo", "caffeine", "vvoo",
            {"p_l_pct": 41.90, "p_r_pct": 1.03, "e_nnz": 6.55e4, "model": "D",
             "time_dense_s": 3.79, "time_sparse_s": 4.305},
        ),
        _quantum_case(
            "C-vvov", "caffeine", "vvov",
            {"p_l_pct": 41.90, "p_r_pct": 3.66, "e_nnz": 65536.0, "model": "D",
             "time_dense_s": 16.03, "time_sparse_s": 107.4},
        ),
    ]
}


def all_cases() -> dict[str, BenchmarkCase]:
    """Every registered case, FROSTT first, in the paper's Table 3 order."""
    merged = dict(FROSTT_CASES)
    merged.update(QUANTUM_CASES)
    return merged


def get_case(name: str) -> BenchmarkCase:
    cases = all_cases()
    if name not in cases:
        raise KeyError(f"unknown benchmark case {name!r}; have {sorted(cases)}")
    return cases[name]
