"""DLPNO-style quantum-chemistry tensor generators.

The paper's quantum-chemistry benchmarks (Section 6.1) contract pairs of
3-D sparse three-center integral tensors over the auxiliary (fitting)
index ``k`` to form 4-D four-center integrals:

* ``ovov``:  Int(i, mu, j, nu)   = TE_ov(i, mu, k)  x TE_ov(j, nu, k)
* ``vvoo``:  Int(mu, nu, i, j)   = TE_vv(mu, nu, k) x TE_oo(i, j, k)
* ``vvov``:  Int(mu, nu, i, mu1) = TE_vv(mu, nu, k) x TE_ov(i, mu1, k)

The original tensors come from TAMM runs on caffeine and guanine, which
are unavailable here; the generators below reproduce the *domain-local*
sparsity structure of the DLPNO method — each occupied orbital couples
to a contiguous window of spatially nearby virtuals and auxiliary
functions — parameterized to hit the per-tensor densities the paper
reports in Table 3 (``p_L``/``p_R`` columns), at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.tensors.coo import COOTensor
from repro.util.arrays import INDEX_DTYPE

__all__ = ["MoleculeSpec", "MOLECULES", "generate_te_tensor", "generate_dlpno_operands", "DLPNO_CONTRACTIONS"]


@dataclass(frozen=True)
class MoleculeSpec:
    """Scaled molecule parameters and the paper's measured densities.

    ``n_occ``/``n_virt``/``n_aux`` are the occupied, virtual (PAO/PNO)
    and auxiliary basis dimensions of the scaled stand-in;
    ``density_ov``/``density_vv``/``density_oo`` are the Table 3
    densities of the three TE tensors (fractions, not percent).
    """

    name: str
    n_occ: int
    n_virt: int
    n_aux: int
    density_ov: float
    density_vv: float
    density_oo: float


#: Scaled caffeine and guanine; densities from the paper's Table 3
#: (G-ovov p=0.63%, G-vvoo p_L=18.36% p_R=0.17%, C-ovov p=3.66%,
#: C-vvoo p_L=41.90% p_R=1.03%).
MOLECULES: dict[str, MoleculeSpec] = {
    "guanine": MoleculeSpec(
        "guanine",
        n_occ=20,
        n_virt=56,
        n_aux=72,
        density_ov=0.0063,
        density_vv=0.1836,
        density_oo=0.0017,
    ),
    "caffeine": MoleculeSpec(
        "caffeine",
        n_occ=16,
        n_virt=48,
        n_aux=64,
        density_ov=0.0366,
        density_vv=0.4190,
        density_oo=0.0103,
    ),
}

#: The three DLPNO contractions: name -> (left kind, right kind).
#: All contract over the auxiliary index, mode 2 of both operands.
DLPNO_CONTRACTIONS: dict[str, tuple[str, str]] = {
    "ovov": ("ov", "ov"),
    "vvoo": ("vv", "oo"),
    "vvov": ("vv", "ov"),
}


def _window(center: float, width: int, extent: int) -> tuple[int, int]:
    """A clamped contiguous window of ``width`` around ``center``."""
    width = max(1, min(width, extent))
    lo = int(round(center - width / 2))
    lo = max(0, min(lo, extent - width))
    return lo, lo + width


def generate_te_tensor(
    kind: str, spec: MoleculeSpec, *, seed: int = 0
) -> COOTensor:
    """One three-center integral tensor with domain-local sparsity.

    ``kind`` selects the index types of the first two modes (``"ov"``,
    ``"vv"`` or ``"oo"``); mode 2 is always the auxiliary index.  For
    each first-mode index, nonzeros fill a contiguous window of the
    second mode around that orbital's spatial center and a window of the
    auxiliary mode, with window areas solved from the target density.
    A 10% random dropout roughens the blocks so they are not perfectly
    rectangular.
    """
    dims = {"o": spec.n_occ, "v": spec.n_virt}
    try:
        d0, d1 = dims[kind[0]], dims[kind[1]]
    except (KeyError, IndexError):
        raise ShapeError(f"kind must be ov|vv|oo, got {kind!r}") from None
    d2 = spec.n_aux
    density = {
        "ov": spec.density_ov,
        "vv": spec.density_vv,
        "oo": spec.density_oo,
    }[kind]
    rng = np.random.default_rng(seed)

    # Window widths: split the density evenly (in log space) between the
    # second mode and the auxiliary mode, then compensate the 10% dropout.
    frac = min(1.0, (density / 0.9) ** 0.5)
    w1 = max(1, int(round(frac * d1)))
    w2 = max(1, int(round(frac * d2)))

    coords_list = []
    for i in range(d0):
        # Orbital i's spatial center, mapped proportionally into the
        # second-mode and auxiliary index spaces (DLPNO locality).
        c1 = (i + 0.5) * d1 / d0
        c2 = (i + 0.5) * d2 / d0
        lo1, hi1 = _window(c1, w1, d1)
        lo2, hi2 = _window(c2, w2, d2)
        j_idx, k_idx = np.meshgrid(
            np.arange(lo1, hi1, dtype=INDEX_DTYPE),
            np.arange(lo2, hi2, dtype=INDEX_DTYPE),
            indexing="ij",
        )
        n = j_idx.size
        keep = rng.random(n) < 0.9
        block = np.empty((3, int(keep.sum())), dtype=INDEX_DTYPE)
        block[0] = i
        block[1] = j_idx.ravel()[keep]
        block[2] = k_idx.ravel()[keep]
        coords_list.append(block)

    coords = np.concatenate(coords_list, axis=1)
    values = rng.standard_normal(coords.shape[1])
    return COOTensor(coords, values, (d0, d1, d2), check=False)


def generate_dlpno_operands(
    molecule: str, contraction: str, *, seed: int = 0
) -> tuple[COOTensor, COOTensor, list[tuple[int, int]]]:
    """Build the operand pair of one paper contraction.

    Returns ``(left, right, pairs)`` ready for
    :func:`repro.core.contraction.contract`; ``pairs`` contracts the
    auxiliary mode (mode 2 of both operands).
    """
    spec = MOLECULES.get(molecule)
    if spec is None:
        raise KeyError(f"unknown molecule {molecule!r}; have {sorted(MOLECULES)}")
    kinds = DLPNO_CONTRACTIONS.get(contraction)
    if kinds is None:
        raise KeyError(
            f"unknown contraction {contraction!r}; have {sorted(DLPNO_CONTRACTIONS)}"
        )
    left = generate_te_tensor(kinds[0], spec, seed=seed)
    right = generate_te_tensor(kinds[1], spec, seed=seed + 1)
    return left, right, [(2, 2)]
