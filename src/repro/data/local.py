"""Loading real FROSTT downloads when they are available.

This reproduction ships synthetic FROSTT stand-ins (DESIGN.md), but the
library is meant to run on the real data too.  Point the environment
variable ``REPRO_FROSTT_DIR`` (or the ``directory`` argument) at a
folder of FROSTT ``.tns`` files — named ``nips.tns``, ``chicago.tns``,
``vast.tns``, ``uber.tns``, optionally ``.tns.gz`` — and
:func:`load_frostt` returns the real tensor, validated against the
published Table 2 metadata; otherwise it falls back to the synthetic
generator so every workflow keeps working offline.
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path

from repro.data.frostt import FROSTT_SPECS, generate_frostt
from repro.errors import FormatError
from repro.tensors.coo import COOTensor
from repro.tensors.io import read_tns

__all__ = ["frostt_data_dir", "find_tns_file", "load_frostt"]

ENV_VAR = "REPRO_FROSTT_DIR"

#: Alternative basenames accepted per tensor (FROSTT's own file names).
ALIASES = {
    "nips": ["nips", "nips-4d"],
    "chicago": ["chicago", "chicago-crime", "chicago-crime-comm"],
    "vast": ["vast", "vast-2015-mc1", "vast-2015-mc1-5d"],
    "uber": ["uber", "uber-pickups", "uber4d"],
}


def frostt_data_dir(directory: str | os.PathLike | None = None) -> Path | None:
    """The configured real-data directory, or None when unset/missing."""
    root = directory if directory is not None else os.environ.get(ENV_VAR)
    if not root:
        return None
    path = Path(root)
    return path if path.is_dir() else None


def find_tns_file(name: str, directory: str | os.PathLike | None = None) -> Path | None:
    """Locate a tensor's ``.tns``/``.tns.gz`` file under the data dir."""
    if name not in FROSTT_SPECS:
        raise KeyError(f"unknown FROSTT tensor {name!r}; have {sorted(FROSTT_SPECS)}")
    root = frostt_data_dir(directory)
    if root is None:
        return None
    for alias in ALIASES[name]:
        for suffix in (".tns", ".tns.gz"):
            candidate = root / f"{alias}{suffix}"
            if candidate.is_file():
                return candidate
    return None


def _read_maybe_gz(path: Path, shape) -> COOTensor:
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            return read_tns(fh, shape=shape)
    return read_tns(path, shape=shape)


def load_frostt(
    name: str,
    *,
    directory: str | os.PathLike | None = None,
    scale: float = 0.05,
    seed: int = 7,
    strict: bool = False,
) -> tuple[COOTensor, bool]:
    """Load a FROSTT tensor: real file when present, synthetic otherwise.

    Returns ``(tensor, is_real)``.  Real files are checked against the
    paper's Table 2 metadata (shape and nonzero count; a mismatched
    file raises :class:`FormatError`).  With ``strict`` the synthetic
    fallback is disabled.
    """
    spec = FROSTT_SPECS[name] if name in FROSTT_SPECS else None
    if spec is None:
        raise KeyError(f"unknown FROSTT tensor {name!r}")
    path = find_tns_file(name, directory)
    if path is None:
        if strict:
            raise FileNotFoundError(
                f"no real data for {name!r} (set {ENV_VAR}) and strict=True"
            )
        return generate_frostt(name, scale=scale, seed=seed), False
    # Read with inferred extents first so metadata problems surface as
    # clear FormatErrors instead of bounds errors.
    tensor = _read_maybe_gz(path, None)
    if tensor.ndim != len(spec.shape):
        raise FormatError(
            f"{path} has {tensor.ndim} modes; Table 2 says {len(spec.shape)}"
        )
    if tensor.nnz != spec.nnz:
        raise FormatError(
            f"{path} has {tensor.nnz} nonzeros; Table 2 says {spec.nnz}"
        )
    for k, (got, expected) in enumerate(zip(tensor.shape, spec.shape)):
        if got > expected:
            raise FormatError(
                f"{path}: mode {k} extent {got} exceeds Table 2's {expected}"
            )
    return COOTensor(tensor.coords, tensor.values, spec.shape, check=False), True
