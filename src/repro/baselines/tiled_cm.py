"""Tiled contraction-middle: the road the paper did not take.

Section 3.5 resolves CO's workspace problem with 2-D output tiling.  An
obvious alternative the paper leaves implicit is to keep the CM loop
order and tile its 1-D workspace instead: partition ``R`` into tiles of
``T_R`` and run CM once per tile, so the workspace is ``T_R`` cells
regardless of the output extent.

The cost of that alternative is what justifies the paper's choice, and
this module makes it measurable: every *left* fiber must be re-read and
re-joined once per right tile, so

* queries grow to ``NR * (L + nnz_L)`` (vs tiled CO's
  ``2 C NL NR``, which in the common regime is far smaller because
  only matched keys are probed), and
* left-tensor volume grows to ``nnz_L * NR`` *plus* the join work is
  repeated per tile — CM's multiplicative ``nnz_L nnz_R / C`` term is
  *not* reduced by the tiling, it is simply partitioned.

The tiling ablation compares all three (untiled CM, tiled CM, tiled CO)
on the same operands.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.core.plan import LinearizedOperand
from repro.errors import ConfigError, ShapeError
from repro.hashing.slice_table import SliceTable
from repro.util.arrays import INDEX_DTYPE, ceil_div
from repro.util.groups import grouped_cartesian

__all__ = ["tiled_cm_contract"]


def tiled_cm_contract(
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    tile_r: int = 512,
    counters: Counters | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CM loop order with a 1-D tiled workspace of ``tile_r`` cells.

    Returns ``(l_idx, r_idx, values)`` with unique coordinates.
    """
    if left.con_extent != right.con_extent:
        raise ShapeError("contraction extents differ")
    if tile_r < 1:
        raise ConfigError(f"tile_r must be >= 1, got {tile_r}")
    counters = ensure_counters(counters)

    hl = SliceTable(left.ext, left.con, left.values, counters=counters)
    counters.note_workspace(min(tile_r, right.ext_extent))
    n_tiles = max(1, ceil_div(right.ext_extent, tile_r))

    # Partition the right tensor by tile; each tile gets its own
    # c-indexed table (as the tiled CO scheme does for both operands).
    tile_of = right.ext // np.int64(tile_r)
    tiles: list[SliceTable | None] = [None] * n_tiles
    order = np.argsort(tile_of, kind="stable")
    from repro.util.groups import group_boundaries

    t_sorted = tile_of[order]
    tile_ids, offsets = group_boundaries(t_sorted)
    for g in range(tile_ids.shape[0]):
        lo, hi = int(offsets[g]), int(offsets[g + 1])
        sel = order[lo:hi]
        tiles[int(tile_ids[g])] = SliceTable(
            right.con[sel],
            right.ext[sel] % np.int64(tile_r),
            right.values[sel],
            counters=counters,
        )

    l_con, l_vals = hl.payload
    starts_l, counts_l = hl.spans_for_all_keys()
    keys_l = hl.keys()

    ws = np.zeros(min(tile_r, right.ext_extent), dtype=np.float64)
    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_v: list[np.ndarray] = []

    for j, hr_j in enumerate(tiles):
        if hr_j is None:
            continue
        base_r = j * tile_r
        # CM over this tile: every left slice is re-read and re-joined.
        counters.hash_queries += keys_l.shape[0]
        for pos in range(keys_l.shape[0]):
            lo, hi = int(starts_l[pos]), int(starts_l[pos] + counts_l[pos])
            fiber_c = l_con[lo:hi]
            counters.data_volume += int(fiber_c.shape[0])
            found, starts_r, counts_r = hr_j.query_batch(fiber_c)
            fs = np.flatnonzero(found)
            if fs.size == 0:
                continue
            ia, ib = grouped_cartesian(
                lo + fs.astype(INDEX_DTYPE),
                np.ones(fs.shape[0], dtype=INDEX_DTYPE),
                starts_r[fs],
                counts_r[fs],
            )
            counters.data_volume += int(counts_r[fs].sum())
            r_payload, r_vals = hr_j.payload
            targets = r_payload[ib]
            contrib = l_vals[ia] * r_vals[ib]
            counters.accum_updates += int(contrib.shape[0])
            np.add.at(ws, targets, contrib)
            touched = np.unique(targets)
            out_l.append(
                np.full(touched.shape[0], keys_l[pos], dtype=INDEX_DTYPE)
            )
            out_r.append(base_r + touched)
            out_v.append(ws[touched].copy())
            ws[touched] = 0.0

    if not out_l:
        e = np.empty(0, dtype=INDEX_DTYPE)
        return e, e.copy(), np.empty(0)
    l_idx = np.concatenate(out_l)
    counters.output_nnz += int(l_idx.shape[0])
    return l_idx, np.concatenate(out_r), np.concatenate(out_v)
