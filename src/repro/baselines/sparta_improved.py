"""Improved-hashing Sparta variant (Feng et al., PPoPP '24 poster).

The paper's related work (Section 7.2) notes that Feng et al. improved
Sparta by revisiting its hash-table design.  This baseline implements
that idea within this reproduction: the same contraction-middle loop
order as :mod:`repro.baselines.sparta`, but with the operands in
**open-addressing** slice tables instead of chaining multimaps, and the
per-slice right lookups done as batched probes returning contiguous
payload views.

Comparing `sparta` vs `sparta_improved` vs `fastcc` separates how much
of FaSTCC's win comes from table design versus from the loop order and
tiling — an ablation the paper motivates but does not run.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.core.plan import LinearizedOperand
from repro.errors import ShapeError, WorkspaceLimitError
from repro.hashing.slice_table import SliceTable
from repro.util.arrays import INDEX_DTYPE
from repro.util.groups import grouped_cartesian

__all__ = ["sparta_improved_contract"]

#: Same dense-workspace guard as the stock Sparta baseline.
DENSE_WS_GUARD = 1 << 26


def sparta_improved_contract(
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    counters: Counters | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CM-order contraction over open-addressing slice tables.

    Returns ``(l_idx, r_idx, values)`` with unique coordinates.
    """
    if left.con_extent != right.con_extent:
        raise ShapeError("contraction extents differ")
    if right.ext_extent > DENSE_WS_GUARD:
        raise WorkspaceLimitError(
            f"CM workspace of extent {right.ext_extent} exceeds guard"
        )
    counters = ensure_counters(counters)

    hl = SliceTable(left.ext, left.con, left.values, counters=counters)
    hr = SliceTable(right.con, right.ext, right.values, counters=counters)
    counters.note_workspace(right.ext_extent)
    ws = np.zeros(right.ext_extent, dtype=np.float64)

    l_con, l_vals = hl.payload
    r_ext, r_vals = hr.payload
    starts_l, counts_l = hl.spans_for_all_keys()
    keys_l = hl.keys()
    counters.hash_queries += keys_l.shape[0]

    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for pos in range(keys_l.shape[0]):
        lo, hi = int(starts_l[pos]), int(starts_l[pos] + counts_l[pos])
        fiber_c = l_con[lo:hi]
        fiber_v = l_vals[lo:hi]
        counters.data_volume += int(fiber_c.shape[0])

        found, starts_r, counts_r = hr.query_batch(fiber_c)
        fs = np.flatnonzero(found)
        if fs.size == 0:
            continue
        ia, ib = grouped_cartesian(
            lo + fs.astype(INDEX_DTYPE),
            np.ones(fs.shape[0], dtype=INDEX_DTYPE),
            starts_r[fs],
            counts_r[fs],
        )
        counters.data_volume += int(counts_r[fs].sum())
        r_targets = r_ext[ib]
        contrib = fiber_v[ia - lo] * r_vals[ib]
        counters.accum_updates += int(contrib.shape[0])
        np.add.at(ws, r_targets, contrib)
        touched = np.unique(r_targets)
        out_l.append(np.full(touched.shape[0], keys_l[pos], dtype=INDEX_DTYPE))
        out_r.append(touched)
        out_v.append(ws[touched].copy())
        ws[touched] = 0.0

    if not out_l:
        e = np.empty(0, dtype=INDEX_DTYPE)
        return e, e.copy(), np.empty(0)
    l_idx = np.concatenate(out_l)
    counters.output_nnz += int(l_idx.shape[0])
    return l_idx, np.concatenate(out_r), np.concatenate(out_v)
