"""The Sparta baseline: contraction-middle on chaining hash tables.

Sparta (Liu et al., PPoPP '21) is the state-of-the-art library the paper
compares against.  It consumes COO input, stores the tensors in chaining
hash tables, and executes the contraction-middle loop order of Algorithm
8 (paper Section 7.2):

.. code-block:: text

    for each nonzero slice L[l, *]:
        for each nonzero L[l, c]:
            probe HR with c; for each (r, rv) in the chain:
                WS[r] += lv * rv
        drain WS into the output row l

This reimplementation keeps the two properties the paper attributes to
Sparta: the chaining-table representation (cheap insertion, chain-walk
lookups — measured by the ``probes`` counter) and the CM data movement
(each right slice re-fetched once per matching left nonzero, the
``nnz_L * nnz_R / C`` volume term of Table 1).

The per-``l`` workspace uses a dense array with sparse reset, matching
Sparta's dense-vector accumulator mode; ``workspace="hash"`` switches to
a hash accumulator for outputs whose ``R`` extent is too large to
allocate.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.core.plan import LinearizedOperand
from repro.errors import ConfigError, ShapeError, WorkspaceLimitError
from repro.hashing.chaining import ChainingMultiMap
from repro.hashing.open_addressing import OpenAddressingMap
from repro.util.arrays import INDEX_DTYPE

__all__ = ["sparta_contract", "SPARTA_DENSE_WS_GUARD"]

#: Above this R extent a dense per-row workspace is refused in "auto".
SPARTA_DENSE_WS_GUARD = 1 << 26


def sparta_contract(
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    counters: Counters | None = None,
    workspace: str = "auto",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the Sparta-style CM contraction on linearized operands.

    Returns ``(l_idx, r_idx, values)`` with unique coordinates.
    """
    if left.con_extent != right.con_extent:
        raise ShapeError("contraction extents differ")
    counters = ensure_counters(counters)

    # Build the chaining tables.  Keys are the access indices of the CM
    # scheme: the left table is keyed by l, the right table by c; values
    # are entry ids into the payload arrays (Sparta stores full tuples in
    # its chains; ids are the NumPy equivalent).
    n_left = left.nnz
    n_right = right.nnz
    hl = ChainingMultiMap(
        max(64, n_left), value_dtype=INDEX_DTYPE, counters=counters
    )
    hr = ChainingMultiMap(
        max(64, n_right), value_dtype=INDEX_DTYPE, counters=counters
    )
    hl.insert_batch(left.ext, np.arange(n_left, dtype=INDEX_DTYPE))
    hr.insert_batch(right.con, np.arange(n_right, dtype=INDEX_DTYPE))

    if workspace not in ("auto", "dense", "hash"):
        raise ConfigError(f"workspace must be auto|dense|hash, got {workspace!r}")
    use_dense = workspace == "dense" or (
        workspace == "auto" and right.ext_extent <= SPARTA_DENSE_WS_GUARD
    )
    if workspace == "dense" and right.ext_extent > SPARTA_DENSE_WS_GUARD:
        raise WorkspaceLimitError(
            f"Sparta dense workspace of extent {right.ext_extent} exceeds guard"
        )
    counters.note_workspace(right.ext_extent if use_dense else 0)
    ws = np.zeros(right.ext_extent, dtype=np.float64) if use_dense else None

    # Iterate distinct left slices (Algorithm 8's outer loop).  The
    # per-slice HL lookup below counts one hash query per l itself.
    distinct_l = np.unique(left.ext)

    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_v: list[np.ndarray] = []

    for l_val in distinct_l.tolist():
        # Fetch the fiber L[l, *] by walking HL's chain for l.
        _, _, entry_ids = hl.get_all_batch(np.array([l_val], dtype=INDEX_DTYPE))
        fiber_entries = entry_ids.astype(INDEX_DTYPE)
        fiber_c = left.con[fiber_entries]
        fiber_v = left.values[fiber_entries]
        counters.data_volume += int(fiber_c.shape[0])

        # Probe HR once per left nonzero; chains return (r, rv) payloads.
        q_idx, _, r_entry_ids = hr.get_all_batch(fiber_c)
        r_entries = r_entry_ids.astype(INDEX_DTYPE)
        counters.data_volume += int(r_entries.shape[0])
        if r_entries.shape[0] == 0:
            continue
        r_targets = right.ext[r_entries]
        contrib = fiber_v[q_idx] * right.values[r_entries]
        counters.accum_updates += int(contrib.shape[0])

        if use_dense:
            np.add.at(ws, r_targets, contrib)
            touched = np.unique(r_targets)
            vals = ws[touched].copy()
            ws[touched] = 0.0
        else:
            acc = OpenAddressingMap(
                max(16, r_targets.shape[0] // 2), counters=counters
            )
            acc.upsert_batch(r_targets, contrib)
            touched, vals = acc.items_sorted()
        out_l.append(np.full(touched.shape[0], l_val, dtype=INDEX_DTYPE))
        out_r.append(touched)
        out_v.append(vals)

    if not out_l:
        e = np.empty(0, dtype=INDEX_DTYPE)
        return e, e.copy(), np.empty(0)
    l_idx = np.concatenate(out_l)
    counters.output_nnz += int(l_idx.shape[0])
    return l_idx, np.concatenate(out_r), np.concatenate(out_v)
