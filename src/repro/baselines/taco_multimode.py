"""True multi-mode contraction-inner kernel over n-level CSF.

The linearized :mod:`repro.baselines.taco` baseline reproduces TACO's
*cost structure*; this module reproduces its *code structure*: TACO's
generated kernels walk hierarchical CSF trees directly, with the
external modes outermost and the contraction modes innermost, and
co-iterate the contraction subtrees of every (left slice, right slice)
pair by merging sorted child fibers level by level (the "inner-inner"
scheme of Section 3.1).

This kernel never linearizes: operands are built as n-level CSF in
``external modes + contraction modes`` order and the co-iteration
recurses over tree levels.  It is intentionally the paper's *worst*
scheme — quadratic in the number of nonzero slices — and exists for
fidelity tests (it must agree with every other kernel) and for the
Figure 5 narrative; keep inputs small.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.core.plan import ContractionSpec
from repro.errors import PlanError
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor
from repro.util.arrays import INDEX_DTYPE

__all__ = ["taco_multimode_contract", "node_paths"]


def node_paths(csf: CSFTensor, depth: int) -> np.ndarray:
    """Full index paths of every node at ``depth``.

    Returns an array of shape ``(depth + 1, n_nodes)``: column ``n`` is
    the chain of fiber indices from the root level down to node ``n``.
    """
    n_nodes = csf.nodes_at(depth)
    out = np.empty((depth + 1, n_nodes), dtype=INDEX_DTYPE)
    out[depth] = csf.fids[depth]
    node_ids = np.arange(n_nodes, dtype=INDEX_DTYPE)
    for d in range(depth - 1, -1, -1):
        # Parent of each depth-(d+1) node: the depth-d node whose child
        # span contains it.
        counts = np.diff(csf.fptr[d])
        parents = np.repeat(
            np.arange(csf.nodes_at(d), dtype=INDEX_DTYPE), counts
        )
        node_ids = parents[node_ids]
        out[d] = csf.fids[d][node_ids]
    return out


def _co_iterate(
    csf_l: CSFTensor,
    csf_r: CSFTensor,
    depth_l: int,
    depth_r: int,
    node_l: int,
    node_r: int,
    levels_left: int,
    counters: Counters,
) -> float:
    """Recursively merge two contraction subtrees; returns the inner
    product of the subtrees (sum over all matching index paths)."""
    span_l = csf_l.children(depth_l, node_l)
    span_r = csf_r.children(depth_r, node_r)
    ids_l = csf_l.fids[depth_l + 1][span_l]
    ids_r = csf_r.fids[depth_r + 1][span_r]
    counters.data_volume += ids_l.shape[0] + ids_r.shape[0]
    common, pos_l, pos_r = np.intersect1d(
        ids_l, ids_r, assume_unique=True, return_indices=True
    )
    if common.shape[0] == 0:
        return 0.0
    if levels_left == 1:
        # Deepest contraction level: children are leaf values.
        vals_l = csf_l.values[span_l][pos_l]
        vals_r = csf_r.values[span_r][pos_r]
        counters.accum_updates += common.shape[0]
        return float(np.dot(vals_l, vals_r))
    total = 0.0
    base_l, base_r = span_l.start, span_r.start
    for pl, pr in zip(pos_l.tolist(), pos_r.tolist()):
        total += _co_iterate(
            csf_l, csf_r,
            depth_l + 1, depth_r + 1,
            base_l + pl, base_r + pr,
            levels_left - 1, counters,
        )
    return total


def taco_multimode_contract(
    left: COOTensor,
    right: COOTensor,
    pairs: Sequence[tuple[int, int]],
    *,
    counters: Counters | None = None,
) -> COOTensor:
    """Contract two COO tensors via multi-mode CSF co-iteration.

    Semantics match :func:`repro.core.contraction.contract`: output
    modes are the remaining left modes in order, then the remaining
    right modes.  Complexity is CI-class (every left slice co-iterated
    against every right slice); use on small inputs only.
    """
    counters = ensure_counters(counters)
    spec = ContractionSpec(left.shape, right.shape, pairs)
    n_ext_l = len(spec.left_external)
    n_ext_r = len(spec.right_external)
    n_con = len(spec.pairs)
    if n_ext_l == 0 or n_ext_r == 0:
        # Degenerate slice enumeration; the linearized baseline covers
        # scalar-ish outputs, which TACO handles with dense loops anyway.
        raise PlanError(
            "multimode CI requires at least one external mode per operand"
        )

    order_l = tuple(spec.left_external) + tuple(a for a, _ in spec.pairs)
    order_r = tuple(spec.right_external) + tuple(b for _, b in spec.pairs)
    csf_l = CSFTensor.from_coo(left, mode_order=order_l)
    csf_r = CSFTensor.from_coo(right, mode_order=order_r)
    counters.note_workspace(1)

    # Slice roots: nodes at the last external level.
    slice_depth_l = n_ext_l - 1
    slice_depth_r = n_ext_r - 1
    paths_l = node_paths(csf_l, slice_depth_l)
    paths_r = node_paths(csf_r, slice_depth_r)
    n_slices_l = paths_l.shape[1]
    n_slices_r = paths_r.shape[1]

    out_coords: list[np.ndarray] = []
    out_values: list[float] = []
    for sl in range(n_slices_l):
        counters.hash_queries += 1 + n_slices_r
        for sr in range(n_slices_r):
            total = _co_iterate(
                csf_l, csf_r, slice_depth_l, slice_depth_r, sl, sr,
                n_con, counters,
            )
            if total != 0.0:
                out_coords.append(
                    np.concatenate([paths_l[:, sl], paths_r[:, sr]])
                )
                out_values.append(total)

    if not out_values:
        return COOTensor.empty(spec.output_shape)
    coords = np.stack(out_coords, axis=1)
    counters.output_nnz += coords.shape[1]
    return COOTensor(
        coords, np.array(out_values), spec.output_shape, check=False
    )
