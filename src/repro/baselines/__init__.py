"""Baselines and reference schemes.

* :mod:`repro.baselines.schemes` — instrumented untiled CI / CM / CO
  (Algorithms 2-4), used for the paper's Section 3 loop-order analysis.
* :mod:`repro.baselines.sparta` — the Sparta baseline: the CM scheme on
  chaining hash tables (Algorithm 8).
* :mod:`repro.baselines.taco` — the TACO-style baseline: sequential
  contraction-inner on CSF operands.

All of these are built from scratch in this repository (DESIGN.md
substitution table) and are validated against the dense ``einsum``
ground truth by the test suite.
"""

from repro.baselines.schemes import contract_untiled
from repro.baselines.sparta import sparta_contract
from repro.baselines.sparta_improved import sparta_improved_contract
from repro.baselines.taco import taco_contract
from repro.baselines.tiled_cm import tiled_cm_contract
from repro.baselines.taco_multimode import taco_multimode_contract

__all__ = [
    "contract_untiled",
    "sparta_contract",
    "sparta_improved_contract",
    "taco_contract",
    "tiled_cm_contract",
    "taco_multimode_contract",
]
