"""The TACO-style baseline: sequential contraction-inner on CSF.

TACO (Kjolstad et al., OOPSLA '17) synthesizes CI-scheme code over CSF
operands with the contraction index innermost; for sparse-output binary
contractions it generates *sequential* code only, which is why the
paper's Figure 5 comparison runs on a single thread.  This baseline
reproduces that algorithm class:

* both operands are converted to two-level CSF — external index outer,
  contraction index inner — paying the ``O(nnz log nnz)`` sort the paper
  charges CSF construction with (Section 3.1);
* every pair of (left slice, right slice) is co-iterated over sorted
  contraction fibers, accumulating a scalar (Algorithm 2).

The data volume is the CI row of Table 1, which is what produces the
>100x gaps of Figure 5 on contractions with many external slices.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.core.plan import LinearizedOperand
from repro.errors import ShapeError
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor
from repro.util.arrays import INDEX_DTYPE
from repro.util.groups import group_boundaries

__all__ = ["taco_contract", "csf_matrix_from_operand"]


def csf_matrix_from_operand(op: LinearizedOperand) -> CSFTensor:
    """Two-level CSF of a linearized operand: (ext outer, con inner)."""
    coords = np.vstack([op.ext, op.con])
    coo = COOTensor(
        coords, op.values, (op.ext_extent, op.con_extent), check=False
    )
    return CSFTensor.from_coo(coo)


def taco_contract(
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    counters: Counters | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sequential CI contraction over CSF operands.

    Returns ``(l_idx, r_idx, values)`` with unique coordinates.  The
    inner co-iteration of one left fiber against *all* right fibers is
    vectorized with a binary search per right nonzero — the same work a
    merge-based co-iteration performs, batched — so the measured time
    scales with the CI data volume rather than with Python overhead.
    """
    if left.con_extent != right.con_extent:
        raise ShapeError("contraction extents differ")
    counters = ensure_counters(counters)
    counters.note_workspace(1)  # CI needs only a scalar accumulator

    csf_l = csf_matrix_from_operand(left)
    csf_r = csf_matrix_from_operand(right)

    l_roots = csf_l.fids[0]
    r_roots = csf_r.fids[0]
    r_ptr = csf_r.fptr[0]
    r_con = csf_r.fids[1]
    r_vals = csf_r.values
    # The r index of every right leaf, for grouping matches by slice.
    r_of_leaf = np.repeat(r_roots, np.diff(r_ptr))

    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_v: list[np.ndarray] = []

    num_r = r_roots.shape[0]
    for li in range(l_roots.shape[0]):
        fiber_c, fiber_v = csf_l.root_slice(li)
        # CSF fibers are sorted by construction; co-iterate against the
        # whole right leaf stream (each right slice visited once per l).
        counters.hash_queries += 1 + num_r
        counters.data_volume += int(fiber_c.shape[0]) + int(r_con.shape[0])
        if fiber_c.shape[0] == 0:
            continue
        idx = np.searchsorted(fiber_c, r_con)
        safe = np.minimum(idx, fiber_c.shape[0] - 1)
        hit = fiber_c[safe] == r_con
        if not np.any(hit):
            continue
        contrib = fiber_v[safe[hit]] * r_vals[hit]
        counters.accum_updates += int(contrib.shape[0])
        r_hit = r_of_leaf[hit]  # sorted, since leaves are sorted by r
        uniq_r, offsets = group_boundaries(r_hit)
        sums = np.add.reduceat(contrib, offsets[:-1])
        out_l.append(np.full(uniq_r.shape[0], l_roots[li], dtype=INDEX_DTYPE))
        out_r.append(uniq_r)
        out_v.append(sums)

    if not out_l:
        e = np.empty(0, dtype=INDEX_DTYPE)
        return e, e.copy(), np.empty(0)
    l_idx = np.concatenate(out_l)
    counters.output_nnz += int(l_idx.shape[0])
    return l_idx, np.concatenate(out_r), np.concatenate(out_v)
