"""Untiled reference schemes: CI, CM, CO (paper Algorithms 2-4).

These are the instrumented implementations behind the Section 3 loop-
order analysis.  Each represents the inputs as hash-indexed slice maps
(:class:`~repro.hashing.slice_table.SliceTable`) keyed exactly as the
paper prescribes:

========  ==========================  ==========================
scheme    left map                    right map
========  ==========================  ==========================
CI        ``HL : L -> P(C x V)``      ``HR : R -> P(C x V)``
CM        ``HL : L -> P(C x V)``      ``HR : C -> P(R x V)``
CO        ``HL : C -> P(L x V)``      ``HR : C -> P(R x V)``
========  ==========================  ==========================

and tallies hash queries / retrieved data volume / workspace size into
:class:`~repro.analysis.counters.Counters`, which the Table 1 benchmark
compares against the closed forms in
:mod:`repro.machine.cost_model`.

All three produce identical results; the test suite checks them against
each other and against dense ``einsum``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.core.plan import LinearizedOperand
from repro.errors import ConfigError, WorkspaceLimitError
from repro.hashing.open_addressing import OpenAddressingMap
from repro.hashing.slice_table import SliceTable
from repro.util.arrays import INDEX_DTYPE
from repro.util.groups import group_boundaries, grouped_cartesian

__all__ = ["contract_untiled", "ci_contract", "cm_contract", "co_contract"]

#: Dense-workspace guard for the untiled CO scheme: above this many
#: cells the scheme's own premise (a dense L*R accumulator) has failed,
#: which is precisely the problem Section 3.5 motivates tiling with.
DENSE_WS_GUARD = 1 << 26

_EXPAND_CHUNK = 1 << 21


def contract_untiled(
    scheme: str,
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    counters: Counters | None = None,
    workspace: str = "auto",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dispatch to one of the three untiled reference schemes."""
    fn = {"ci": ci_contract, "cm": cm_contract, "co": co_contract}.get(scheme)
    if fn is None:
        raise ConfigError(f"scheme must be ci|cm|co, got {scheme!r}")
    if scheme == "co":
        return fn(left, right, counters=counters, workspace=workspace)
    return fn(left, right, counters=counters)


# ---------------------------------------------------------------------------
# Contraction-Inner (Algorithm 2)
# ---------------------------------------------------------------------------


def ci_contract(
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    counters: Counters | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CI: sparse inner product of every (l, r) slice pair.

    For each nonzero left slice ``l``, the kernel co-iterates ``l``'s
    contraction fiber against the *entire* right tensor — the
    ``O(L * nnz_R)`` data volume of Table 1 — matching values of ``c``
    via binary search into the slice's sorted fiber.  Only a scalar
    accumulator is needed (``Size_Acc = 1``), the scheme's one virtue.
    """
    counters = ensure_counters(counters)
    counters.note_workspace(1)
    hl = SliceTable(left.ext, left.con, left.values, counters=counters)
    hr = SliceTable(right.ext, right.con, right.values, counters=counters)

    # Sort each left fiber by c so the co-iteration can binary search.
    starts_l, counts_l = hl.spans_for_all_keys()
    l_con, l_vals = hl.payload

    r_con, r_vals = hr.payload
    r_ext_of_payload = np.repeat(hr.keys(), hr.group_sizes())

    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_v: list[np.ndarray] = []

    keys_l = hl.keys()
    num_r_slices = hr.num_keys
    for pos in range(keys_l.shape[0]):
        lo, hi = int(starts_l[pos]), int(starts_l[pos] + counts_l[pos])
        fiber_c = l_con[lo:hi]
        fiber_v = l_vals[lo:hi]
        order = np.argsort(fiber_c, kind="stable")
        fiber_c = fiber_c[order]
        fiber_v = fiber_v[order]
        # One conceptual query per (l, r) slice pair (Algorithm 2's loop
        # structure) and a full scan of the right tensor's nonzeros.
        counters.hash_queries += 1 + num_r_slices
        counters.data_volume += int(fiber_c.shape[0]) + int(r_con.shape[0])

        # Match every right nonzero's c against this fiber (binary
        # search; groups are never empty so the clamp below is safe).
        idx = np.searchsorted(fiber_c, r_con)
        safe = np.minimum(idx, fiber_c.shape[0] - 1)
        hit = fiber_c[safe] == r_con
        if not np.any(hit):
            continue
        contrib = fiber_v[safe[hit]] * r_vals[hit]
        counters.accum_updates += int(contrib.shape[0])
        # The right payload is sorted by r, so segments of equal r are
        # contiguous: reduce per output element (l, r).
        r_of_hit = r_ext_of_payload[hit]
        uniq_r, offsets = group_boundaries(r_of_hit)
        sums = np.add.reduceat(contrib, offsets[:-1])
        out_l.append(np.full(uniq_r.shape[0], keys_l[pos], dtype=INDEX_DTYPE))
        out_r.append(uniq_r)
        out_v.append(sums)

    if not out_l:
        e = np.empty(0, dtype=INDEX_DTYPE)
        return e, e.copy(), np.empty(0)
    l_idx = np.concatenate(out_l)
    counters.output_nnz += int(l_idx.shape[0])
    return l_idx, np.concatenate(out_r), np.concatenate(out_v)


# ---------------------------------------------------------------------------
# Contraction-Middle (Algorithm 3)
# ---------------------------------------------------------------------------


def cm_contract(
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    counters: Counters | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CM: for each left slice ``l``, join its fiber against ``HR : C -> R``.

    Accumulates into a 1-D workspace ``WS : R -> V``, reset (sparsely)
    between ``l`` iterations — the generic form of Sparta's scheme; see
    :mod:`repro.baselines.sparta` for the chaining-table variant.
    """
    counters = ensure_counters(counters)
    hl = SliceTable(left.ext, left.con, left.values, counters=counters)
    hr = SliceTable(right.con, right.ext, right.values, counters=counters)
    counters.note_workspace(right.ext_extent)

    ws = np.zeros(right.ext_extent, dtype=np.float64)
    l_con, l_vals = hl.payload
    r_ext, r_vals = hr.payload
    starts_l, counts_l = hl.spans_for_all_keys()
    keys_l = hl.keys()
    counters.hash_queries += keys_l.shape[0]  # one query per left slice

    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for pos in range(keys_l.shape[0]):
        lo, hi = int(starts_l[pos]), int(starts_l[pos] + counts_l[pos])
        fiber_c = l_con[lo:hi]
        fiber_v = l_vals[lo:hi]
        counters.data_volume += int(fiber_c.shape[0])

        found, starts_r, counts_r = hr.query_batch(fiber_c)  # one query per nonzero
        if not np.any(found):
            continue
        fs = np.flatnonzero(found)
        ia, ib = grouped_cartesian(
            np.zeros(fs.shape[0], dtype=INDEX_DTYPE) + lo + fs,
            np.ones(fs.shape[0], dtype=INDEX_DTYPE),
            starts_r[fs],
            counts_r[fs],
        )
        counters.data_volume += int(counts_r[fs].sum())
        r_targets = r_ext[ib]
        contrib = fiber_v[ia - lo] * r_vals[ib]
        counters.accum_updates += int(contrib.shape[0])
        np.add.at(ws, r_targets, contrib)
        touched = np.unique(r_targets)
        out_l.append(np.full(touched.shape[0], keys_l[pos], dtype=INDEX_DTYPE))
        out_r.append(touched)
        out_v.append(ws[touched].copy())
        ws[touched] = 0.0  # sparse reset for the next l

    if not out_l:
        e = np.empty(0, dtype=INDEX_DTYPE)
        return e, e.copy(), np.empty(0)
    l_idx = np.concatenate(out_l)
    counters.output_nnz += int(l_idx.shape[0])
    return l_idx, np.concatenate(out_r), np.concatenate(out_v)


# ---------------------------------------------------------------------------
# Contraction-Outer (Algorithm 4)
# ---------------------------------------------------------------------------


def co_contract(
    left: LinearizedOperand,
    right: LinearizedOperand,
    *,
    counters: Counters | None = None,
    workspace: str = "auto",
    dense_guard: int = DENSE_WS_GUARD,
    trace=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CO: iterate the contraction index outermost.

    Both operands are keyed by ``c``; for every ``c`` present in both,
    the outer product of the two slices is accumulated into a 2-D
    workspace ``WS : (L x R) -> V``.

    ``workspace`` selects the accumulator:

    * ``"dense"`` — a flat ``L * R`` array (Table 1's ``Size_Acc``),
      guarded by ``dense_guard``: exceeding it raises
      :class:`~repro.errors.WorkspaceLimitError`, the exact failure mode
      Section 3.5 motivates tiling with.
    * ``"sparse"`` — an open-addressing upsert table.
    * ``"auto"`` — dense when it fits the guard, else sparse.
    """
    counters = ensure_counters(counters)
    hl = SliceTable(left.con, left.ext, left.values, counters=counters)
    hr = SliceTable(right.con, right.ext, right.values, counters=counters)

    keys_l = hl.keys()
    # One conceptual query per contraction index per table (2C of Table
    # 1); implemented as a scan of HL's keys plus batched probes of HR.
    found, starts_r, counts_r = hr.query_batch(keys_l)
    counters.hash_queries += keys_l.shape[0]  # the HL side of the 2C
    starts_l, counts_l = hl.spans_for_all_keys()

    sel = found
    g_sl, g_cl = starts_l[sel], counts_l[sel]
    g_sr, g_cr = starts_r[sel], counts_r[sel]
    counters.data_volume += int(g_cl.sum() + g_cr.sum())

    l_payload, l_vals = hl.payload
    r_payload, r_vals = hr.payload

    total_cells = left.ext_extent * right.ext_extent
    use_dense = workspace == "dense" or (
        workspace == "auto" and total_cells <= dense_guard
    )
    if workspace == "dense" and total_cells > dense_guard:
        raise WorkspaceLimitError(
            f"untiled CO dense workspace needs {total_cells} cells "
            f"(> guard of {dense_guard}); use the tiled kernel"
        )

    r_extent = np.int64(right.ext_extent)
    pair_counts = g_cl * g_cr
    cum = np.cumsum(pair_counts)

    if use_dense:
        counters.note_workspace(int(total_cells))
        ws = np.zeros(int(total_cells), dtype=np.float64)
        touched = np.zeros(int(total_cells), dtype=bool)
    else:
        est = int(cum[-1]) if cum.shape[0] else 0
        acc = OpenAddressingMap(max(64, est // 4), counters=counters)

    chunk_start = 0
    base = 0
    n_groups = pair_counts.shape[0]
    while chunk_start < n_groups:
        chunk_end = int(np.searchsorted(cum, base + _EXPAND_CHUNK, side="right"))
        chunk_end = max(chunk_end, chunk_start + 1)
        sl = slice(chunk_start, chunk_end)
        ia, ib = grouped_cartesian(g_sl[sl], g_cl[sl], g_sr[sl], g_cr[sl])
        if ia.shape[0]:
            out_keys = l_payload[ia] * r_extent + r_payload[ib]
            contrib = l_vals[ia] * r_vals[ib]
            counters.accum_updates += int(contrib.shape[0])
            if trace is not None:
                trace.record(out_keys)
            if use_dense:
                np.add.at(ws, out_keys, contrib)
                touched[out_keys] = True
            else:
                acc.upsert_batch(out_keys, contrib)
        base = int(cum[chunk_end - 1])
        chunk_start = chunk_end

    if use_dense:
        active = np.flatnonzero(touched).astype(INDEX_DTYPE)
        values = ws[active]
    else:
        counters.note_workspace(acc.capacity)
        active, values = acc.items_sorted()
    counters.output_nnz += int(active.shape[0])
    return active // r_extent, active % r_extent, values
