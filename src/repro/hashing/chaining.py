"""Chaining (closed-addressing) hash table, Sparta-style.

Sparta represents sparse tensors with chaining hash tables (paper
Sections 2.2 and 7.2): keys hash to a bucket whose entries form a linked
list, so insertion is a cheap head push and never requires relocating
existing entries.  The trade-off is poorer locality on lookup, which the
hashing ablation benchmark measures.

This implementation stores the links in flat NumPy arrays (``heads`` per
bucket, ``next`` per entry) and supports duplicate keys — it is a
*multimap*, matching Sparta's use of one table entry per tensor nonzero.
Batched insertion chains same-bucket entries in one vectorized pass;
batched lookup walks all chains in lockstep.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.errors import ShapeError
from repro.hashing.hash_functions import splitmix64
from repro.util.arrays import INDEX_DTYPE, as_index_array, next_power_of_two
from repro.util.groups import group_boundaries

__all__ = ["ChainingMultiMap"]

_NO_ENTRY = np.int64(-1)


class ChainingMultiMap:
    """Batched chaining multimap from int64 keys to float64 values.

    ``num_buckets`` is fixed at construction (Sparta sizes its tables from
    the nonzero count up front); chains simply grow when the table is
    overloaded.
    """

    __slots__ = ("_heads", "_next", "_keys", "_values", "_size", "_hash", "counters")

    def __init__(
        self,
        num_buckets: int = 64,
        *,
        value_dtype=np.float64,
        hash_fn: Callable[[np.ndarray], np.ndarray] = splitmix64,
        counters: Counters | None = None,
    ):
        num_buckets = max(8, next_power_of_two(num_buckets))
        self._heads = np.full(num_buckets, _NO_ENTRY, dtype=INDEX_DTYPE)
        self._next = np.empty(0, dtype=INDEX_DTYPE)
        self._keys = np.empty(0, dtype=INDEX_DTYPE)
        self._values = np.empty(0, dtype=value_dtype)
        self._size = 0
        self._hash = hash_fn
        self.counters = ensure_counters(counters)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        return int(self._heads.shape[0])

    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append entries (duplicates allowed — multimap semantics).

        Entries are chained at bucket heads.  Within the batch, entries
        sharing a bucket are linked consecutively so a single vectorized
        pass suffices.
        """
        keys = as_index_array(keys)
        values = np.asarray(values, dtype=self._values.dtype)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ShapeError("keys and values must be equal-length 1-D arrays")
        n = keys.shape[0]
        if n == 0:
            return
        mask = np.uint64(self.num_buckets - 1)
        buckets = (self._hash(keys) & mask).astype(INDEX_DTYPE)

        base = self._size
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        entry_ids = base + np.arange(n, dtype=INDEX_DTYPE)

        new_next = np.empty(n, dtype=INDEX_DTYPE)
        uniq_buckets, offsets = group_boundaries(sorted_buckets)
        # Within a bucket group, entry i links to entry i-1; the group's
        # first entry links to the pre-existing head.
        new_next[1:] = entry_ids[order][:-1]
        starts = offsets[:-1]
        new_next[starts] = self._heads[uniq_buckets]
        # New heads are each group's last entry.
        new_heads = entry_ids[order][offsets[1:] - 1]

        # Commit: extend entry storage, then splice the heads.
        self._keys = np.concatenate([self._keys, keys])
        self._values = np.concatenate([self._values, values])
        spliced_next = np.empty(n, dtype=INDEX_DTYPE)
        spliced_next[order] = new_next
        self._next = np.concatenate([self._next, spliced_next])
        self._heads[uniq_buckets] = new_heads
        self._size += n

    def get_all_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Retrieve every entry matching each queried key.

        Returns ``(query_index, matched_keys, matched_values)`` triples:
        ``query_index[j]`` tells which input key produced match ``j``.
        Matches for one key appear in reverse insertion order (chain
        order).  Cost is proportional to the *chain lengths* walked, the
        behaviour the locality analysis cares about.
        """
        keys = as_index_array(keys)
        if keys.ndim != 1:
            raise ShapeError("key batches must be 1-D")
        self.counters.hash_queries += keys.shape[0]
        mask = np.uint64(self.num_buckets - 1)
        cursor = self._heads[(self._hash(keys) & mask).astype(INDEX_DTYPE)]
        query = np.arange(keys.shape[0], dtype=INDEX_DTYPE)

        out_q: list[np.ndarray] = []
        out_e: list[np.ndarray] = []
        probes = 0
        while cursor.size:
            live = cursor != _NO_ENTRY
            cursor = cursor[live]
            query = query[live]
            if not cursor.size:
                break
            probes += cursor.size
            hit = self._keys[cursor] == keys[query]
            out_q.append(query[hit])
            out_e.append(cursor[hit])
            cursor = self._next[cursor]
        self.counters.probes += probes
        if out_q:
            q = np.concatenate(out_q)
            e = np.concatenate(out_e)
        else:
            q = np.empty(0, dtype=INDEX_DTYPE)
            e = np.empty(0, dtype=INDEX_DTYPE)
        return q, self._keys[e], self._values[e]

    def chain_lengths(self) -> np.ndarray:
        """Length of every bucket chain (diagnostics / ablation)."""
        from repro.backends import get_backend

        lengths = np.zeros(self.num_buckets, dtype=INDEX_DTYPE)
        if self._size:
            mask = np.uint64(self.num_buckets - 1)
            buckets = (self._hash(self._keys) & mask).astype(INDEX_DTYPE)
            get_backend("numpy").scatter_accumulate(lengths, buckets, 1)
        return lengths

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All stored entries in insertion order (duplicates included)."""
        return self._keys.copy(), self._values.copy()
