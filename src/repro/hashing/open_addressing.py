"""Open-addressing hash table on NumPy storage.

FaSTCC uses open addressing for both its input tile tables and its sparse
output accumulators (paper Sections 2.2 and 4.2): compared to chaining it
achieves higher space efficiency and better locality, at the cost of
resizes during insertion.

The table maps nonnegative ``int64`` keys to ``float64`` (or ``int64``)
values with linear probing over a power-of-two slot array.  All
operations are *batched*: callers pass key/value arrays and the probe
loop advances every unresolved key by one slot per iteration, so the
Python-level loop count is the *maximum* probe length, not the batch
size.  Concurrent claims of the same empty slot within a batch are
resolved by a write-then-verify race: NumPy fancy assignment guarantees a
single winner, and losers continue probing — the vectorized equivalent of
a CAS loop.

Deletion is intentionally unsupported: the contraction workloads are
insert/upsert/lookup-only, and omitting tombstones keeps probing exact.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.errors import CapacityError, ConfigError, FormatError, ShapeError
from repro.hashing.hash_functions import splitmix64
from repro.util.arrays import INDEX_DTYPE, as_index_array, next_power_of_two
from repro.util.groups import segment_sum

__all__ = ["OpenAddressingMap", "EMPTY_KEY"]

#: Slot sentinel; user keys must therefore be >= 0.
EMPTY_KEY = np.int64(-1)

_MIN_CAPACITY = 8


class OpenAddressingMap:
    """Batched open-addressing map from nonnegative int64 keys to scalars.

    Parameters
    ----------
    initial_capacity:
        Starting slot count (rounded up to a power of two).
    max_load:
        Load factor that triggers a doubling resize.  The paper sizes its
        sparse accumulators for 90% utilization; the default here is a
        slightly safer 0.85 for linear probing.
    value_dtype:
        ``float64`` (accumulators) or ``int64`` (index maps).
    hash_fn:
        Vectorized ``int64 array -> uint64 array`` mixer.  Tests inject a
        pathological constant hash here to exercise worst-case probing.
    counters:
        Optional :class:`~repro.analysis.counters.Counters` receiving
        ``probes`` and ``resizes``.
    """

    __slots__ = ("_keys", "_values", "_size", "max_load", "_hash", "counters",
                 "probing")

    def __init__(
        self,
        initial_capacity: int = 64,
        *,
        max_load: float = 0.85,
        value_dtype=np.float64,
        hash_fn: Callable[[np.ndarray], np.ndarray] = splitmix64,
        counters: Counters | None = None,
        probing: str = "linear",
    ):
        if not 0.0 < max_load < 1.0:
            raise ConfigError(f"max_load must be in (0, 1), got {max_load}")
        if probing not in ("linear", "quadratic"):
            raise ConfigError(f"probing must be linear|quadratic, got {probing!r}")
        capacity = max(_MIN_CAPACITY, next_power_of_two(initial_capacity))
        self._keys = np.full(capacity, EMPTY_KEY, dtype=INDEX_DTYPE)
        self._values = np.zeros(capacity, dtype=value_dtype)
        self._size = 0
        self.max_load = max_load
        self._hash = hash_fn
        self.counters = ensure_counters(counters)
        self.probing = probing

    def _advance(self, base: np.ndarray, k: int, mask) -> np.ndarray:
        """Slot at probe number ``k`` for each base hash.

        Linear probing steps by 1 (best locality, worst clustering);
        triangular-number quadratic probing (valid for power-of-two
        capacities: it visits every slot) breaks up primary clusters —
        one of the "more advanced hashing techniques" of Sec. 7.2.
        """
        if self.probing == "linear":
            offset = k
        else:
            offset = (k * (k + 1)) // 2
        return (base + np.int64(offset)) & np.int64(mask)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return int(self._keys.shape[0])

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    @property
    def value_dtype(self):
        return self._values.dtype

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All stored ``(keys, values)``, in unspecified order."""
        occupied = self._keys != EMPTY_KEY
        return self._keys[occupied].copy(), self._values[occupied].copy()

    def items_sorted(self) -> tuple[np.ndarray, np.ndarray]:
        """All stored ``(keys, values)``, sorted by key."""
        keys, values = self.items()
        order = np.argsort(keys, kind="stable")
        return keys[order], values[order]

    # ------------------------------------------------------------------
    # Internal probing machinery
    # ------------------------------------------------------------------

    def _check_keys(self, keys: np.ndarray) -> np.ndarray:
        keys = as_index_array(keys)
        if keys.ndim != 1:
            raise ShapeError("key batches must be 1-D")
        if keys.size and keys.min() < 0:
            raise FormatError("keys must be nonnegative (negative is the sentinel)")
        return keys

    def _locate(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Find slots for existing keys without modifying the table.

        Returns ``(slots, found)``; ``slots`` is meaningful only where
        ``found`` is true.
        """
        n = keys.shape[0]
        mask = np.uint64(self.capacity - 1)
        base = (self._hash(keys) & mask).astype(INDEX_DTYPE)
        slots = base.copy()
        found = np.zeros(n, dtype=bool)
        pending = np.arange(n, dtype=INDEX_DTYPE)
        probes = 0
        k = 0
        while pending.size:
            probes += pending.size
            cur = self._keys[slots[pending]]
            is_match = cur == keys[pending]
            is_empty = cur == EMPTY_KEY
            found[pending[is_match]] = True
            # Keys that hit an empty slot are definitively absent.
            unresolved = ~(is_match | is_empty)
            pending = pending[unresolved]
            if pending.size:
                k += 1
                slots[pending] = self._advance(base[pending], k, mask)
        self.counters.probes += probes
        return slots, found

    def _locate_or_claim(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Find or insert each (unique) key; returns ``(slots, claimed)``.

        Newly claimed slots have their value zero-initialized.  Callers
        must guarantee ``keys`` are unique within the batch and that a
        resize has already made room.
        """
        n = keys.shape[0]
        mask = np.uint64(self.capacity - 1)
        base = (self._hash(keys) & mask).astype(INDEX_DTYPE)
        slots = base.copy()
        claimed = np.zeros(n, dtype=bool)
        pending = np.arange(n, dtype=INDEX_DTYPE)
        probes = 0
        k = 0
        while pending.size:
            probes += pending.size
            s = slots[pending]
            cur = self._keys[s]
            is_match = cur == keys[pending]
            is_empty = cur == EMPTY_KEY
            empties = pending[is_empty]
            if empties.size:
                es = slots[empties]
                # Race the claims: last write wins, losers re-probe.
                self._keys[es] = keys[empties]
                won = self._keys[es] == keys[empties]
                winners = empties[won]
                self._values[slots[winners]] = 0
                claimed[winners] = True
                # Winners now match their slot; losers see the winner's
                # key and fall through to re-probe below.
                is_match = self._keys[s] == keys[pending]
            pending = pending[~is_match]
            if pending.size:
                k += 1
                slots[pending] = self._advance(base[pending], k, mask)
        self.counters.probes += probes
        self._size += int(claimed.sum())
        return slots, claimed

    def _reserve(self, incoming: int) -> None:
        """Grow so that ``size + incoming`` stays under the load limit."""
        needed = self._size + incoming
        if needed <= self.max_load * self.capacity:
            return
        new_capacity = self.capacity
        while needed > self.max_load * new_capacity:
            new_capacity *= 2
            if new_capacity > 1 << 40:  # pragma: no cover - sanity stop
                raise CapacityError("open-addressing table grew past 2^40 slots")
        old_keys, old_values = self.items()  # probing scheme preserved
        self._keys = np.full(new_capacity, EMPTY_KEY, dtype=INDEX_DTYPE)
        self._values = np.zeros(new_capacity, dtype=self._values.dtype)
        self._size = 0
        self.counters.resizes += 1
        if old_keys.size:
            slots, _ = self._locate_or_claim(old_keys)
            self._values[slots] = old_values

    # ------------------------------------------------------------------
    # Public batched operations
    # ------------------------------------------------------------------

    def upsert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """``table[k] += v`` for each pair, inserting missing keys at 0.

        This is the ``WS.upsert`` of Algorithms 3/4/6.  Duplicate keys
        within the batch are combined first, so the per-slot accumulation
        is race-free.
        """
        keys = self._check_keys(keys)
        values = np.asarray(values, dtype=self._values.dtype)
        if keys.shape != values.shape:
            raise ShapeError("keys and values must have equal length")
        if keys.size == 0:
            return
        ukeys, uvals = segment_sum(keys, values)
        self._reserve(ukeys.shape[0])
        slots, _ = self._locate_or_claim(ukeys)
        self._values[slots] += uvals

    def set_batch(
        self, keys: np.ndarray, values: np.ndarray, *, assume_unique: bool = False
    ) -> None:
        """``table[k] = v`` (overwrite) for each pair; last duplicate wins.

        ``assume_unique`` skips the duplicate resolution when the caller
        guarantees distinct keys (the slice tables insert group keys,
        which are unique by construction) — a construction hot path.
        """
        keys = self._check_keys(keys)
        values = np.asarray(values, dtype=self._values.dtype)
        if keys.shape != values.shape:
            raise ShapeError("keys and values must have equal length")
        if keys.size == 0:
            return
        if assume_unique:
            self._reserve(keys.shape[0])
            slots, _ = self._locate_or_claim(keys)
            self._values[slots] = values
            return
        # Keep the last occurrence of each duplicate key.
        rev_uniq, rev_first = np.unique(keys[::-1], return_index=True)
        last_pos = keys.shape[0] - 1 - rev_first
        self._reserve(rev_uniq.shape[0])
        slots, _ = self._locate_or_claim(rev_uniq)
        self._values[slots] = values[last_pos]

    def get_batch(
        self, keys: np.ndarray, default=0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Look up many keys; returns ``(values, found_mask)``.

        Missing keys yield ``default``.  Counted as one hash query per
        key (the paper's query metric).
        """
        keys = self._check_keys(keys)
        self.counters.hash_queries += keys.shape[0]
        slots, found = self._locate(keys)
        out = np.full(keys.shape[0], default, dtype=self._values.dtype)
        out[found] = self._values[slots[found]]
        return out, found

    def contains_batch(self, keys: np.ndarray) -> np.ndarray:
        """Membership mask for a batch of keys."""
        keys = self._check_keys(keys)
        self.counters.hash_queries += keys.shape[0]
        _, found = self._locate(keys)
        return found

    # Convenience scalar forms (tests / interactive use; not hot paths).

    def __contains__(self, key: int) -> bool:
        return bool(self.contains_batch(np.array([key]))[0])

    def __getitem__(self, key: int):
        values, found = self.get_batch(np.array([key]))
        if not found[0]:
            raise KeyError(key)  # staticcheck: ignore[FSTC102] mapping protocol
        return values[0]

    def __setitem__(self, key: int, value) -> None:
        self.set_batch(np.array([key]), np.array([value]))

    def to_dict(self) -> dict[int, float]:
        keys, values = self.items()
        return {int(k): v for k, v in zip(keys, values.tolist())}
