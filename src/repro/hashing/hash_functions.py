"""64-bit integer hash functions.

A hash function deterministically maps keys to a fixed output universe
(paper Section 2.2).  Both tables in this package hash signed 64-bit
nonnegative keys to power-of-two slot ranges, so the mixers below must
spread entropy into the *low* bits that the mask keeps.

All functions are vectorized over NumPy arrays; arithmetic is done in
``uint64`` where C-style wraparound is the defined NumPy behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["splitmix64", "fibonacci_hash", "identity_hash", "mask_for_capacity"]

# 2^64 / phi, the golden-ratio multiplier of Fibonacci hashing.
_FIB_MULT = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64(keys: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a strong, cheap 64-bit mixer.

    Accepts any integer array; returns ``uint64`` hashes of equal shape.
    """
    z = np.asarray(keys).astype(np.uint64, copy=True)
    z += _FIB_MULT
    z ^= z >> np.uint64(30)
    z *= _MIX1
    z ^= z >> np.uint64(27)
    z *= _MIX2
    z ^= z >> np.uint64(31)
    return z


def fibonacci_hash(keys: np.ndarray, bits: int) -> np.ndarray:
    """Multiply-shift (Fibonacci) hashing to ``bits``-wide slot indices.

    Cheaper than :func:`splitmix64`, adequate for keys that are already
    well distributed; used where the caller wants a single multiply.
    """
    if not 0 < bits <= 64:
        raise ConfigError(f"bits must be in (0, 64], got {bits}")
    z = np.asarray(keys).astype(np.uint64, copy=True)
    z *= _FIB_MULT
    return z >> np.uint64(64 - bits)


def identity_hash(keys: np.ndarray) -> np.ndarray:
    """Pathological hash (no mixing) for failure-injection tests."""
    return np.asarray(keys).astype(np.uint64)


def mask_for_capacity(capacity: int) -> np.uint64:
    """Slot mask for a power-of-two table capacity."""
    if capacity <= 0 or capacity & (capacity - 1):
        raise ConfigError(f"capacity must be a positive power of two, got {capacity}")
    return np.uint64(capacity - 1)
