"""Hash-table substrate.

The paper (Section 2.2) distinguishes open-addressing tables (used by
FaSTCC: better locality and space efficiency, resize cost at insertion)
from chaining tables (used by Sparta: cheap insertion).  Both families
are implemented here from scratch on NumPy storage, together with the
``SliceTable`` grouped map ``key -> set of (index, value)`` that realizes
the ``HL``/``HR`` maps of Section 3.
"""

from repro.hashing.hash_functions import fibonacci_hash, splitmix64
from repro.hashing.open_addressing import OpenAddressingMap
from repro.hashing.chaining import ChainingMultiMap
from repro.hashing.slice_table import SliceTable

__all__ = [
    "splitmix64",
    "fibonacci_hash",
    "OpenAddressingMap",
    "ChainingMultiMap",
    "SliceTable",
]
