"""SliceTable: a hash-indexed map from keys to tensor slices.

The loop-order analysis of Section 3 represents each input tensor as a
map such as ``HL: C -> P(L x V)`` — from a contraction index to the set
of (external index, value) pairs in that slice.  ``SliceTable`` realizes
this: payload arrays are sorted by key once at construction, and an
open-addressing hash table maps each distinct key to its contiguous
group, so a query returns array *views* of the whole slice.

A query costs one hash lookup (counted as one ``hash_query``) and its
payload is proportional to the slice's nonzero count (counted as
``data_volume`` by the kernels that consume the views) — exactly the two
metrics Table 1 separates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counters import Counters, ensure_counters
from repro.errors import ShapeError
from repro.hashing.open_addressing import OpenAddressingMap
from repro.util.arrays import INDEX_DTYPE, as_index_array, as_value_array
from repro.util.groups import group_boundaries

__all__ = ["SliceTable"]


class SliceTable:
    """Map from int64 keys to slices of (index, value) payload pairs.

    Parameters
    ----------
    keys:
        Key of every payload element (e.g. the contraction index ``c`` of
        every nonzero).
    idx:
        Secondary index of every element (e.g. the external index).
    values:
        Numeric value of every element.
    counters:
        Receives ``hash_queries``/``probes`` for the instrumented runs.
    """

    __slots__ = (
        "_group_keys",
        "_offsets",
        "_idx",
        "_values",
        "_lookup",
        "counters",
        "nnz",
    )

    def __init__(self, keys, idx, values, *, counters: Counters | None = None):
        keys = as_index_array(keys)
        idx = as_index_array(idx)
        values = as_value_array(values)
        if not (keys.shape == idx.shape == values.shape) or keys.ndim != 1:
            raise ShapeError("keys, idx and values must be equal-length 1-D arrays")
        self.counters = ensure_counters(counters)
        self.nnz = int(keys.shape[0])

        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        self._idx = idx[order]
        self._values = values[order]
        self._group_keys, self._offsets = group_boundaries(sorted_keys)

        n_groups = self._group_keys.shape[0]
        self._lookup = OpenAddressingMap(
            max(8, int(n_groups / 0.7) + 1),
            value_dtype=INDEX_DTYPE,
            counters=self.counters,
        )
        if n_groups:
            self._lookup.set_batch(
                self._group_keys,
                np.arange(n_groups, dtype=INDEX_DTYPE),
                assume_unique=True,  # group keys are distinct by construction
            )

    # ------------------------------------------------------------------

    @property
    def num_keys(self) -> int:
        """Number of distinct keys (nonzero slices)."""
        return int(self._group_keys.shape[0])

    def keys(self) -> np.ndarray:
        """Distinct keys in ascending order (a view; do not mutate)."""
        return self._group_keys

    def group_sizes(self) -> np.ndarray:
        """Nonzero count of every slice, aligned with :meth:`keys`."""
        return np.diff(self._offsets)

    def get(self, key: int) -> tuple[np.ndarray, np.ndarray]:
        """Slice for one key: ``(indices, values)`` views (empty if absent)."""
        gi, found = self._lookup.get_batch(np.array([key], dtype=INDEX_DTYPE))
        if not found[0]:
            return self._idx[:0], self._values[:0]
        g = int(gi[0])
        sl = slice(int(self._offsets[g]), int(self._offsets[g + 1]))
        return self._idx[sl], self._values[sl]

    def query_batch(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Hash-lookup many keys at once.

        Returns ``(found_mask, starts, counts)``: for each queried key,
        whether it has a slice and the slice's span in the payload
        arrays (``starts``/``counts`` are zero where not found).  The
        spans feed :func:`repro.util.groups.grouped_cartesian` directly.
        """
        keys = as_index_array(keys)
        gi, found = self._lookup.get_batch(keys)
        starts = np.zeros(keys.shape[0], dtype=INDEX_DTYPE)
        counts = np.zeros(keys.shape[0], dtype=INDEX_DTYPE)
        g = gi[found]
        starts[found] = self._offsets[g]
        counts[found] = self._offsets[g + 1] - self._offsets[g]
        return found, starts, counts

    def spans_for_all_keys(self) -> tuple[np.ndarray, np.ndarray]:
        """Starts and counts of every group, aligned with :meth:`keys`.

        Iterating a table's *own* keys does not require hashing (it is a
        scan), so this path adds no query counts.
        """
        return self._offsets[:-1].copy(), np.diff(self._offsets)

    @property
    def payload(self) -> tuple[np.ndarray, np.ndarray]:
        """The sorted payload arrays ``(idx, values)`` (views)."""
        return self._idx, self._values

    def __contains__(self, key: int) -> bool:
        return bool(self._lookup.contains_batch(np.array([key], dtype=INDEX_DTYPE))[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SliceTable(num_keys={self.num_keys}, nnz={self.nnz})"
