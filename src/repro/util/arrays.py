"""Small array and integer helpers used throughout the library."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "INDEX_DTYPE",
    "VALUE_DTYPE",
    "as_index_array",
    "as_value_array",
    "ceil_div",
    "next_power_of_two",
    "prev_power_of_two",
]

#: Canonical index dtype for all coordinate / linearized-index arrays.
INDEX_DTYPE = np.int64

#: Canonical value dtype (the paper uses double precision throughout).
VALUE_DTYPE = np.float64


def as_index_array(data, *, copy: bool = False) -> np.ndarray:
    """Coerce ``data`` to a contiguous 1-D or 2-D ``int64`` array.

    Raises :class:`ShapeError` when the input cannot be represented as
    integers without loss (e.g. non-integral floats).
    """
    arr = np.asarray(data)
    if arr.dtype.kind == "f":
        rounded = np.rint(arr)
        if not np.array_equal(rounded, arr):
            raise ShapeError("index array contains non-integral values")
        arr = rounded
    if arr.dtype.kind not in "iu":
        try:
            arr = arr.astype(INDEX_DTYPE)
        except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
            raise ShapeError(f"cannot interpret {arr.dtype} as indices") from exc
    out = np.ascontiguousarray(arr, dtype=INDEX_DTYPE)
    if copy and out is arr:
        out = out.copy()
    return out


def as_value_array(data, *, copy: bool = False) -> np.ndarray:
    """Coerce ``data`` to a contiguous 1-D ``float64`` array."""
    arr = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
    if copy and arr is data:
        arr = arr.copy()
    return arr


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n`` (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (int(n) - 1).bit_length()


def prev_power_of_two(n: int) -> int:
    """Largest power of two <= ``n``; requires ``n >= 1``."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return 1 << (int(n).bit_length() - 1)
