"""Timing helpers for the benchmark harnesses.

Per the profiling-first guidance for HPC Python, benchmark code measures
with ``time.perf_counter`` and reports medians over repeats rather than
single observations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Timer", "median_time"]


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    Can be entered multiple times; ``elapsed`` accumulates across entries
    and ``laps`` records each individual measurement.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None, "Timer exited without being entered"
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None


def median_time(fn: Callable[[], object], *, repeats: int = 3) -> float:
    """Median wall-clock seconds of ``repeats`` calls to ``fn``."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]
