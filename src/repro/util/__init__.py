"""Shared low-level utilities: array helpers, grouped-index kernels, timing."""

from repro.util.arrays import (
    as_index_array,
    as_value_array,
    ceil_div,
    next_power_of_two,
    prev_power_of_two,
)
from repro.util.groups import (
    group_boundaries,
    grouped_cartesian,
    match_sorted_keys,
    segment_sum,
)
from repro.util.bitmask import PackedBitmask
from repro.util.timing import Timer, median_time

__all__ = [
    "as_index_array",
    "as_value_array",
    "ceil_div",
    "next_power_of_two",
    "prev_power_of_two",
    "group_boundaries",
    "grouped_cartesian",
    "match_sorted_keys",
    "segment_sum",
    "PackedBitmask",
    "Timer",
    "median_time",
]
