"""Vectorized grouped-index kernels.

These are the computational primitives behind every contraction scheme in
the library: finding group boundaries in sorted key arrays, matching two
sorted key sets (the hash-join of the CO scheme), expanding the cartesian
product of matched groups (the per-``c`` outer products of Algorithm 4),
and segment summation (workspace accumulation).

All functions are pure NumPy with no Python-level per-element loops, per
the HPC-Python guidance: the cost of each call is proportional to the
amount of *data* it touches, mirroring the data-volume analysis of the
paper's Section 3.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import INDEX_DTYPE

__all__ = [
    "group_boundaries",
    "match_sorted_keys",
    "grouped_cartesian",
    "segment_sum",
]


def group_boundaries(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Locate groups of equal keys in a sorted 1-D array.

    Returns ``(unique_keys, offsets)`` where ``offsets`` has length
    ``len(unique_keys) + 1`` and group ``g`` occupies
    ``sorted_keys[offsets[g]:offsets[g + 1]]``.
    """
    keys = np.asarray(sorted_keys)
    n = keys.shape[0]
    if n == 0:
        return keys[:0].copy(), np.zeros(1, dtype=INDEX_DTYPE)
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(keys[1:], keys[:-1], out=change[1:])
    starts = np.flatnonzero(change).astype(INDEX_DTYPE)
    offsets = np.concatenate([starts, np.array([n], dtype=INDEX_DTYPE)])
    return keys[starts], offsets


def match_sorted_keys(
    keys_a: np.ndarray, keys_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inner-join two sorted unique key arrays.

    Returns ``(common, idx_a, idx_b)`` such that
    ``keys_a[idx_a] == keys_b[idx_b] == common``.  This is the key
    intersection step of the CO scheme: finding contraction indices ``c``
    present in both input slices.
    """
    common, idx_a, idx_b = np.intersect1d(
        keys_a, keys_b, assume_unique=True, return_indices=True
    )
    return common, idx_a.astype(INDEX_DTYPE), idx_b.astype(INDEX_DTYPE)


def grouped_cartesian(
    starts_a: np.ndarray,
    counts_a: np.ndarray,
    starts_b: np.ndarray,
    counts_b: np.ndarray,
    *,
    max_pairs: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-group cartesian products into flat index arrays.

    For each group ``g``, enumerates all pairs ``(i, j)`` with
    ``i in [starts_a[g], starts_a[g] + counts_a[g])`` and
    ``j in [starts_b[g], starts_b[g] + counts_b[g])``.  Returns
    ``(idx_a, idx_b)`` listing every pair, group by group.

    This realizes the nested ``for <l, lv> ... for <r, rv>`` loops of
    Algorithm 4 for *all* matched contraction indices at once.  The output
    size equals the number of multiply-accumulate operations, i.e. the
    quantity the paper's Section 3.4 notes is identical across loop
    orders.

    ``max_pairs`` guards against accidental quadratic blow-ups; exceeding
    it raises :class:`MemoryError` before any large allocation happens.
    """
    counts_a = np.asarray(counts_a, dtype=INDEX_DTYPE)
    counts_b = np.asarray(counts_b, dtype=INDEX_DTYPE)
    starts_a = np.asarray(starts_a, dtype=INDEX_DTYPE)
    starts_b = np.asarray(starts_b, dtype=INDEX_DTYPE)
    if not (counts_a.shape == counts_b.shape == starts_a.shape == starts_b.shape):
        raise ValueError("group descriptor arrays must have identical shapes")

    pairs = counts_a * counts_b
    total = int(pairs.sum())
    if max_pairs is not None and total > max_pairs:
        raise MemoryError(
            f"grouped cartesian product would produce {total} pairs "
            f"(> guard of {max_pairs})"
        )
    if total == 0:
        empty = np.empty(0, dtype=INDEX_DTYPE)
        return empty, empty.copy()

    # Group id of every output pair, then the pair's rank within its group.
    group_of = np.repeat(np.arange(pairs.shape[0], dtype=INDEX_DTYPE), pairs)
    pair_offsets = np.zeros(pairs.shape[0] + 1, dtype=INDEX_DTYPE)
    np.cumsum(pairs, out=pair_offsets[1:])
    local = np.arange(total, dtype=INDEX_DTYPE) - pair_offsets[group_of]

    nb = counts_b[group_of]
    idx_a = starts_a[group_of] + local // nb
    idx_b = starts_b[group_of] + local % nb
    return idx_a, idx_b


def segment_sum(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` grouped by (unsorted) ``keys``.

    Returns ``(unique_keys_sorted, sums)``.  Implemented with a sort and
    ``np.add.reduceat`` so the cost is ``O(n log n)`` regardless of the
    key range — this is the dense-workspace-free accumulation fallback
    used by the reference schemes when a dense workspace would not fit.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape:
        raise ValueError("keys and values must have the same shape")
    if keys.size == 0:
        return keys[:0].copy(), values[:0].copy()
    order = np.argsort(keys, kind="stable")
    skeys = keys[order]
    svals = values[order]
    uniq, offsets = group_boundaries(skeys)
    sums = np.add.reduceat(svals, offsets[:-1])
    return uniq, sums
