"""Packed bitmask with vectorized batched test-and-set.

The paper's dense tile structure carries a bitmask ``bm`` of
``T_L * T_R / 8`` *bytes* — one bit per tile cell — whose test-and-set
drives the active-position bookkeeping (Section 4.2).  NumPy's ``bool``
arrays spend a full byte per bit; this class packs 64 cells per word,
reproducing the paper's memory footprint exactly while keeping every
operation batched.

The batched test-and-set must handle duplicate positions within one
batch: only the *first* occurrence of a position may report "was
clear".  That is resolved with a stable first-occurrence reduction, not
per-element Python.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import INDEX_DTYPE, ceil_div

__all__ = ["PackedBitmask"]


class PackedBitmask:
    """``n_bits`` flags packed into uint64 words."""

    __slots__ = ("n_bits", "_words")

    def __init__(self, n_bits: int):
        if n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {n_bits}")
        self.n_bits = int(n_bits)
        self._words = np.zeros(ceil_div(max(1, n_bits), 64), dtype=np.uint64)

    @property
    def nbytes(self) -> int:
        """Backing storage in bytes — ``ceil(n_bits / 8)`` rounded to
        words, the paper's T_L*T_R/8 bitmask footprint."""
        return self._words.nbytes

    def _split(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        positions = np.asarray(positions, dtype=INDEX_DTYPE)
        if positions.size and (
            positions.min() < 0 or positions.max() >= self.n_bits
        ):
            raise IndexError(
                f"bit positions must be in [0, {self.n_bits})"
            )
        return positions >> 6, np.uint64(1) << (positions & 63).astype(np.uint64)

    def test(self, positions: np.ndarray) -> np.ndarray:
        """Bit values at ``positions`` (no modification)."""
        words, bits = self._split(positions)
        return (self._words[words] & bits) != 0

    def test_and_set(self, positions: np.ndarray) -> np.ndarray:
        """Set bits at ``positions``; return which were *newly* set.

        Duplicate positions within the batch report True exactly once
        (at their first occurrence), matching a sequential loop of
        scalar test-and-set operations.
        """
        positions = np.asarray(positions, dtype=INDEX_DTYPE)
        if positions.size == 0:
            return np.zeros(0, dtype=bool)
        words, bits = self._split(positions)
        was_set = (self._words[words] & bits) != 0
        # OR the bits in (duplicates collapse naturally via bitwise_or.at).
        np.bitwise_or.at(self._words, words, bits)
        fresh = ~was_set
        if not fresh.any():
            return fresh
        # First occurrence per duplicated position among the fresh ones.
        order = np.argsort(positions, kind="stable")
        sorted_pos = positions[order]
        first_in_run = np.empty(positions.shape[0], dtype=bool)
        first_in_run[0] = True
        np.not_equal(sorted_pos[1:], sorted_pos[:-1], out=first_in_run[1:])
        is_first = np.zeros(positions.shape[0], dtype=bool)
        is_first[order] = first_in_run
        return fresh & is_first

    def clear(self, positions: np.ndarray) -> None:
        """Clear bits at ``positions`` (sparse reset between tiles)."""
        words, bits = self._split(positions)
        np.bitwise_and.at(self._words, words, ~bits)

    def clear_all(self) -> None:
        self._words[:] = 0

    def count(self) -> int:
        """Population count across the whole mask."""
        # Per-byte popcount via unpackbits on the word view.
        as_bytes = self._words.view(np.uint8)
        return int(np.unpackbits(as_bytes).sum())

    def to_bool_array(self) -> np.ndarray:
        """Expand to a bool array of length ``n_bits`` (tests/debug)."""
        as_bytes = self._words.view(np.uint8)
        bits = np.unpackbits(as_bytes, bitorder="little")
        return bits[: self.n_bits].astype(bool)
