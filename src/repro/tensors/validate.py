"""Structural validation for sparse tensor representations.

Production inputs arrive from files and foreign code; these validators
give actionable diagnoses (which mode, which entry) instead of the
downstream index errors a malformed tensor would otherwise cause.  The
checks are all vectorized and safe to run on multi-million-nonzero
tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FormatError
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor

__all__ = ["ValidationReport", "validate_coo", "validate_csf"]


@dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    ok: bool = True
    problems: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def add(self, problem: str) -> None:
        self.ok = False
        self.problems.append(problem)

    def raise_if_invalid(self) -> None:
        if not self.ok:
            raise FormatError("; ".join(self.problems))


def validate_coo(
    tensor: COOTensor,
    *,
    require_unique: bool = False,
    require_sorted: bool = False,
    allow_zero_values: bool = True,
) -> ValidationReport:
    """Check a COO tensor's structural invariants.

    Always checks coordinate bounds and array-shape consistency;
    optionally checks for duplicate coordinates, row-major sortedness,
    and explicit zero values.  Non-finite values are always flagged.
    """
    report = ValidationReport()
    if tensor.coords.shape != (tensor.ndim, tensor.nnz):
        report.add(
            f"coords shape {tensor.coords.shape} inconsistent with "
            f"ndim={tensor.ndim}, nnz={tensor.nnz}"
        )
        return report

    for k in range(tensor.ndim):
        row = tensor.coords[k]
        if row.size == 0:
            continue
        lo, hi = int(row.min()), int(row.max())
        if lo < 0:
            report.add(f"mode {k}: negative coordinate {lo}")
        if hi >= tensor.shape[k]:
            report.add(
                f"mode {k}: coordinate {hi} >= extent {tensor.shape[k]}"
            )

    if tensor.nnz:
        bad = ~np.isfinite(tensor.values)
        if bad.any():
            report.add(f"{int(bad.sum())} non-finite values "
                       f"(first at entry {int(np.flatnonzero(bad)[0])})")
        if not allow_zero_values and (tensor.values == 0.0).any():
            report.add("explicit zero values present")

        lin = tensor.linearized()
        if require_sorted and not np.all(np.diff(lin) >= 0):
            report.add("nonzeros are not sorted in row-major order")
        n_unique = len(np.unique(lin))
        report.stats["duplicate_entries"] = tensor.nnz - n_unique
        if require_unique and n_unique != tensor.nnz:
            report.add(
                f"{tensor.nnz - n_unique} duplicate coordinates present"
            )

    report.stats["nnz"] = tensor.nnz
    report.stats["density"] = tensor.density
    return report


def validate_csf(csf: CSFTensor) -> ValidationReport:
    """Check a CSF tree's structural invariants.

    Verifies per-level pointer monotonicity and coverage, intra-fiber
    index sortedness, leaf/value alignment, and mode-order validity.
    """
    report = ValidationReport()
    ndim = csf.ndim
    if sorted(csf.mode_order) != list(range(ndim)):
        report.add(f"mode_order {csf.mode_order} is not a permutation")
        return report
    if len(csf.fids) != ndim or len(csf.fptr) != ndim:
        report.add(
            f"expected {ndim} levels, found fids={len(csf.fids)}, "
            f"fptr={len(csf.fptr)}"
        )
        return report

    for d in range(ndim):
        ptr = csf.fptr[d]
        n_nodes = csf.nodes_at(d)
        if ptr.shape[0] != n_nodes + 1:
            report.add(f"level {d}: fptr length {ptr.shape[0]} != "
                       f"nodes+1 ({n_nodes + 1})")
            continue
        if n_nodes and (np.diff(ptr) < 0).any():
            report.add(f"level {d}: non-monotone child pointers")
        child_count = csf.nodes_at(d + 1) if d + 1 < ndim else csf.nnz
        if n_nodes and (ptr[0] != 0 or ptr[-1] != child_count):
            report.add(
                f"level {d}: pointers cover [{ptr[0]}, {ptr[-1]}] but "
                f"children span [0, {child_count}]"
            )
        # Fiber indices sorted strictly within every parent span.
        if d > 0 and n_nodes:
            parent_ptr = csf.fptr[d - 1]
            ids = csf.fids[d]
            # A violation is a non-increasing adjacent pair *inside* a span.
            non_increasing = np.flatnonzero(ids[1:] <= ids[:-1]) + 1
            span_starts = parent_ptr[1:-1]
            internal = np.setdiff1d(non_increasing, span_starts)
            if internal.size:
                report.add(
                    f"level {d}: fiber indices not strictly sorted "
                    f"(first violation at node {int(internal[0])})"
                )
        ext = csf.shape[csf.mode_order[d]]
        if n_nodes and (csf.fids[d].min() < 0 or csf.fids[d].max() >= ext):
            report.add(f"level {d}: index out of extent {ext}")

    if csf.values.shape[0] != (csf.nodes_at(ndim - 1) if ndim else 0):
        report.add(
            f"values length {csf.values.shape[0]} != leaf count "
            f"{csf.nodes_at(ndim - 1)}"
        )
    report.stats["nnz"] = csf.nnz
    report.stats["nodes_per_level"] = [csf.nodes_at(d) for d in range(ndim)]
    return report
