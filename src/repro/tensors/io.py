"""FROSTT ``.tns`` text I/O.

The FROSTT repository distributes tensors as whitespace-separated text:
one nonzero per line, 1-based mode coordinates followed by the value.
Comment lines start with ``#``.  These readers/writers let users run the
library on real FROSTT downloads; the benchmark suite itself uses the
synthetic generators in :mod:`repro.data.frostt` (see DESIGN.md).
"""

from __future__ import annotations

import io
import os
from typing import Sequence

import numpy as np

from repro.errors import FormatError
from repro.tensors.coo import COOTensor

__all__ = ["read_tns", "write_tns"]


def read_tns(path_or_file, shape: Sequence[int] | None = None) -> COOTensor:
    """Read a FROSTT ``.tns`` file into a COO tensor.

    When ``shape`` is omitted the extents are inferred as the maximum
    coordinate seen per mode.
    """
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(os.fspath(path_or_file), "r", encoding="utf-8") as fh:
            text = fh.read()
    rows = []
    ndim = None
    for lineno, line in enumerate(io.StringIO(text), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if ndim is None:
            ndim = len(parts) - 1
            if ndim < 1:
                raise FormatError(f"line {lineno}: need at least one mode and a value")
        elif len(parts) != ndim + 1:
            raise FormatError(
                f"line {lineno}: expected {ndim + 1} fields, found {len(parts)}"
            )
        try:
            rows.append([float(p) for p in parts])
        except ValueError as exc:
            raise FormatError(f"line {lineno}: unparseable field") from exc
    if ndim is None:
        raise FormatError("file contains no nonzero entries")
    arr = np.asarray(rows, dtype=np.float64)
    coords = arr[:, :ndim].astype(np.int64)
    if (coords < 1).any():
        raise FormatError(".tns coordinates are 1-based and must be >= 1")
    coords -= 1  # to 0-based
    values = arr[:, ndim]
    if shape is None:
        shape = tuple(int(coords[:, k].max()) + 1 for k in range(ndim))
    return COOTensor(coords.T, values, shape)


def write_tns(tensor: COOTensor, path_or_file) -> None:
    """Write a COO tensor in FROSTT ``.tns`` format (1-based coordinates)."""
    own = not hasattr(path_or_file, "write")
    fh = open(os.fspath(path_or_file), "w", encoding="utf-8") if own else path_or_file
    try:
        coords = tensor.coords + 1
        for e in range(tensor.nnz):
            idx = " ".join(str(int(coords[k, e])) for k in range(tensor.ndim))
            fh.write(f"{idx} {float(tensor.values[e])!r}\n")
    finally:
        if own:
            fh.close()
