"""COO (coordinate) sparse tensor format.

COO stores a sparse tensor as parallel arrays of coordinates and values
(Section 2.2 of the paper).  It supports constant-amortized-cost appends
and is the interchange format of the whole library: both FaSTCC and the
Sparta baseline consume COO input and produce COO output, exactly as in
the paper.

The coordinate array has shape ``(ndim, nnz)`` (one row per mode), the
value array has shape ``(nnz,)``.  A ``COOTensor`` may transiently hold
duplicate coordinates (e.g. while being assembled); ``sum_duplicates``
canonicalizes it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ShapeError, WorkspaceLimitError
from repro.tensors.linearize import ModeLinearizer
from repro.util.arrays import VALUE_DTYPE, as_index_array, as_value_array
from repro.util.groups import group_boundaries

__all__ = ["COOTensor"]


class COOTensor:
    """An n-mode sparse tensor in coordinate format.

    Parameters
    ----------
    coords:
        Integer array of shape ``(ndim, nnz)``; ``coords[k, e]`` is the
        mode-``k`` index of nonzero ``e``.
    values:
        Float array of shape ``(nnz,)``.
    shape:
        Mode extents.  Every coordinate must satisfy
        ``0 <= coords[k] < shape[k]``.
    check:
        When true (default) validates coordinate bounds eagerly.
    """

    __slots__ = ("coords", "values", "shape")

    def __init__(self, coords, values, shape: Sequence[int], *, check: bool = True):
        coords = as_index_array(coords)
        if coords.ndim == 1:
            coords = coords.reshape(1, -1)
        if coords.ndim != 2:
            raise ShapeError(f"coords must be 2-D (ndim, nnz); got shape {coords.shape}")
        values = as_value_array(values)
        if values.ndim != 1:
            raise ShapeError(f"values must be 1-D; got shape {values.shape}")
        if coords.shape[1] != values.shape[0]:
            raise ShapeError(
                f"coords describe {coords.shape[1]} nonzeros but values has "
                f"{values.shape[0]} entries"
            )
        shape = tuple(int(s) for s in shape)
        if len(shape) != coords.shape[0]:
            raise ShapeError(
                f"shape has {len(shape)} modes but coords has {coords.shape[0]} rows"
            )
        if any(s < 0 for s in shape):
            raise ShapeError(f"mode extents must be non-negative: {shape}")
        if check and coords.shape[1] > 0:
            lo = coords.min(axis=1)
            hi = coords.max(axis=1)
            for k, (l, h, ext) in enumerate(zip(lo, hi, shape)):
                if l < 0 or h >= ext:
                    raise ShapeError(
                        f"mode {k} coordinates span [{l}, {h}] outside extent {ext}"
                    )
        self.coords = coords
        self.values = values
        self.shape = shape

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "COOTensor":
        """A tensor with the given shape and no stored nonzeros."""
        ndim = len(tuple(shape))
        return cls(np.empty((ndim, 0), dtype=np.int64), np.empty(0), shape)

    @classmethod
    def from_tuples(
        cls, tuples: Iterable[Sequence[float]], shape: Sequence[int]
    ) -> "COOTensor":
        """Build from an iterable of ``(i_1, ..., i_n, value)`` rows.

        This mirrors how FROSTT ``.tns`` files describe tensors (minus the
        1-based indexing, which :func:`repro.tensors.io.read_tns` handles).
        """
        rows = list(tuples)
        ndim = len(tuple(shape))
        if not rows:
            return cls.empty(shape)
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != ndim + 1:
            raise ShapeError(
                f"each tuple must have {ndim + 1} entries for a {ndim}-mode tensor"
            )
        return cls(as_index_array(arr[:, :ndim].T), arr[:, ndim], shape)

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "COOTensor":
        """Extract the nonzero structure of a dense array."""
        array = np.asarray(array, dtype=VALUE_DTYPE)
        coords = np.nonzero(array)
        stacked = np.vstack([c.astype(np.int64) for c in coords]) if array.ndim else None
        if array.ndim == 0:
            raise ShapeError("0-dimensional arrays are not supported")
        return cls(stacked, array[coords], array.shape)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def size(self) -> int:
        """Number of cells in the full index space (may be huge)."""
        out = 1
        for s in self.shape:
            out *= s
        return out

    @property
    def density(self) -> float:
        """Fraction of cells that are stored (after ``sum_duplicates``)."""
        return self.nnz / self.size if self.size else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOTensor(shape={self.shape}, nnz={self.nnz})"

    def __iter__(self) -> Iterator[tuple[tuple[int, ...], float]]:
        """Yield ``(coordinate_tuple, value)`` pairs (slow; for tests)."""
        for e in range(self.nnz):
            yield tuple(int(self.coords[k, e]) for k in range(self.ndim)), float(
                self.values[e]
            )

    # ------------------------------------------------------------------
    # Canonicalization and transforms
    # ------------------------------------------------------------------

    def linearized(self) -> np.ndarray:
        """Row-major linear index of every stored nonzero."""
        return ModeLinearizer(self.shape).encode(self.coords)

    def sum_duplicates(self, *, drop_zeros: bool = False) -> "COOTensor":
        """Combine entries with identical coordinates by summation.

        Returns a new tensor whose coordinates are unique and sorted in
        row-major order.  With ``drop_zeros`` entries whose combined value
        is exactly 0.0 are removed (explicit zeros are otherwise kept, as
        in the paper's COO handling).
        """
        if self.nnz == 0:
            return COOTensor(self.coords.copy(), self.values.copy(), self.shape, check=False)
        lin = self.linearized()
        order = np.argsort(lin, kind="stable")
        slin = lin[order]
        svals = self.values[order]
        uniq, offsets = group_boundaries(slin)
        sums = np.add.reduceat(svals, offsets[:-1])
        coords = ModeLinearizer(self.shape).decode(uniq)
        if drop_zeros:
            keep = sums != 0.0
            coords = coords[:, keep]
            sums = sums[keep]
        return COOTensor(coords, sums, self.shape, check=False)

    def sorted_by(self, mode_order: Sequence[int] | None = None) -> "COOTensor":
        """Return a copy with nonzeros sorted lexicographically.

        ``mode_order`` lists modes from outermost to innermost sort key;
        default is ``(0, 1, ..., ndim-1)``.  This is the ordering step CSF
        construction relies on.
        """
        if mode_order is None:
            mode_order = tuple(range(self.ndim))
        mode_order = tuple(int(m) for m in mode_order)
        if sorted(mode_order) != list(range(self.ndim)):
            raise ShapeError(f"mode_order must permute 0..{self.ndim - 1}: {mode_order}")
        # np.lexsort sorts by the *last* key first.
        keys = tuple(self.coords[m] for m in reversed(mode_order))
        order = np.lexsort(keys) if self.nnz else np.empty(0, dtype=np.int64)
        return COOTensor(self.coords[:, order], self.values[order], self.shape, check=False)

    def permute_modes(self, perm: Sequence[int]) -> "COOTensor":
        """Reorder tensor modes (a transpose generalization)."""
        perm = tuple(int(p) for p in perm)
        if sorted(perm) != list(range(self.ndim)):
            raise ShapeError(f"perm must permute 0..{self.ndim - 1}: {perm}")
        return COOTensor(
            self.coords[list(perm), :],
            self.values.copy(),
            tuple(self.shape[p] for p in perm),
            check=False,
        )

    def scaled(self, factor: float) -> "COOTensor":
        """Multiply all values by a scalar."""
        return COOTensor(self.coords.copy(), self.values * factor, self.shape, check=False)

    def merge_modes(self, groups: Sequence[Sequence[int]]) -> "COOTensor":
        """Fuse groups of adjacent-in-``groups`` modes into single modes.

        ``groups`` partitions ``0..ndim-1``; each group is linearized
        row-major into one output mode (the paper's Section 2.1
        preprocessing, exposed as a tensor operation).  E.g.
        ``t.merge_modes([[0, 1], [2]])`` turns an ``(A, B, C)`` tensor
        into an ``(A*B, C)`` matrix.
        """
        flat = [int(m) for g in groups for m in g]
        if sorted(flat) != list(range(self.ndim)):
            raise ShapeError(
                f"groups must partition modes 0..{self.ndim - 1}: {groups}"
            )
        new_coords = np.empty((len(groups), self.nnz), dtype=np.int64)
        new_shape = []
        for k, group in enumerate(groups):
            group = [int(m) for m in group]
            lin = ModeLinearizer([self.shape[m] for m in group])
            new_coords[k] = lin.encode(self.coords[group, :])
            new_shape.append(lin.size)
        return COOTensor(new_coords, self.values.copy(), tuple(new_shape), check=False)

    # ------------------------------------------------------------------
    # Conversion and comparison
    # ------------------------------------------------------------------

    def to_dense(self, *, max_cells: int = 100_000_000) -> np.ndarray:
        """Materialize as a dense array (guarded against huge shapes)."""
        if self.size > max_cells:
            raise WorkspaceLimitError(
                f"refusing to densify {self.size} cells (> guard of {max_cells})"
            )
        if self.ndim == 0:
            # 0-mode tensor (a fully contracted output): a single cell.
            return np.asarray(self.values.sum(), dtype=VALUE_DTYPE)
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        if self.nnz:
            np.add.at(out, tuple(self.coords), self.values)
        return out

    def allclose(self, other: "COOTensor", *, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Numeric equality as mathematical tensors.

        Both operands are canonicalized (duplicates summed, exact zeros
        dropped to ``atol``) before comparison, so layouts and explicit
        zeros do not affect the result.
        """
        if self.shape != other.shape:
            return False
        a = self.sum_duplicates()
        b = other.sum_duplicates()
        la, va = a.linearized(), a.values
        lb, vb = b.linearized(), b.values
        # Merge the two index sets and compare values, treating missing as 0.
        all_idx = np.union1d(la, lb)
        fa = np.zeros(all_idx.shape[0], dtype=VALUE_DTYPE)
        fb = np.zeros_like(fa)
        fa[np.searchsorted(all_idx, la)] = va
        fb[np.searchsorted(all_idx, lb)] = vb
        return bool(np.allclose(fa, fb, rtol=rtol, atol=atol))

    def norm(self) -> float:
        """Frobenius norm (after summing duplicates)."""
        return float(np.linalg.norm(self.sum_duplicates().values))

    def copy(self) -> "COOTensor":
        return COOTensor(self.coords.copy(), self.values.copy(), self.shape, check=False)
