"""Dense reference helpers.

Ground-truth contraction via ``numpy.einsum`` for the test suite: every
sparse kernel in the library is validated against these on inputs small
enough to densify.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensors.coo import COOTensor

__all__ = ["dense_contract", "dense_self_contract"]

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def dense_contract(
    left: COOTensor,
    right: COOTensor,
    pairs: Sequence[tuple[int, int]],
    *,
    max_cells: int = 100_000_000,
) -> np.ndarray:
    """Contract two sparse tensors densely over the given mode pairs.

    ``pairs`` lists ``(left_mode, right_mode)`` contraction pairs.  The
    output modes are the remaining left modes (in order) followed by the
    remaining right modes (in order), matching the library's contraction
    convention.
    """
    pairs = [(int(a), int(b)) for a, b in pairs]
    lmodes = {a for a, _ in pairs}
    rmodes = {b for _, b in pairs}
    if len(lmodes) != len(pairs) or len(rmodes) != len(pairs):
        raise ShapeError(f"contraction pairs repeat a mode: {pairs}")
    for a, b in pairs:
        if left.shape[a] != right.shape[b]:
            raise ShapeError(
                f"contracted extents differ: left mode {a} is {left.shape[a]}, "
                f"right mode {b} is {right.shape[b]}"
            )
    if left.ndim + right.ndim - len(pairs) > len(_LETTERS):
        raise ShapeError("too many modes for the einsum reference")

    left_sub = list(_LETTERS[: left.ndim])
    next_letter = left.ndim
    right_sub = [""] * right.ndim
    for a, b in pairs:
        right_sub[b] = left_sub[a]
    for m in range(right.ndim):
        if not right_sub[m]:
            right_sub[m] = _LETTERS[next_letter]
            next_letter += 1
    out_sub = [left_sub[m] for m in range(left.ndim) if m not in lmodes]
    out_sub += [right_sub[m] for m in range(right.ndim) if m not in rmodes]
    expr = f"{''.join(left_sub)},{''.join(right_sub)}->{''.join(out_sub)}"
    return np.einsum(
        expr, left.to_dense(max_cells=max_cells), right.to_dense(max_cells=max_cells)
    )


def dense_self_contract(
    tensor: COOTensor, modes: Sequence[int], *, max_cells: int = 100_000_000
) -> np.ndarray:
    """Contract a tensor with itself over ``modes`` (paper Sec. 6.1 style)."""
    return dense_contract(tensor, tensor, [(m, m) for m in modes], max_cells=max_cells)
