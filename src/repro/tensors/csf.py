"""CSF (Compressed Sparse Fiber) format.

CSF (Smith et al., SPLATT) structures a sparse tensor as a tree whose
level ``k`` nodes are the distinct mode-``k`` indices present under each
parent path, with leaves holding the nonzero values (Section 2.2 of the
paper).  Construction requires a full sort of the nonzeros, which is why
the paper quotes an ``O(nnz log nnz)`` build cost — reproduced here.

The TACO-style contraction-inner baseline consumes two-level CSF tensors
whose outer level is the (linearized) external index and whose inner
level is the contraction index, matching TACO's requirement that the
contraction index be innermost.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensors.coo import COOTensor
from repro.util.arrays import INDEX_DTYPE

__all__ = ["CSFTensor"]


class CSFTensor:
    """A sparse tensor as a compressed fiber tree.

    Attributes
    ----------
    mode_order:
        Permutation mapping tree depth to original tensor mode: level
        ``d`` of the tree stores indices of mode ``mode_order[d]``.
    fids:
        ``fids[d]`` holds the index of every level-``d`` node.
    fptr:
        ``fptr[d]`` has one entry per level-``d`` node plus a sentinel;
        node ``i`` owns children ``fptr[d][i]:fptr[d][i+1]`` at level
        ``d + 1``.  At the deepest level the children are leaf values.
    values:
        Leaf values, aligned with ``fids[-1]``.
    """

    __slots__ = ("shape", "mode_order", "fids", "fptr", "values")

    def __init__(self, shape, mode_order, fids, fptr, values):
        self.shape = tuple(int(s) for s in shape)
        self.mode_order = tuple(int(m) for m in mode_order)
        self.fids = fids
        self.fptr = fptr
        self.values = values

    # ------------------------------------------------------------------

    @classmethod
    def from_coo(
        cls, tensor: COOTensor, mode_order: Sequence[int] | None = None
    ) -> "CSFTensor":
        """Build a CSF tree from a COO tensor.

        Duplicate coordinates are summed during construction (CSF cannot
        represent duplicates).  The dominant cost is the lexicographic
        sort of the nonzeros.
        """
        if mode_order is None:
            mode_order = tuple(range(tensor.ndim))
        mode_order = tuple(int(m) for m in mode_order)
        if sorted(mode_order) != list(range(tensor.ndim)):
            raise ShapeError(
                f"mode_order must permute 0..{tensor.ndim - 1}: {mode_order}"
            )
        canonical = tensor.permute_modes(mode_order).sum_duplicates()
        ndim = canonical.ndim
        nnz = canonical.nnz

        fids: list[np.ndarray] = []
        fptr: list[np.ndarray] = []
        if nnz == 0:
            for _ in range(ndim):
                fids.append(np.empty(0, dtype=INDEX_DTYPE))
                fptr.append(np.zeros(1, dtype=INDEX_DTYPE))
            return cls(tensor.shape, mode_order, fids, fptr, np.empty(0))

        coords = canonical.coords  # already sorted row-major by permuted order
        # Path id of each nonzero at depth d: index of its depth-d node.
        # Nodes at depth d are runs of equal (coords[0..d]) prefixes.
        prefix_change = np.zeros(nnz, dtype=bool)
        prefix_change[0] = True
        node_starts_prev = np.array([0], dtype=INDEX_DTYPE)
        for d in range(ndim):
            np.logical_or(
                prefix_change[1:], coords[d, 1:] != coords[d, :-1], out=prefix_change[1:]
            )
            node_starts = np.flatnonzero(prefix_change).astype(INDEX_DTYPE)
            fids.append(coords[d, node_starts].copy())
            # Parent pointers: each depth-(d-1) node owns the depth-d nodes
            # whose start position falls inside its run.
            ptr = np.searchsorted(node_starts, node_starts_prev).astype(INDEX_DTYPE)
            ptr = np.concatenate([ptr, np.array([node_starts.shape[0]], dtype=INDEX_DTYPE)])
            fptr.append(ptr)
            node_starts_prev = node_starts
        # fptr[d] as built above maps depth-(d-1) nodes to depth-d children
        # (with a discardable root pointer at position 0); shift so fptr[d]
        # maps depth-d nodes to depth-(d+1) children, and give the deepest
        # level an identity span over the leaf values.
        fptr = fptr[1:] + [np.arange(nnz + 1, dtype=INDEX_DTYPE)]
        return cls(tensor.shape, mode_order, fids, fptr, canonical.values.copy())

    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def nodes_at(self, depth: int) -> int:
        """Number of fiber-tree nodes at a given depth."""
        return int(self.fids[depth].shape[0])

    def children(self, depth: int, node: int) -> slice:
        """Child span of ``node`` at ``depth`` (children live at depth+1)."""
        ptr = self.fptr[depth]
        return slice(int(ptr[node]), int(ptr[node + 1]))

    def root_slice(self, root: int) -> tuple[np.ndarray, np.ndarray]:
        """For a 2-level CSF, the (inner ids, values) fiber under a root.

        This is the access pattern of the CI baseline: fetch the fiber of
        contraction indices under one external index.
        """
        if self.ndim != 2:
            raise ShapeError("root_slice is only defined for 2-level CSF")
        span = self.children(0, root)
        return self.fids[1][span], self.values[span]

    def to_coo(self) -> COOTensor:
        """Expand back to COO (in the *original* mode order)."""
        ndim = self.ndim
        nnz = self.nnz
        coords = np.empty((ndim, nnz), dtype=INDEX_DTYPE)
        if nnz:
            # Walk levels top-down, expanding each node's index over the
            # leaf span it covers.
            leaf_span = np.empty(0, dtype=INDEX_DTYPE)
            # leaf coverage of depth-d nodes, computed by composing fptr.
            cover = self.fptr[-1]
            coords[ndim - 1] = self.fids[ndim - 1]
            for d in range(ndim - 2, -1, -1):
                cover = cover[self.fptr[d]]
                counts = np.diff(cover)
                coords[d] = np.repeat(self.fids[d], counts)
            del leaf_span
        permuted_shape = tuple(self.shape[m] for m in self.mode_order)
        inv = np.argsort(self.mode_order)
        out = COOTensor(coords, self.values.copy(), permuted_shape, check=False)
        return out.permute_modes(inv)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSFTensor(shape={self.shape}, order={self.mode_order}, nnz={self.nnz})"
        )
