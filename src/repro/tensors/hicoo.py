"""HiCOO: hierarchical COO with block compression.

HiCOO (Li et al., SC '18) is the compressed successor of COO used across
the sparse-tensor ecosystem the paper builds on (Sparta's relatives
Athena/ParTI): nonzeros are grouped into aligned ``2^b``-per-mode
blocks; each block stores its (shortened) block coordinates once, and
each element stores only its ``b``-bit offsets within the block.  For
tensors with spatial locality this cuts index memory several-fold
versus COO's full-width coordinates.

Included here as a substrate format: conversion to/from COO, block
iteration, and exact memory accounting (the compression-ratio facts the
format exists for).  The contraction kernels consume COO/SliceTables;
HiCOO is the storage/interchange tier.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensors.coo import COOTensor
from repro.util.arrays import INDEX_DTYPE
from repro.util.groups import group_boundaries

__all__ = ["HiCOOTensor"]


def _offset_dtype(block_bits: int):
    if block_bits <= 8:
        return np.uint8
    if block_bits <= 16:
        return np.uint16
    return np.uint32


class HiCOOTensor:
    """A sparse tensor in HiCOO format.

    Attributes
    ----------
    block_bits:
        ``b``: blocks span ``2^b`` indices per mode.
    bptr:
        ``(n_blocks + 1,)`` offsets of each block's elements.
    bcoords:
        ``(ndim, n_blocks)`` block coordinates (``index >> b``).
    ecoords:
        ``(ndim, nnz)`` within-block offsets (``index & (2^b - 1)``),
        stored at the narrowest width that holds ``b`` bits.
    values:
        ``(nnz,)`` float64.
    """

    __slots__ = ("shape", "block_bits", "bptr", "bcoords", "ecoords", "values")

    def __init__(self, shape, block_bits, bptr, bcoords, ecoords, values):
        self.shape = tuple(int(s) for s in shape)
        self.block_bits = int(block_bits)
        self.bptr = bptr
        self.bcoords = bcoords
        self.ecoords = ecoords
        self.values = values

    # ------------------------------------------------------------------

    @classmethod
    def from_coo(cls, tensor: COOTensor, *, block_bits: int = 7) -> "HiCOOTensor":
        """Convert a COO tensor (duplicates summed during conversion)."""
        if not 1 <= block_bits <= 31:
            raise ShapeError(f"block_bits must be in [1, 31], got {block_bits}")
        canonical = tensor.sum_duplicates()
        ndim = canonical.ndim
        nnz = canonical.nnz
        b = np.int64(block_bits)
        mask = np.int64((1 << block_bits) - 1)

        if nnz == 0:
            return cls(
                tensor.shape,
                block_bits,
                np.zeros(1, dtype=INDEX_DTYPE),
                np.empty((ndim, 0), dtype=INDEX_DTYPE),
                np.empty((ndim, 0), dtype=_offset_dtype(block_bits)),
                np.empty(0),
            )

        block = canonical.coords >> b
        within = (canonical.coords & mask).astype(_offset_dtype(block_bits))

        # Sort by block (lexicographic over modes); canonical COO order
        # is already row-major over full coordinates, which is NOT the
        # same as block-major order, so sort on the linearized block id.
        block_extents = [(-(-s >> block_bits)) or 1 for s in canonical.shape]
        from repro.tensors.linearize import ModeLinearizer

        lin = ModeLinearizer([max(1, e) for e in block_extents])
        block_ids = lin.encode(block)
        order = np.argsort(block_ids, kind="stable")
        sorted_ids = block_ids[order]
        uniq, offsets = group_boundaries(sorted_ids)
        starts = offsets[:-1]

        return cls(
            tensor.shape,
            block_bits,
            offsets.astype(INDEX_DTYPE),
            block[:, order][:, starts].copy(),
            within[:, order].copy(),
            canonical.values[order].copy(),
        )

    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_blocks(self) -> int:
        return int(self.bcoords.shape[1])

    @property
    def block_size(self) -> int:
        return 1 << self.block_bits

    def block(self, i: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Block ``i``: ``(block_coords, element_offsets, values)`` views."""
        sl = slice(int(self.bptr[i]), int(self.bptr[i + 1]))
        return self.bcoords[:, i], self.ecoords[:, sl], self.values[sl]

    def blocks(self):
        """Iterate ``(block_coords, element_offsets, values)`` triples."""
        for i in range(self.n_blocks):
            yield self.block(i)

    def to_coo(self) -> COOTensor:
        """Expand back to COO (full-width coordinates)."""
        counts = np.diff(self.bptr)
        base = np.repeat(self.bcoords, counts, axis=1) << np.int64(self.block_bits)
        coords = base + self.ecoords.astype(INDEX_DTYPE)
        return COOTensor(coords, self.values.copy(), self.shape, check=False)

    # ------------------------------------------------------------------
    # Memory accounting — the format's reason to exist.
    # ------------------------------------------------------------------

    @property
    def index_nbytes(self) -> int:
        """Bytes spent on structure (bptr + block + element indices)."""
        return self.bptr.nbytes + self.bcoords.nbytes + self.ecoords.nbytes

    @property
    def nbytes(self) -> int:
        return self.index_nbytes + self.values.nbytes

    def compression_ratio(self) -> float:
        """COO index bytes / HiCOO index bytes (> 1 = HiCOO smaller)."""
        coo_index_bytes = self.ndim * self.nnz * 8  # int64 per mode
        if self.index_nbytes == 0:
            return 1.0
        return coo_index_bytes / self.index_nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HiCOOTensor(shape={self.shape}, nnz={self.nnz}, "
            f"blocks={self.n_blocks}, b={self.block_bits})"
        )
