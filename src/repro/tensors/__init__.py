"""Sparse tensor representations: COO, CSF, linearization, and I/O.

The paper's pipeline (Section 2.1) consumes and produces COO tensors and
linearizes mode groups to single indices before contracting; CSF is the
format consumed by the TACO-style contraction-inner baseline.
"""

from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor
from repro.tensors.hicoo import HiCOOTensor
from repro.tensors.linearize import ModeLinearizer, delinearize, linearize
from repro.tensors.io import read_tns, write_tns
from repro.tensors.validate import validate_coo, validate_csf

__all__ = [
    "COOTensor",
    "CSFTensor",
    "HiCOOTensor",
    "ModeLinearizer",
    "linearize",
    "delinearize",
    "read_tns",
    "write_tns",
    "validate_coo",
    "validate_csf",
]
