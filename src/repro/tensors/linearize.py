"""Linearization of mode groups to single indices.

The paper's preprocessing step (Section 2.1) linearizes the external-left
modes to one index ``l``, the external-right modes to ``r``, and the
contraction modes to ``c``, reducing every contraction to the matrix form
``O[l, r] = sum_c L[l, c] * R[c, r]``.  The inverse delinearization is
applied to the output as postprocessing.  Both directions are implemented
here with row-major strides.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.util.arrays import INDEX_DTYPE, as_index_array

__all__ = ["ModeLinearizer", "linearize", "delinearize"]


class ModeLinearizer:
    """Bijection between multi-mode coordinates and a flat index.

    Row-major: the first mode is the slowest-varying.  ``extents`` may be
    empty, in which case every coordinate maps to linear index 0 (the
    degenerate group that arises when a contraction has no external
    indices on one side).
    """

    __slots__ = ("extents", "strides", "size")

    def __init__(self, extents: Sequence[int]):
        self.extents = tuple(int(e) for e in extents)
        if any(e <= 0 for e in self.extents):
            raise ShapeError(f"extents must be positive: {self.extents}")
        strides = []
        acc = 1
        for e in reversed(self.extents):
            strides.append(acc)
            acc *= e
        self.strides = tuple(reversed(strides))
        self.size = acc  # == prod(extents); 1 for the empty group

    def encode(self, coords: np.ndarray) -> np.ndarray:
        """Map coordinates of shape ``(ndim, n)`` to flat indices ``(n,)``."""
        coords = as_index_array(coords)
        if coords.ndim == 1:
            coords = coords.reshape(len(self.extents), -1)
        if coords.shape[0] != len(self.extents):
            raise ShapeError(
                f"coords has {coords.shape[0]} rows, linearizer has "
                f"{len(self.extents)} modes"
            )
        n = coords.shape[1]
        out = np.zeros(n, dtype=INDEX_DTYPE)
        for stride, row in zip(self.strides, coords):
            out += stride * row
        return out

    def decode(self, flat: np.ndarray) -> np.ndarray:
        """Map flat indices ``(n,)`` back to coordinates ``(ndim, n)``."""
        flat = as_index_array(flat)
        if flat.ndim != 1:
            raise ShapeError("flat index array must be 1-D")
        ndim = len(self.extents)
        out = np.empty((ndim, flat.shape[0]), dtype=INDEX_DTYPE)
        rem = flat
        for k, stride in enumerate(self.strides):
            # One fused pass for quotient and remainder.
            out[k], rem = np.divmod(rem, stride)
        return out


def linearize(coords: np.ndarray, extents: Sequence[int]) -> np.ndarray:
    """Functional form of :meth:`ModeLinearizer.encode`."""
    return ModeLinearizer(extents).encode(coords)


def delinearize(flat: np.ndarray, extents: Sequence[int]) -> np.ndarray:
    """Functional form of :meth:`ModeLinearizer.decode`."""
    return ModeLinearizer(extents).decode(flat)
