"""Bandit policy: budgeted exploration, margin-gated promotion, rollback.

The explorer is an epsilon-greedy multi-armed bandit per signature with
three production guardrails layered on top of the textbook policy:

* **budgeted exploration** — at most ``explore_rate`` of *eligible*
  calls explore, enforced by a global token ledger rather than
  per-call coin flips alone, so a burst of eligible traffic cannot
  transiently explore far above the budget;
* **margin-gated promotion** — a challenger becomes champion only
  after ``min_trials`` measurements with a mean at least
  ``promote_margin`` below the champion's mean (both sides must have
  enough trials; ties and noise never flip the champion);
* **automatic rollback** — a promoted challenger that regresses (its
  trailing-window mean exceeds the pre-promotion champion mean by
  ``rollback_margin``) is demoted, the old decision restored, and the
  offending arm frozen out for ``cooldown`` subsequent samples.

Within the exploration budget, arm selection is optimistic: arms with
fewer than ``min_trials`` samples are tried round-robin first (every
arm earns a fair hearing), after which the bandit spends its remaining
budget on the best-mean challenger — "occasionally execute the
second-best candidate", with *second-best* defined by measurement once
measurements exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.measurements import ArmStats
from repro.errors import ConfigError

__all__ = ["BanditConfig", "BanditPolicy", "PromotionDecision"]


@dataclass(frozen=True)
class BanditConfig:
    """Guardrail knobs of one :class:`BanditPolicy`.

    Every bound here is lintable (``FSTC6xx``): an exploration rate
    above 0.5 means the *exploration* is the workload, a zero promotion
    margin lets measurement noise oscillate the champion, and a trials
    floor below 2 promotes on a single sample.
    """

    explore_rate: float = 0.05
    min_trials: int = 3
    promote_margin: float = 0.10
    rollback_margin: float = 0.25
    cooldown: int = 32
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.explore_rate <= 1.0:
            raise ConfigError(
                f"explore_rate must be in [0, 1], got {self.explore_rate}"
            )
        if self.min_trials < 1:
            raise ConfigError(
                f"min_trials must be >= 1, got {self.min_trials}"
            )
        if self.promote_margin < 0 or self.rollback_margin < 0:
            raise ConfigError(
                "promote_margin and rollback_margin must be >= 0, got "
                f"{self.promote_margin}/{self.rollback_margin}"
            )
        if self.cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0, got {self.cooldown}")


@dataclass
class PromotionDecision:
    """Why (or why not) a challenger may replace the champion now."""

    promote: bool
    arm_id: str = ""
    reason: str = ""
    challenger_mean: float = 0.0
    champion_mean: float = 0.0

    @property
    def improvement(self) -> float:
        """Fractional win over the champion (positive = faster)."""
        if self.champion_mean <= 0:
            return 0.0
        return 1.0 - self.challenger_mean / self.champion_mean


class BanditPolicy:
    """Stateless-ish arm selection over a measurement snapshot.

    The policy owns only the exploration ledger, its RNG, and the
    per-arm cooldown counters; all measured knowledge lives in the
    :class:`~repro.autotune.measurements.MeasurementStore` snapshot the
    caller passes in, which is what makes shard-merged stores usable
    directly.
    """

    def __init__(self, config: BanditConfig | None = None):
        self.config = config if config is not None else BanditConfig()
        self._rng = np.random.default_rng(self.config.seed)
        # Exploration ledger: eligible calls accrue fractional tokens,
        # each exploration spends one whole token.
        self._tokens = 0.0
        self._cooldowns: dict[tuple[str, str], int] = {}
        self.explorations = 0
        self.eligible_calls = 0

    # -- exploration ----------------------------------------------------

    def note_cooldown(self, sig_key: str, arm_id: str) -> None:
        """Freeze one arm out of exploration for ``cooldown`` picks."""
        if self.config.cooldown > 0:
            self._cooldowns[(sig_key, arm_id)] = self.config.cooldown

    def _cooled(self, sig_key: str, arm_id: str) -> bool:
        key = (sig_key, arm_id)
        left = self._cooldowns.get(key, 0)
        if left <= 0:
            return False
        left -= 1
        if left <= 0:
            self._cooldowns.pop(key, None)
        else:
            self._cooldowns[key] = left
        return True

    def in_cooldown(self, sig_key: str, arm_id: str) -> bool:
        """Read-only cooldown check (no decrement) — promotion gate."""
        return self._cooldowns.get((sig_key, arm_id), 0) > 0

    def pick(
        self,
        sig_key: str,
        challenger_ids: list[str],
        stats: dict[str, ArmStats],
    ) -> str | None:
        """The arm to explore on this call, or ``None`` to stay champion.

        Call only for *eligible* traffic (low load, no deadline, not
        degraded) — the policy then applies the rate budget on top.
        """
        self.eligible_calls += 1
        self._tokens = min(
            self._tokens + self.config.explore_rate,
            max(1.0, 4 * self.config.explore_rate),
        )
        if not challenger_ids or self._tokens < 1.0:
            return None
        if self._rng.random() >= 0.5:
            # The ledger alone enforces the budget; the coin only
            # de-phases exploration from workload periodicity (without
            # it every 1/rate-th call would explore, in lockstep).
            return None
        open_arms = [
            a for a in challenger_ids if not self._cooled(sig_key, a)
        ]
        if not open_arms:
            return None
        # Fair hearing first: the least-tried arm below the trials floor.
        under = [
            a for a in open_arms
            if (stats.get(a).count if a in stats else 0)
            < self.config.min_trials
        ]
        if under:
            chosen = min(
                under, key=lambda a: stats[a].count if a in stats else 0
            )
        else:
            chosen = min(open_arms, key=lambda a: stats[a].mean)
        self._tokens -= 1.0
        self.explorations += 1
        return chosen

    # -- promotion / rollback -------------------------------------------

    def promotion(
        self,
        sig_key: str,
        champion_id: str,
        challenger_ids: list[str],
        stats: dict[str, ArmStats],
    ) -> PromotionDecision:
        """Whether any challenger has earned the champion's slot.

        Arms in rollback cooldown are ineligible: a freshly-demoted
        arm's *lifetime* mean still looks great (its regression is only
        in the trailing window), so without this gate rollback would
        oscillate promote/rollback until the lifetime mean caught up.
        """
        cfg = self.config
        champ = stats.get(champion_id)
        if champ is None or champ.count < cfg.min_trials:
            return PromotionDecision(
                False, reason="champion has too few measurements"
            )
        best_id, best = None, None
        for arm_id in challenger_ids:
            s = stats.get(arm_id)
            if s is None or s.count < cfg.min_trials:
                continue
            if self.in_cooldown(sig_key, arm_id):
                continue
            if best is None or s.mean < best.mean:
                best_id, best = arm_id, s
        if best is None:
            return PromotionDecision(
                False, reason="no challenger has enough measurements"
            )
        threshold = champ.mean * (1.0 - cfg.promote_margin)
        if best.mean >= threshold:
            return PromotionDecision(
                False, arm_id=best_id,
                reason=(
                    f"best challenger mean {best.mean:.3e}s does not beat "
                    f"the champion {champ.mean:.3e}s by the "
                    f"{cfg.promote_margin:.0%} margin"
                ),
                challenger_mean=best.mean, champion_mean=champ.mean,
            )
        return PromotionDecision(
            True, arm_id=best_id,
            reason=(
                f"challenger mean {best.mean:.3e}s beats champion "
                f"{champ.mean:.3e}s by more than {cfg.promote_margin:.0%} "
                f"over {best.count} trials"
            ),
            challenger_mean=best.mean, champion_mean=champ.mean,
        )

    def should_rollback(
        self, promoted: ArmStats | None, baseline_mean: float
    ) -> bool:
        """Whether a promoted arm's recent behavior demands rollback.

        ``baseline_mean`` is the pre-promotion champion mean recorded in
        the promotion event; the trailing window, not lifetime history,
        is judged — a regression must show up in *current* behavior.
        """
        if promoted is None or baseline_mean <= 0:
            return False
        if len(promoted.recent) < min(self.config.min_trials, 2):
            return False
        limit = baseline_mean * (1.0 + self.config.rollback_margin)
        return promoted.recent_mean > limit

    def stats(self) -> dict:
        return {
            "eligible_calls": self.eligible_calls,
            "explorations": self.explorations,
            "cooldowns_active": len(self._cooldowns),
        }
