"""Online autotuning: bandit plan exploration under live traffic.

The subsystem closes the loop the calibrator left open: the runtime
already *measures* every contraction and refits cost weights, but the
plans it replays stay whatever the model first chose.  The autotuner
spends a small budget of eligible live traffic on challenger plans
(alternate accumulator, tile size, backend, or network path optimizer),
accumulates the wall-clock outcomes per problem signature, and promotes
a challenger into the plan cache only once it beats the champion by a
configured margin — with automatic rollback and persistent learned
state so restarts and shard workers warm-start instead of relearning.

Layering::

    measurements  bounded per-(signature, arm) moments; associative merge
    candidates    arm enumeration (what *can* be explored per problem)
    bandit        budgeted epsilon-greedy pick / promotion / rollback
    state         versioned JSON persistence (weights, champions, history)
    tuner         the orchestrator wired into runtime + serve

See ``docs/autotune.md`` for the serving-side guardrails.
"""

from repro.autotune.bandit import BanditConfig, BanditPolicy, PromotionDecision
from repro.autotune.candidates import (
    CHAMPION_ARM,
    Candidate,
    network_candidates,
    pairwise_candidates,
    rank_network_optimizers,
)
from repro.autotune.measurements import ArmStats, MeasurementStore
from repro.autotune.state import AutotuneState, ChampionRecord, PromotionEvent
from repro.autotune.tuner import OnlineTuner, TunerConfig

__all__ = [
    "ArmStats",
    "AutotuneState",
    "BanditConfig",
    "BanditPolicy",
    "CHAMPION_ARM",
    "Candidate",
    "ChampionRecord",
    "MeasurementStore",
    "OnlineTuner",
    "PromotionDecision",
    "PromotionEvent",
    "TunerConfig",
    "network_candidates",
    "pairwise_candidates",
    "rank_network_optimizers",
]
