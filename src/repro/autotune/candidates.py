"""Candidate-arm enumeration for the online tuner.

A *candidate* is one alternative way to execute a recurring problem —
the knobs Algorithm 7 / the path optimizer decided once, reopened for
measurement:

* **pairwise** problems vary the accumulator choice (dense/sparse), the
  tile size (one power-of-two step around the model's pick), and the
  kernel backend (every backend that passes feature detection);
* **network** problems vary the path optimizer (left/greedy/dp/
  sparsity), ranked by modeled cost so "the second-best candidate" is a
  meaningful notion before any measurement exists.

Enumeration is deliberately small — a handful of arms per signature —
because every arm costs real serving latency to measure; SparseAuto's
lesson is that the headroom is concentrated in a few coarse decisions,
not a fine grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import choose_accumulator
from repro.core.plan import ContractionSpec
from repro.machine.specs import MachineSpec
from repro.network.optimize import OPTIMIZERS, build_plan
from repro.runtime.signature import ProblemSignature
from repro.util.arrays import next_power_of_two

__all__ = [
    "CHAMPION_ARM",
    "Candidate",
    "pairwise_candidates",
    "rank_network_optimizers",
    "network_candidates",
]

#: Arm id of the incumbent decision (the model/optimizer's own choice).
CHAMPION_ARM = "model"


@dataclass(frozen=True)
class Candidate:
    """One executable alternative for a recurring problem.

    ``arm_id`` is the stable identity measurements accumulate under;
    the remaining fields are the execution overrides the arm stands
    for.  ``None``/``"auto"`` fields defer to the normal decision.
    """

    arm_id: str
    kind: str  # "pairwise" | "network"
    accumulator: str = "auto"
    tile_size: int | None = None
    backend: str | None = None
    optimizer: str | None = None
    note: str = ""

    def overrides(self) -> dict:
        """Keyword overrides for a runtime/executor call."""
        out: dict = {}
        if self.kind == "pairwise":
            out["accumulator"] = self.accumulator
            if self.tile_size is not None:
                out["tile_size"] = self.tile_size
            if self.backend is not None:
                out["backend"] = self.backend
        elif self.optimizer is not None:
            out["optimizer"] = self.optimizer
        return out

    def to_json(self) -> dict:
        return {
            "arm_id": self.arm_id,
            "kind": self.kind,
            "accumulator": self.accumulator,
            "tile_size": self.tile_size,
            "backend": self.backend,
            "optimizer": self.optimizer,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "Candidate":
        return cls(
            arm_id=str(doc["arm_id"]),
            kind=str(doc.get("kind", "pairwise")),
            accumulator=str(doc.get("accumulator", "auto")),
            tile_size=(
                None if doc.get("tile_size") is None
                else int(doc["tile_size"])
            ),
            backend=doc.get("backend"),
            optimizer=doc.get("optimizer"),
        )


def _detected_backends() -> list[str]:
    from repro.backends.registry import backend_status

    return [name for name, (ok, _) in backend_status().items() if ok]


def pairwise_candidates(
    signature: ProblemSignature,
    machine: MachineSpec,
    *,
    backends: bool = True,
) -> list[Candidate]:
    """Challenger arms for one pairwise problem signature.

    The champion (``model`` arm) is *not* in the list — it is whatever
    the plan cache currently replays; these are the alternatives the
    bandit may spend exploration budget on.
    """
    spec = ContractionSpec(
        signature.left_shape, signature.right_shape, list(signature.pairs)
    )
    choice = choose_accumulator(
        max(1, spec.L), max(1, spec.R), max(1, spec.C),
        signature.nnz_l, signature.nnz_r, machine,
    )
    out: list[Candidate] = []
    other_acc = "sparse" if choice.accumulator == "dense" else "dense"
    out.append(Candidate(
        arm_id=f"acc={other_acc}", kind="pairwise", accumulator=other_acc,
        note=f"flip of the model's {choice.accumulator} choice",
    ))
    cap = next_power_of_two(max(spec.L, spec.R))
    # Tiles past the problem extent all execute as one tile; step around
    # the *effective* tile, not the model's unclamped pick.
    base_tile = min(int(choice.tile_size), cap)
    for tile in (base_tile // 2, base_tile * 2):
        if tile >= 4 and tile != base_tile and tile <= cap:
            out.append(Candidate(
                arm_id=f"tile={tile}", kind="pairwise",
                accumulator=choice.accumulator, tile_size=tile,
                note=f"one step from the model tile {base_tile}",
            ))
    if backends:
        for name in _detected_backends():
            if name == "numpy":
                continue
            out.append(Candidate(
                arm_id=f"backend={name}", kind="pairwise", backend=name,
            ))
    return out


def rank_network_optimizers(network, machine: MachineSpec) -> list[tuple[str, float]]:
    """``(optimizer, modeled cost)`` for every path optimizer, best first.

    The modeled ranking seeds the bandit's prior: the champion is the
    ``auto`` pick and the "second-best" challenger is the next entry.
    Optimizers whose planning itself fails (e.g. DP refused by size)
    are skipped.
    """
    ranked: list[tuple[str, float]] = []
    for name in OPTIMIZERS:
        try:
            plan = build_plan(network, machine, name)
        except Exception:  # noqa: BLE001 - unplannable variant is not an arm
            continue
        ranked.append((name, float(plan.est_total_cost)))
    ranked.sort(key=lambda item: item[1])
    return ranked


def network_candidates(
    network,
    machine: MachineSpec,
    *,
    champion_optimizer: str,
    max_arms: int = 3,
) -> list[Candidate]:
    """Challenger arms for one network signature: alternate optimizers,
    modeled-cost order, the champion's own optimizer excluded."""
    out: list[Candidate] = []
    for name, cost in rank_network_optimizers(network, machine):
        if name == champion_optimizer:
            continue
        out.append(Candidate(
            arm_id=f"opt={name}", kind="network", optimizer=name,
            note=f"modeled cost {cost:.3g}",
        ))
        if len(out) >= max_arms:
            break
    return out
