"""The online tuner: closes the measure → learn → promote loop in-process.

:class:`OnlineTuner` sits between the serving layer and the adaptive
runtime.  Per call it makes one cheap decision — *replay the champion,
or spend exploration budget on a challenger* — and per measurement it
advances three slower loops:

1. **bandit** (:mod:`repro.autotune.bandit`): wall-clock outcomes
   accumulate per (signature, arm) in the bounded
   :class:`~repro.autotune.measurements.MeasurementStore`;
2. **calibration**: every ``refit_every`` samples the runtime's
   :class:`~repro.runtime.calibrator.CostCalibrator` refits the
   :class:`~repro.machine.cost_model.CostWeights`, and the fitted
   weights land in the persistent state — restarts price plans with
   measured constants immediately;
3. **promotion**: a challenger that beats the champion by the margin
   over enough trials is installed into the
   :class:`~repro.runtime.plan_cache.PlanCache` (pairwise) or the
   preferred-optimizer table (network), with the displaced decision
   retained for automatic rollback.

Exploration never runs on deadline-carrying, degraded, or high-load
traffic: the serving layer brackets each request in
:meth:`OnlineTuner.serving` and the tuner refuses to explore outside an
eligible bracket (direct runtime users opt in via
``default_eligible``).  Explored executions are numerically identical
to champion executions — every arm varies *how* the contraction runs
(tile, accumulator, backend, path), never what it computes; the
differential suite fuzzes exactly this.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

from repro.autotune.bandit import BanditConfig, BanditPolicy
from repro.autotune.candidates import (
    CHAMPION_ARM,
    Candidate,
    network_candidates,
    pairwise_candidates,
)
from repro.autotune.measurements import MeasurementStore
from repro.autotune.state import AutotuneState, ChampionRecord, PromotionEvent
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.errors import ConfigError
from repro.machine.specs import MachineSpec
from repro.runtime.plan_cache import CachedPlan
from repro.runtime.signature import ProblemSignature

__all__ = ["TunerConfig", "OnlineTuner"]


@dataclass(frozen=True)
class TunerConfig:
    """Tunables of one :class:`OnlineTuner`.

    ``explore_rate`` is the fraction of *eligible* calls that may run a
    challenger; ``state_path`` enables persistence (unset, every
    restart relearns from scratch — ``FSTC602`` warns about exactly
    this); ``default_eligible`` is the exploration eligibility assumed
    when no serving bracket is active (the serve layer always
    brackets; direct runtime/bench users choose).
    """

    explore_rate: float = 0.05
    min_trials: int = 3
    promote_margin: float = 0.10
    rollback_margin: float = 0.25
    cooldown: int = 32
    refit_every: int = 16
    max_signatures: int = 256
    max_arms: int = 16
    state_path: str | None = None
    backend_arms: bool = True
    default_eligible: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.refit_every < 1:
            raise ConfigError(
                f"refit_every must be >= 1, got {self.refit_every}"
            )
        # Range checks shared with the bandit (raises ConfigError).
        BanditConfig(
            explore_rate=self.explore_rate,
            min_trials=self.min_trials,
            promote_margin=self.promote_margin,
            rollback_margin=self.rollback_margin,
            cooldown=self.cooldown,
        )

    def bandit_config(self) -> BanditConfig:
        return BanditConfig(
            explore_rate=self.explore_rate,
            min_trials=self.min_trials,
            promote_margin=self.promote_margin,
            rollback_margin=self.rollback_margin,
            cooldown=self.cooldown,
            seed=self.seed,
        )


class _Eligibility(threading.local):
    """Per-worker-thread serving bracket (set by the service)."""

    def __init__(self):
        self.active = False
        self.eligible = False


class OnlineTuner:
    """Per-signature bandit exploration with persistent learning."""

    def __init__(
        self,
        machine: MachineSpec,
        config: TunerConfig | None = None,
    ):
        self.machine = machine
        self.config = config if config is not None else TunerConfig()
        self.state = AutotuneState(
            machine.name,
            path=self.config.state_path,
            store=MeasurementStore(
                max_signatures=self.config.max_signatures,
                max_arms=self.config.max_arms,
            ),
        )
        self.policy = BanditPolicy(self.config.bandit_config())
        self._runtime = None
        self._lock = threading.RLock()
        self._context = _Eligibility()
        # arm enumerations, cached per signature key (bounded).
        self._pairwise_arms: dict[str, list[Candidate]] = {}
        self._network_arms: dict[str, list[Candidate]] = {}
        self._samples_since_refit = 0
        self.promotions = 0
        self.rollbacks = 0
        self.refits = 0

    # -- wiring ---------------------------------------------------------

    def attach(self, runtime) -> "OnlineTuner":
        """Bind to a runtime: hook `contract()`, warm-start learning.

        Applies the persisted calibrated weights to the runtime's
        calibrator and replays every persisted pairwise promotion into
        the plan cache, so the first request after a restart already
        runs the learned decisions.
        """
        self._runtime = runtime
        runtime.tuner = self
        if self.state.weights is not None and runtime.calibrator is not None:
            runtime.calibrator.weights = self.state.weights
        for sig_key, record in list(self.state.champions.items()):
            if record.plan is not None:
                runtime.plan_cache.put_key(
                    sig_key, CachedPlan(**record.plan)
                )
        return self

    @property
    def runtime(self):
        return self._runtime

    def serving(self, *, eligible: bool) -> "_ServingBracket":
        """Context manager marking the current thread's request as
        eligible (or not) for exploration."""
        return _ServingBracket(self._context, eligible)

    def _eligible(self) -> bool:
        if self._context.active:
            return self._context.eligible
        return self.config.default_eligible

    # -- pairwise -------------------------------------------------------

    def _pairwise_candidates(self, signature: ProblemSignature) -> list[Candidate]:
        key = signature.key
        with self._lock:
            arms = self._pairwise_arms.get(key)
            if arms is None:
                arms = pairwise_candidates(
                    signature, self.machine,
                    backends=self.config.backend_arms,
                )
                if len(self._pairwise_arms) >= self.config.max_signatures:
                    self._pairwise_arms.pop(next(iter(self._pairwise_arms)))
                self._pairwise_arms[key] = arms
            return arms

    def route_pairwise(self, signature: ProblemSignature) -> Candidate | None:
        """The challenger to run instead of the champion, or ``None``.

        Called by :meth:`ContractionRuntime.contract` for default
        (championable) calls only; the returned candidate's overrides
        re-key the call so the explored plan never displaces the
        champion's cache entry.
        """
        if not self._eligible():
            return None
        arms = self._pairwise_candidates(signature)
        if not arms:
            return None
        key = signature.key
        with self._lock:
            chosen = self.policy.pick(
                key, [a.arm_id for a in arms], self.state.store.arms(key)
            )
        if chosen is None:
            return None
        return next(a for a in arms if a.arm_id == chosen)

    def preferred_backend(self, signature: ProblemSignature) -> str | None:
        """The promoted backend for champion calls on this signature."""
        record = self.state.champion(signature.key)
        if record is None:
            return None
        return record.candidate.backend

    def observe_pairwise(
        self,
        signature: ProblemSignature,
        arm_id: str | None,
        seconds: float,
    ) -> None:
        """Record one measured execution and advance the slow loops.

        ``arm_id`` is ``None`` for a champion (default-path) call —
        resolved to the currently-promoted arm so post-promotion
        behavior accrues to the arm that must defend the slot.
        """
        key = signature.key
        record = self.state.champion(key)
        if arm_id is None:
            arm_id = record.arm_id if record is not None else CHAMPION_ARM
        self.state.store.observe(key, arm_id, seconds)
        self._maybe_refit()
        if record is not None:
            self._maybe_rollback(key, record, kind="pairwise")
        else:
            self._maybe_promote_pairwise(signature)

    def _maybe_promote_pairwise(self, signature: ProblemSignature) -> None:
        key = signature.key
        arms = self._pairwise_candidates(signature)
        with self._lock:
            decision = self.policy.promotion(
                key, CHAMPION_ARM, [a.arm_id for a in arms],
                self.state.store.arms(key),
            )
            if not decision.promote:
                return
            candidate = next(a for a in arms if a.arm_id == decision.arm_id)
            plan_doc = prev_doc = None
            if candidate.accumulator != "auto" or candidate.tile_size is not None:
                plan_doc, prev_doc = self._install_pairwise_plan(
                    signature, candidate
                )
            self.state.set_champion(key, ChampionRecord(
                arm_id=candidate.arm_id,
                candidate=candidate,
                baseline_mean=decision.champion_mean,
                plan=plan_doc,
                prev_plan=prev_doc,
            ))
            self.promotions += 1
            self.state.record_event(PromotionEvent(
                event="promote", sig_key=key, arm_id=candidate.arm_id,
                reason=decision.reason,
                challenger_mean=decision.challenger_mean,
                champion_mean=decision.champion_mean,
                timestamp=time.time(),
            ))

    def _install_pairwise_plan(
        self, signature: ProblemSignature, candidate: Candidate
    ) -> tuple[dict | None, dict | None]:
        """Put the challenger's Algorithm 7 decision under the champion
        key; returns ``(new_plan_doc, previous_plan_doc)``."""
        spec = ContractionSpec(
            signature.left_shape, signature.right_shape,
            list(signature.pairs),
        )
        plan = choose_plan(
            spec, signature.nnz_l, signature.nnz_r, self.machine,
            accumulator=candidate.accumulator,
            tile_size=candidate.tile_size,
        )
        cached = CachedPlan.from_plan(plan)
        prev = None
        if self._runtime is not None:
            old = self._runtime.plan_cache.peek_key(signature.key)
            prev = None if old is None else asdict(old)
            self._runtime.plan_cache.put_key(signature.key, cached)
        return asdict(cached), prev

    # -- network --------------------------------------------------------

    def _network_candidates(self, sig_key: str, network, champion: str):
        with self._lock:
            arms = self._network_arms.get(sig_key)
            if arms is None:
                arms = network_candidates(
                    network, self.machine, champion_optimizer=champion,
                )
                if len(self._network_arms) >= self.config.max_signatures:
                    self._network_arms.pop(next(iter(self._network_arms)))
                self._network_arms[sig_key] = arms
            return arms

    def route_network(
        self, sig_key: str, network, champion_optimizer: str
    ) -> Candidate | None:
        """The optimizer challenger to run for a network call, if any."""
        if not self._eligible():
            return None
        arms = self._network_candidates(sig_key, network, champion_optimizer)
        if not arms:
            return None
        with self._lock:
            chosen = self.policy.pick(
                sig_key, [a.arm_id for a in arms],
                self.state.store.arms(sig_key),
            )
        if chosen is None:
            return None
        return next(a for a in arms if a.arm_id == chosen)

    def preferred_network_optimizer(self, sig_key: str) -> str | None:
        record = self.state.champion(sig_key)
        if record is None or record.candidate.kind != "network":
            return None
        return record.candidate.optimizer

    def observe_network(
        self, sig_key: str, arm_id: str | None, seconds: float
    ) -> None:
        record = self.state.champion(sig_key)
        if arm_id is None:
            arm_id = record.arm_id if record is not None else CHAMPION_ARM
        self.state.store.observe(sig_key, arm_id, seconds)
        self._maybe_refit()
        if record is not None:
            self._maybe_rollback(sig_key, record, kind="network")
        else:
            self._maybe_promote_network(sig_key)

    def _maybe_promote_network(self, sig_key: str) -> None:
        with self._lock:
            arms = self._network_arms.get(sig_key)
            if not arms:
                return
            decision = self.policy.promotion(
                sig_key, CHAMPION_ARM, [a.arm_id for a in arms],
                self.state.store.arms(sig_key),
            )
            if not decision.promote:
                return
            candidate = next(a for a in arms if a.arm_id == decision.arm_id)
            self.state.set_champion(sig_key, ChampionRecord(
                arm_id=candidate.arm_id,
                candidate=candidate,
                baseline_mean=decision.champion_mean,
            ))
            self.promotions += 1
            self.state.record_event(PromotionEvent(
                event="promote", sig_key=sig_key, arm_id=candidate.arm_id,
                reason=decision.reason,
                challenger_mean=decision.challenger_mean,
                champion_mean=decision.champion_mean,
                timestamp=time.time(),
            ))

    # -- shared slow loops ----------------------------------------------

    def _maybe_rollback(
        self, sig_key: str, record: ChampionRecord, *, kind: str
    ) -> None:
        stats = self.state.store.stats_for(sig_key, record.arm_id)
        if not self.policy.should_rollback(stats, record.baseline_mean):
            return
        with self._lock:
            current = self.state.champion(sig_key)
            if current is None or current.arm_id != record.arm_id:
                return  # someone else already rolled back / re-promoted
            self.state.clear_champion(sig_key)
            if (
                kind == "pairwise"
                and self._runtime is not None
                and record.prev_plan is not None
            ):
                self._runtime.plan_cache.put_key(
                    sig_key, CachedPlan(**record.prev_plan)
                )
            self.policy.note_cooldown(sig_key, record.arm_id)
            self.rollbacks += 1
            self.state.record_event(PromotionEvent(
                event="rollback", sig_key=sig_key, arm_id=record.arm_id,
                reason=(
                    f"recent mean {stats.recent_mean:.3e}s regressed past "
                    f"the pre-promotion champion "
                    f"{record.baseline_mean:.3e}s + "
                    f"{self.config.rollback_margin:.0%}"
                ),
                challenger_mean=stats.recent_mean,
                champion_mean=record.baseline_mean,
                timestamp=time.time(),
            ))

    def _maybe_refit(self) -> None:
        """Incremental calibrator refit + weight capture, every N samples."""
        runtime = self._runtime
        if runtime is None or runtime.calibrator is None:
            return
        with self._lock:
            self._samples_since_refit += 1
            if self._samples_since_refit < self.config.refit_every:
                return
            self._samples_since_refit = 0
        calibrator = runtime.calibrator
        if not calibrator.samples:
            return
        try:
            self.state.weights = calibrator.fit()
        except ValueError:
            return
        self.refits += 1

    # -- persistence / metrics ------------------------------------------

    def flush(self) -> str | None:
        """Capture the latest calibrated weights and persist the state."""
        runtime = self._runtime
        if (
            runtime is not None
            and runtime.calibrator is not None
            and runtime.calibrator.weights is not None
        ):
            self.state.weights = runtime.calibrator.weights
        return self.state.flush()

    def metrics(self) -> dict:
        """Associative counters (mergeable across shards like the SLO
        metrics: every value is a count that sums)."""
        policy = self.policy.stats()
        store = self.state.store.summary()
        return {
            "eligible_calls": policy["eligible_calls"],
            "explorations": policy["explorations"],
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "refits": self.refits,
            "signatures": store["signatures"],
            "samples": store["samples"],
            "champions": len(self.state.champions),
        }


class _ServingBracket:
    """Context manager flipping one thread's eligibility flag."""

    def __init__(self, context: _Eligibility, eligible: bool):
        self._context = context
        self._eligible = bool(eligible)
        self._saved: tuple[bool, bool] | None = None

    def __enter__(self):
        self._saved = (self._context.active, self._context.eligible)
        self._context.active = True
        self._context.eligible = self._eligible
        return self

    def __exit__(self, *exc):
        active, eligible = self._saved
        self._context.active = active
        self._context.eligible = eligible

