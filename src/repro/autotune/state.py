"""Versioned, corruption-tolerant persistence of learned autotune state.

One JSON document per machine model (the state embeds the machine name
it was learned on and refuses to warm-start a different machine — a
DESKTOP-learned tile preference is noise on SERVER):

* the **calibrated cost weights** the
  :class:`~repro.runtime.calibrator.CostCalibrator` converged to, so a
  restarted service prices plans with measured constants from second
  one;
* the **measurement store** (:mod:`repro.autotune.measurements`), so
  challengers do not restart their trials from zero;
* the **champion table** — per-signature promoted decisions with the
  pre-promotion plan retained for rollback — so a restart (or a fresh
  :class:`~repro.serve.ShardRouter` worker) replays every promotion
  into its plan cache before serving the first request;
* the **promotion history**, the audit log ``repro autotune`` inspects.

The file discipline is the :class:`~repro.runtime.plan_cache.PlanCache`
one: atomic ``os.replace`` writes, versioned payloads, and a parse
failure that degrades to a cold state recorded on
:attr:`AutotuneState.load_error` instead of taking the service down.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass

from repro.autotune.candidates import Candidate
from repro.autotune.measurements import MeasurementStore
from repro.machine.cost_model import CostWeights

__all__ = ["ChampionRecord", "PromotionEvent", "AutotuneState"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ChampionRecord:
    """The currently-promoted decision for one signature.

    ``plan`` carries the promoted :class:`~repro.runtime.plan_cache.CachedPlan`
    fields for pairwise problems (re-applied to the plan cache on
    warm-start); ``prev_plan`` the decision it displaced, kept for
    rollback.  Network promotions carry the candidate only (the
    preferred optimizer re-routes planning instead of patching a cached
    plan).  ``baseline_mean`` is the champion mean the promotion beat —
    the yardstick rollback measures regressions against.
    """

    arm_id: str
    candidate: Candidate
    baseline_mean: float
    plan: dict | None = None
    prev_plan: dict | None = None

    def to_json(self) -> dict:
        return {
            "arm_id": self.arm_id,
            "candidate": self.candidate.to_json(),
            "baseline_mean": self.baseline_mean,
            "plan": self.plan,
            "prev_plan": self.prev_plan,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "ChampionRecord":
        return cls(
            arm_id=str(doc["arm_id"]),
            candidate=Candidate.from_json(doc["candidate"]),
            baseline_mean=float(doc.get("baseline_mean", 0.0)),
            plan=doc.get("plan"),
            prev_plan=doc.get("prev_plan"),
        )


@dataclass(frozen=True)
class PromotionEvent:
    """One entry of the promotion audit log."""

    event: str  # "promote" | "rollback"
    sig_key: str
    arm_id: str
    reason: str
    challenger_mean: float = 0.0
    champion_mean: float = 0.0
    timestamp: float = 0.0

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: dict) -> "PromotionEvent":
        return cls(
            event=str(doc.get("event", "promote")),
            sig_key=str(doc.get("sig_key", "")),
            arm_id=str(doc.get("arm_id", "")),
            reason=str(doc.get("reason", "")),
            challenger_mean=float(doc.get("challenger_mean", 0.0)),
            champion_mean=float(doc.get("champion_mean", 0.0)),
            timestamp=float(doc.get("timestamp", 0.0)),
        )


#: Audit-log length bound (the log is diagnostics, not a ledger).
MAX_HISTORY = 256


class AutotuneState:
    """In-memory learned state with JSON persistence and shard merge."""

    def __init__(
        self,
        machine_name: str,
        *,
        path: str | os.PathLike | None = None,
        store: MeasurementStore | None = None,
    ):
        self.machine_name = machine_name
        self.path = os.fspath(path) if path is not None else None
        self.store = store if store is not None else MeasurementStore()
        self.weights: CostWeights | None = None
        self.champions: dict[str, ChampionRecord] = {}
        self.history: list[PromotionEvent] = []
        self.load_error: str | None = None
        self.loaded_from: str | None = None
        self._lock = threading.RLock()
        if self.path is not None and os.path.exists(self.path):
            self.load(self.path)

    # -- mutation -------------------------------------------------------

    def record_event(self, event: PromotionEvent) -> None:
        with self._lock:
            self.history.append(event)
            del self.history[:-MAX_HISTORY]

    def set_champion(self, sig_key: str, record: ChampionRecord) -> None:
        with self._lock:
            self.champions[sig_key] = record

    def clear_champion(self, sig_key: str) -> ChampionRecord | None:
        with self._lock:
            return self.champions.pop(sig_key, None)

    def champion(self, sig_key: str) -> ChampionRecord | None:
        with self._lock:
            return self.champions.get(sig_key)

    # -- persistence ----------------------------------------------------

    def to_json(self) -> dict:
        with self._lock:
            return {
                "version": _FORMAT_VERSION,
                "machine": self.machine_name,
                "saved_at": time.time(),
                "weights": (
                    None if self.weights is None else asdict(self.weights)
                ),
                "store": self.store.to_json(),
                "champions": {
                    k: v.to_json() for k, v in self.champions.items()
                },
                "history": [e.to_json() for e in self.history],
            }

    def save(self, path: str | os.PathLike | None = None) -> str:
        """Atomic JSON write; returns the path written."""
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the state has no default path")
        payload = self.to_json()
        tmp = f"{target}.tmp"
        with self._lock:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1)
            os.replace(tmp, target)
        return target

    def flush(self) -> str | None:
        return self.save() if self.path is not None else None

    def load(self, path: str | os.PathLike) -> bool:
        """Warm-start from a state file; ``False`` (plus ``load_error``)
        when the file is corrupt, version-skewed, or for another machine."""
        path = os.fspath(path)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("version") != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported state version {payload.get('version')!r}"
                )
            machine = payload.get("machine")
            if machine != self.machine_name:
                raise ValueError(
                    f"state was learned on machine {machine!r}, this "
                    f"process runs {self.machine_name!r}"
                )
            weights_doc = payload.get("weights")
            weights = (
                None if weights_doc is None else CostWeights(**weights_doc)
            )
            store = MeasurementStore.from_json(payload.get("store", {}))
            champions = {
                str(k): ChampionRecord.from_json(v)
                for k, v in payload.get("champions", {}).items()
            }
            history = [
                PromotionEvent.from_json(e)
                for e in payload.get("history", [])
            ]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.load_error = f"{type(exc).__name__}: {exc}"
            return False
        with self._lock:
            self.weights = weights
            self.store = store
            self.champions = champions
            self.history = history[-MAX_HISTORY:]
            self.loaded_from = path
        return True

    # -- shard merge ----------------------------------------------------

    def merge(self, other: "AutotuneState") -> None:
        """Fold a peer's learning in (associative on the store).

        Measurement stores merge through Chan's moments; champion
        tables merge last-writer-wins per signature (disagreeing shards
        converge once the merged store feeds the next promotion check);
        histories concatenate and trim; weights keep the local fit
        (weights are derived state — refit from the merged samples).
        """
        with self._lock:
            self.store.merge(other.store)
            for key, record in other.champions.items():
                self.champions.setdefault(key, record)
            self.history.extend(other.history)
            self.history.sort(key=lambda e: e.timestamp)
            del self.history[:-MAX_HISTORY]

    def summary(self) -> dict:
        with self._lock:
            return {
                "machine": self.machine_name,
                "weights_fitted": self.weights is not None,
                "champions": len(self.champions),
                "promotions": sum(
                    1 for e in self.history if e.event == "promote"
                ),
                "rollbacks": sum(
                    1 for e in self.history if e.event == "rollback"
                ),
                **self.store.summary(),
            }
