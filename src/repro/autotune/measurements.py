"""Bounded per-signature, per-arm measurement statistics.

Every explored or champion execution contributes one wall-clock sample
to the :class:`MeasurementStore`: a two-level map from a signature key
(:class:`~repro.runtime.signature.ProblemSignature` or
:class:`~repro.network.plan.NetworkSignature` string form) to the
statistics of each candidate *arm* tried for it.  The store is the
bandit's entire world model — arm selection, promotion and rollback all
read from it — so it has three hard requirements:

* **bounded** — signatures are LRU-evicted past ``max_signatures`` and
  arms past ``max_arms`` per signature, so a long-lived service cannot
  grow it without limit;
* **associative merge** — shard processes each keep a private store and
  the router folds them together exactly like the SLO metrics merge:
  counts and sums add, variance merges through Chan's parallel update,
  so ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` on the running
  moments;
* **JSON round-trip** — the store is one section of the persisted
  autotune state (:mod:`repro.autotune.state`), versioned and
  corruption-tolerant like the :class:`~repro.runtime.plan_cache.PlanCache`.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["ArmStats", "MeasurementStore"]

#: How many of the most recent samples each arm keeps verbatim (the
#: rollback check reads a *recent* mean, not the lifetime one).
RECENT_WINDOW = 8


@dataclass
class ArmStats:
    """Running moments of one arm's measured wall-clock seconds."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0          # sum of squared deviations (Welford)
    best: float = math.inf   # fastest single sample seen
    recent: list[float] = field(default_factory=list)

    def observe(self, seconds: float) -> None:
        """Welford update with one finite, non-negative sample."""
        if not math.isfinite(seconds) or seconds < 0:
            return
        self.count += 1
        delta = seconds - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (seconds - self.mean)
        self.best = min(self.best, seconds)
        self.recent.append(seconds)
        del self.recent[:-RECENT_WINDOW]

    @property
    def variance(self) -> float:
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def recent_mean(self) -> float:
        """Mean of the trailing window (falls back to the lifetime mean)."""
        if not self.recent:
            return self.mean
        return sum(self.recent) / len(self.recent)

    def merge(self, other: "ArmStats") -> None:
        """Fold ``other`` in (Chan's parallel moments: associative)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.best = other.best
            self.recent = list(other.recent[-RECENT_WINDOW:])
            return
        n1, n2 = self.count, other.count
        delta = other.mean - self.mean
        total = n1 + n2
        self.mean += delta * n2 / total
        self.m2 += other.m2 + delta * delta * n1 * n2 / total
        self.count = total
        self.best = min(self.best, other.best)
        self.recent = (self.recent + other.recent)[-RECENT_WINDOW:]

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "best": self.best if math.isfinite(self.best) else None,
            "recent": list(self.recent),
        }

    @classmethod
    def from_json(cls, doc: dict) -> "ArmStats":
        best = doc.get("best")
        return cls(
            count=int(doc.get("count", 0)),
            mean=float(doc.get("mean", 0.0)),
            m2=float(doc.get("m2", 0.0)),
            best=math.inf if best is None else float(best),
            recent=[float(x) for x in doc.get("recent", [])][-RECENT_WINDOW:],
        )


class MeasurementStore:
    """Bounded two-level map ``signature key -> arm id -> ArmStats``.

    Thread-safe: the serve worker pool records measurements concurrently
    while the router thread snapshots for metrics/merges.
    """

    def __init__(self, max_signatures: int = 256, max_arms: int = 16):
        if max_signatures < 1 or max_arms < 2:
            raise ConfigError(
                f"need max_signatures >= 1 and max_arms >= 2, got "
                f"{max_signatures}/{max_arms} (one champion plus at least "
                "one challenger)"
            )
        self.max_signatures = int(max_signatures)
        self.max_arms = int(max_arms)
        self._entries: OrderedDict[str, OrderedDict[str, ArmStats]] = (
            OrderedDict()
        )
        self._lock = threading.RLock()
        self.total_samples = 0
        self.evicted_signatures = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def signatures(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def observe(self, sig_key: str, arm_id: str, seconds: float) -> ArmStats:
        """Record one sample; creates signature/arm entries as needed."""
        with self._lock:
            arms = self._entries.get(sig_key)
            if arms is None:
                arms = OrderedDict()
                self._entries[sig_key] = arms
            self._entries.move_to_end(sig_key)
            stats = arms.get(arm_id)
            if stats is None:
                stats = ArmStats()
                arms[arm_id] = stats
            arms.move_to_end(arm_id)
            before = stats.count
            stats.observe(seconds)
            self.total_samples += stats.count - before
            while len(arms) > self.max_arms:
                arms.popitem(last=False)
            while len(self._entries) > self.max_signatures:
                self._entries.popitem(last=False)
                self.evicted_signatures += 1
            return stats

    def arms(self, sig_key: str) -> dict[str, ArmStats]:
        """Snapshot of the arm stats for one signature (copies the map,
        shares the mutable :class:`ArmStats` — callers only read)."""
        with self._lock:
            return dict(self._entries.get(sig_key, {}))

    def stats_for(self, sig_key: str, arm_id: str) -> ArmStats | None:
        with self._lock:
            arms = self._entries.get(sig_key)
            return None if arms is None else arms.get(arm_id)

    def trials(self, sig_key: str, arm_id: str) -> int:
        stats = self.stats_for(sig_key, arm_id)
        return 0 if stats is None else stats.count

    # -- merge / persistence -------------------------------------------

    def merge(self, other: "MeasurementStore") -> None:
        """Fold another store in (associative on the running moments)."""
        with other._lock:
            snapshot = [
                (sig, [(arm, s.to_json()) for arm, s in arms.items()])
                for sig, arms in other._entries.items()
            ]
        with self._lock:
            for sig, arms in snapshot:
                mine = self._entries.setdefault(sig, OrderedDict())
                for arm_id, doc in arms:
                    incoming = ArmStats.from_json(doc)
                    stats = mine.get(arm_id)
                    if stats is None:
                        mine[arm_id] = incoming
                    else:
                        stats.merge(incoming)
                    self.total_samples += incoming.count
                while len(mine) > self.max_arms:
                    mine.popitem(last=False)
            while len(self._entries) > self.max_signatures:
                self._entries.popitem(last=False)
                self.evicted_signatures += 1

    def to_json(self) -> dict:
        with self._lock:
            return {
                "max_signatures": self.max_signatures,
                "max_arms": self.max_arms,
                "signatures": {
                    sig: {arm: s.to_json() for arm, s in arms.items()}
                    for sig, arms in self._entries.items()
                },
            }

    @classmethod
    def from_json(cls, doc: dict) -> "MeasurementStore":
        store = cls(
            max_signatures=int(doc.get("max_signatures", 256)),
            max_arms=int(doc.get("max_arms", 16)),
        )
        for sig, arms in doc.get("signatures", {}).items():
            for arm_id, stats_doc in arms.items():
                stats = ArmStats.from_json(stats_doc)
                if stats.count > 0:
                    entry = store._entries.setdefault(
                        str(sig), OrderedDict()
                    )
                    entry[str(arm_id)] = stats
                    store.total_samples += stats.count
        return store

    def summary(self) -> dict:
        """Associative counters (the metrics-merge friendly view)."""
        with self._lock:
            return {
                "signatures": len(self._entries),
                "samples": self.total_samples,
                "evicted_signatures": self.evicted_signatures,
            }
