"""Run every benchmark harness and collect outputs (artifact driver).

Usage:  python benchmarks/run_all.py [--out results/] [--quick] [--json]

Mirrors the paper's SC artifact workflow: one command regenerates every
table and figure, writing each harness's printed rows to a text file.
``--quick`` restricts repeats so a full pass finishes in a few minutes.
``--json`` additionally writes one machine-readable run manifest,
``BENCH_<stamp>.json``, into the output directory: per-harness status,
wall-clock seconds and output path, plus the run configuration — what a
results dashboard or regression tracker ingests instead of scraping the
text files.
"""

from __future__ import annotations

import argparse
import importlib
import io
import os
import sys
import time
from contextlib import redirect_stdout

#: Harness modules in paper order (tables, figures, ablations).
HARNESSES = [
    "bench_table1_loop_orders",
    "bench_table2_datasets",
    "bench_table3_model",
    "bench_fig2_sparta_frostt",
    "bench_fig2_sparta_quantum",
    "bench_fig3_scaling",
    "bench_fig4_tile_sweep",
    "bench_fig5_taco",
    "bench_ablation_drain",
    "bench_ablation_hashing",
    "bench_ablation_tiling",
    "bench_ablation_order_vs_tables",
    "bench_ablation_network",
    "bench_network_paths",
    "bench_network_passes",
    "bench_ablation_pool",
    "bench_model_accuracy",
    "bench_format_memory",
    "bench_validation_matrix",
    "bench_runtime_cache",
    "bench_backends",
    "bench_serve_slo",
    "bench_serve_shards",
    "bench_autotune",
    "bench_streaming",
]


def _environment() -> dict:
    """Provenance block for the JSON manifest.

    Records the git commit the numbers came from, the machine model the
    harnesses priced against, and which optional kernel backends were
    importable — the three things a regression tracker needs to decide
    whether two manifests are comparable at all.
    """
    import subprocess

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 - tarball checkouts have no git
        commit = None
    try:
        from repro.backends import available_backends

        backends = sorted(available_backends())
    except Exception:  # noqa: BLE001 - manifest stays writable regardless
        backends = []
    try:
        from repro.machine.specs import DESKTOP

        machine = DESKTOP.name
    except Exception:  # noqa: BLE001
        machine = None
    return {
        "git_commit": commit,
        "machine_model": machine,
        "python": sys.version.split()[0],
        "backends": backends,
    }


def run_harness(name: str, out_dir: str) -> tuple[bool, float, str]:
    """Import and run one harness's main(); capture stdout to a file."""
    module = importlib.import_module(name)
    buffer = io.StringIO()
    t0 = time.perf_counter()
    ok = True
    try:
        with redirect_stdout(buffer):
            module.main()
    except Exception as exc:  # noqa: BLE001 - recorded, run continues
        ok = False
        buffer.write(f"\nFAILED: {exc!r}\n")
    elapsed = time.perf_counter() - t0
    path = os.path.join(out_dir, f"{name.removeprefix('bench_')}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(buffer.getvalue())
    return ok, elapsed, path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of harness names (without bench_)")
    parser.add_argument("--quick", action="store_true",
                        help="clamp every harness's repeats to 1 (smoke "
                             "mode for CI)")
    parser.add_argument("--json", action="store_true",
                        help="also write a BENCH_<stamp>.json run manifest "
                             "into the output directory")
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    os.makedirs(args.out, exist_ok=True)
    if args.quick:
        # Harnesses read this through benchmarks.common.quick_mode().
        os.environ["REPRO_BENCH_QUICK"] = "1"

    selected = HARNESSES
    if args.only:
        wanted = {f"bench_{n.removeprefix('bench_')}" for n in args.only}
        selected = [h for h in HARNESSES if h in wanted]
        missing = wanted - set(selected)
        if missing:
            parser.error(f"unknown harnesses: {sorted(missing)}")

    failures = 0
    results = []
    started = time.time()
    for name in selected:
        ok, elapsed, path = run_harness(name, args.out)
        status = "ok" if ok else "FAILED"
        print(f"{name:<36} {status:>7}  {elapsed:7.1f}s")
        failures += not ok
        results.append({
            "harness": name, "ok": ok,
            "seconds": round(elapsed, 3), "output": path,
        })
    if args.json:
        import json

        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(started))
        manifest = {
            "stamp": stamp,
            "started_at": started,
            "quick": args.quick,
            "environment": _environment(),
            "harnesses": results,
            "succeeded": len(selected) - failures,
            "failed": failures,
        }
        manifest_path = os.path.join(args.out, f"BENCH_{stamp}.json")
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1)
        print(f"manifest written to {manifest_path}")
    print(f"\n{len(selected) - failures}/{len(selected)} harnesses succeeded; "
          f"outputs in {args.out}/")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
