"""Online autotuning: steady-state gain over a frozen stale champion.

Scenario: a service restarts with a plan cache warm-started from
*stale* decisions — tiny tiles and a forced accumulator learned on some
earlier data distribution — for every signature in its traffic.  A
frozen service replays those champions forever.  The autotuned service
(`repro.autotune`) runs the same traffic, spends its exploration budget
on challenger plans, promotes the winners, and converges to the better
decision; its learned state is then persisted and reloaded across an
in-bench restart, which must start at the converged latency instead of
re-paying the exploration cost.

Three windows are reported per configuration (mean per-call seconds):

* ``early``  — the first quarter of the run (exploration tax visible);
* ``steady`` — the last quarter (converged behavior);
* ``restart`` — a fresh runtime warm-started from the persisted state.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import quick_mode  # noqa: E402

from repro.autotune import OnlineTuner, TunerConfig  # noqa: E402
from repro.data.random_tensors import random_coo  # noqa: E402
from repro.machine.specs import DESKTOP  # noqa: E402
from repro.runtime import ContractionRuntime  # noqa: E402
from repro.runtime.plan_cache import CachedPlan  # noqa: E402
from repro.runtime.signature import signature_for  # noqa: E402

#: Workload signatures: (left shape, right shape, nnz per operand).
WORKLOAD = [
    ((64, 56), (56, 60), 1600),
    ((80, 48), (48, 72), 2000),
    ((56, 64), (64, 48), 1200),
]

#: The stale decision every signature starts from: tiles this small
#: shatter the problem into hundreds of tasks of pure overhead.
STALE_TILE = 4


def _operands(seed: int = 0):
    out = []
    for k, (ls, rs, nnz) in enumerate(WORKLOAD):
        left = random_coo(ls, nnz=nnz, seed=seed + 2 * k)
        right = random_coo(rs, nnz=nnz, seed=seed + 2 * k + 1)
        out.append((left, right))
    return out


def _seed_stale(runtime, operands) -> None:
    """Install the stale champion for every workload signature."""
    for left, right in operands:
        sig = signature_for(left, right, [(1, 0)], runtime.machine)
        runtime.plan_cache.put_key(sig.key, CachedPlan(
            accumulator="sparse", tile_l=STALE_TILE, tile_r=STALE_TILE,
            machine_name=runtime.machine.name,
        ))


def _drive(runtime, operands, rounds: int) -> list[float]:
    """Round-robin the workload; per-call wall-clock seconds."""
    times = []
    for _ in range(rounds):
        for left, right in operands:
            t0 = time.perf_counter()
            runtime.contract(left, right, [(1, 0)])
            times.append(time.perf_counter() - t0)
    return times


def _window(times: list[float], which: str) -> float:
    q = max(1, len(times) // 4)
    part = times[:q] if which == "early" else times[-q:]
    return sum(part) / len(part)


def main() -> None:
    rounds = 24 if quick_mode() else 120
    operands = _operands()

    # Frozen: the stale champion is replayed forever.
    frozen_rt = ContractionRuntime(machine=DESKTOP)
    _seed_stale(frozen_rt, operands)
    frozen = _drive(frozen_rt, operands, rounds)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "autotune.json")

        # Autotuned: same stale start, exploration enabled.
        tuned_rt = ContractionRuntime(machine=DESKTOP)
        _seed_stale(tuned_rt, operands)
        tuner = OnlineTuner(DESKTOP, TunerConfig(
            explore_rate=0.30, min_trials=2, promote_margin=0.05,
            refit_every=8, state_path=path, default_eligible=True,
        )).attach(tuned_rt)
        tuned = _drive(tuned_rt, operands, rounds)
        metrics = tuner.metrics()
        tuner.flush()

        # Restart: fresh runtime, stale seeds again, state warm-started
        # (attach replays the persisted promotions over the stale ones).
        restart_rt = ContractionRuntime(machine=DESKTOP)
        _seed_stale(restart_rt, operands)
        tuner2 = OnlineTuner(DESKTOP, TunerConfig(
            state_path=path, default_eligible=False,
        )).attach(restart_rt)
        restarted = _drive(restart_rt, operands, max(4, rounds // 4))
        warm = tuner2.state.summary()

    frozen_steady = _window(frozen, "steady")
    tuned_steady = _window(tuned, "steady")
    restart_mean = sum(restarted) / len(restarted)
    gain = frozen_steady / tuned_steady if tuned_steady > 0 else 0.0

    print("online autotuning vs frozen stale champion "
          f"({len(WORKLOAD)} signatures x {rounds} rounds):")
    print(f"{'config':<22} {'early':>12} {'steady':>12}")
    print(f"{'frozen (stale)':<22} {_window(frozen, 'early') * 1e3:>10.3f}ms "
          f"{frozen_steady * 1e3:>10.3f}ms")
    print(f"{'autotuned':<22} {_window(tuned, 'early') * 1e3:>10.3f}ms "
          f"{tuned_steady * 1e3:>10.3f}ms")
    print(f"{'restart (warm state)':<22} {restart_mean * 1e3:>10.3f}ms "
          f"{restart_mean * 1e3:>10.3f}ms")
    print()
    print(f"tuner: {metrics['explorations']} explorations over "
          f"{metrics['eligible_calls']} eligible calls, "
          f"{metrics['promotions']} promotions, "
          f"{metrics['rollbacks']} rollbacks, {metrics['refits']} refits")
    print(f"persisted state: {warm['samples']} samples, "
          f"{warm['champions']} champions, weights fitted: "
          f"{warm['weights_fitted']}")
    print(f"steady-state speedup over frozen: {gain:.2f}x; "
          f"restart starts at {restart_mean / max(tuned_steady, 1e-12):.2f}x "
          f"the converged latency")
    verdict = (
        "PASS" if tuned_steady < frozen_steady and warm["champions"] > 0
        else "FAIL"
    )
    print(f"verdict: {verdict} (autotuned steady-state "
          f"{'beats' if verdict == 'PASS' else 'does not beat'} the "
          f"frozen stale champion with promotions persisted)")


if __name__ == "__main__":
    main()
