"""Ablation A6: memory-pool chunk sizing for COO output construction.

The paper's implementation hands each thread 512 MB heap chunks while
pushing output nonzeros (Section 4.2).  The chunk size is a classic
trade-off: tiny chunks pay allocation/bookkeeping per few rows, huge
chunks waste memory on mostly-empty final chunks.  This ablation sweeps
the chunk size against (a) a realistic append stream from a real
contraction and (b) the naive `np.concatenate`-per-append strategy the
pool replaces, which is quadratic.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.reporting import render_table
from repro.parallel.memory_pool import COOBuilder

#: Append-stream shape: many small drains, like tile-pair tasks emit.
N_APPENDS = 2_000
ROWS_PER_APPEND = 150

CHUNK_SIZES = [256, 1 << 12, 1 << 16, 1 << 20]


def stream(seed: int = 3):
    rng = np.random.default_rng(seed)
    for _ in range(N_APPENDS):
        n = int(rng.integers(ROWS_PER_APPEND // 2, ROWS_PER_APPEND * 2))
        l = rng.integers(0, 1 << 20, size=n)
        yield l, l + 1, rng.random(n)


def time_pool(chunk_rows: int) -> tuple[float, int]:
    builder = COOBuilder(chunk_rows=chunk_rows)
    t0 = time.perf_counter()
    for l, r, v in stream():
        builder.append_batch(l, r, v)
    builder.finalize()
    return time.perf_counter() - t0, builder.stats.chunks_allocated


def time_naive_concatenate(limit_appends: int = N_APPENDS) -> float:
    """The strategy the pool replaces: grow three arrays per append.
    Quadratic in the number of appends."""
    ls = np.empty(0, dtype=np.int64)
    rs = np.empty(0, dtype=np.int64)
    vs = np.empty(0)
    t0 = time.perf_counter()
    for i, (l, r, v) in enumerate(stream()):
        if i >= limit_appends:
            break
        ls = np.concatenate([ls, l])
        rs = np.concatenate([rs, r])
        vs = np.concatenate([vs, v])
    return time.perf_counter() - t0


def build_rows():
    rows = []
    for chunk in CHUNK_SIZES:
        seconds, chunks = time_pool(chunk)
        rows.append([chunk, seconds * 1e3, chunks])
    return rows


def main():
    rows = build_rows()
    print(f"Ablation A6 — COO memory pool chunk size "
          f"({N_APPENDS} appends of ~{ROWS_PER_APPEND} rows)")
    print(render_table(["chunk rows", "time (ms)", "chunks allocated"], rows))
    naive = time_naive_concatenate()
    print(f"\nnaive concatenate-per-append: {naive * 1e3:.1f} ms for the "
          "same stream (quadratic — the pool's amortized appends are "
          "what make per-tile drains cheap).")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


def test_chunking_beats_naive_concatenate():
    pooled, _ = time_pool(1 << 16)
    naive = time_naive_concatenate()
    # Quadratic vs amortized-linear: the pool wins by a wide margin.
    assert pooled < naive / 5


def test_tiny_chunks_allocate_many():
    _, chunks_small = time_pool(256)
    _, chunks_big = time_pool(1 << 20)
    assert chunks_small > 100 * chunks_big


def test_row_totals_independent_of_chunking():
    totals = set()
    for chunk in CHUNK_SIZES:
        b = COOBuilder(chunk_rows=chunk)
        for l, r, v in stream():
            b.append_batch(l, r, v)
        totals.add(b.finalize()[0].shape[0])
    assert len(totals) == 1


@pytest.mark.parametrize("chunk", [1 << 12, 1 << 16])
def test_pool_throughput(benchmark, chunk):
    benchmark.pedantic(lambda: time_pool(chunk), rounds=2, iterations=1)


if __name__ == "__main__":
    main()
