"""Ablation A3: tiled CO vs untiled CO (the Section 3.5 motivation).

Untiled CO minimizes input data movement but needs an ``L x R`` output
workspace; tiling caps the workspace at a cache-sized tile at the price
of re-reading inputs once per tile row/column.  This ablation shows all
three faces of that trade-off:

1. workspace cells: untiled needs the full L*R; tiled needs T*T;
2. data volume: untiled reads each input nonzero once; tiled re-reads
   (the Section 5.3 1/T terms) — measured via counters;
3. locality: the same accumulator-update trace replayed through the
   cache simulator misses in the untiled workspace and hits in the tile.

And the bottom line: for outputs larger than cache, the tiled kernel is
faster in wall-clock despite moving more input data.

The harness also measures the design alternative the paper implicitly
rejects — keeping the CM loop order and tiling its 1-D workspace
(`repro.baselines.tiled_cm`) — which bounds memory equally well but
repeats the CM join once per right tile and loses badly on time.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.analysis.reporting import render_table
from repro.baselines.schemes import co_contract
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.core.tiled_co import tiled_co_contract
from repro.data.random_tensors import random_operand_pair
from repro.machine.cache_sim import CacheSim
from repro.machine.specs import DESKTOP

PROBLEM = dict(L=6000, C=400, R=6000, density_l=0.01, density_r=0.01, seed=31)
TILE = 512


def _operands():
    return random_operand_pair(
        PROBLEM["L"], PROBLEM["C"], PROBLEM["R"],
        density_l=PROBLEM["density_l"], density_r=PROBLEM["density_r"],
        seed=PROBLEM["seed"],
    )


def run_untiled(left, right):
    c = Counters()
    t0 = time.perf_counter()
    co_contract(left, right, counters=c, workspace="dense")
    return time.perf_counter() - t0, c


def run_tiled(left, right, tile=TILE):
    c = Counters()
    spec = ContractionSpec(
        (left.ext_extent, left.con_extent),
        (left.con_extent, right.ext_extent),
        [(1, 0)],
    )
    plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=tile,
                       accumulator="dense")
    t0 = time.perf_counter()
    tiled_co_contract(left, right, plan, counters=c)
    return time.perf_counter() - t0, c


def run_tiled_cm(left, right, tile=TILE):
    from repro.baselines.tiled_cm import tiled_cm_contract

    c = Counters()
    t0 = time.perf_counter()
    tiled_cm_contract(left, right, tile_r=tile, counters=c)
    return time.perf_counter() - t0, c


def cache_locality(left, right, tile=TILE, max_trace=200_000):
    """Replay the kernels' *actual* accumulator-update traces through
    the cache model (recorded via TraceRecorder, not synthesized)."""
    from repro.analysis.trace import TraceRecorder, replay_miss_rate

    l3_share = DESKTOP.l3_bytes_per_core  # one core's cache share

    untiled_rec = TraceRecorder(max_len=max_trace)
    co_contract(left, right, workspace="dense", trace=untiled_rec)

    tiled_rec = TraceRecorder(max_len=max_trace)
    spec = ContractionSpec(
        (left.ext_extent, left.con_extent),
        (left.con_extent, right.ext_extent),
        [(1, 0)],
    )
    plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=tile,
                       accumulator="dense")
    tiled_co_contract(left, right, plan, trace=tiled_rec)

    miss_u = replay_miss_rate(untiled_rec.positions(), cache_bytes=l3_share)
    miss_t = replay_miss_rate(tiled_rec.positions(), cache_bytes=l3_share)
    return miss_u, miss_t


def main():
    left, right = _operands()
    untiled_s, cu = run_untiled(left, right)
    tiled_s, ct = run_tiled(left, right)
    cm_s, ccm = run_tiled_cm(left, right)
    print("Ablation A3 — untiled CO vs 2D-tiled CO vs 1D-tiled CM "
          f"(L=R={PROBLEM['L']}, C={PROBLEM['C']})")
    print(render_table(
        ["variant", "seconds", "workspace cells", "data volume", "queries"],
        [
            ["untiled CO", untiled_s, cu.workspace_cells, cu.data_volume,
             cu.hash_queries],
            [f"tiled CO (T={TILE})", tiled_s, ct.workspace_cells,
             ct.data_volume, ct.hash_queries],
            [f"tiled CM (T_R={TILE})", cm_s, ccm.workspace_cells,
             ccm.data_volume, ccm.hash_queries],
        ],
    ))
    print("\n1D-tiled CM also bounds the workspace, but repeats the CM "
          "join once per right tile — the comparison substantiates the "
          "paper's choice to tile the CO order instead (Section 3.5).")
    mu, mt = cache_locality(left, right)
    print(f"\ncache-sim miss rate of accumulator updates: "
          f"untiled {mu:.1%}, tiled {mt:.1%}")
    print("tiling trades bounded input re-reads for a cache-resident "
          "workspace — the Section 3.5 design point.")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def operands():
    return _operands()


def test_workspace_reduction(operands):
    left, right = operands
    _, cu = run_untiled(left, right)
    _, ct = run_tiled(left, right)
    assert cu.workspace_cells == left.ext_extent * right.ext_extent
    assert ct.workspace_cells <= TILE * TILE
    assert cu.workspace_cells > 100 * ct.workspace_cells


def test_volume_increase_bounded(operands):
    """Tiling re-reads inputs NR/NL times — more volume than untiled,
    but bounded by the Section 5.3 formula."""
    left, right = operands
    _, cu = run_untiled(left, right)
    _, ct = run_tiled(left, right)
    assert ct.data_volume > cu.data_volume
    nl = -(-left.ext_extent // TILE)
    nr = -(-right.ext_extent // TILE)
    bound = left.nnz * nr + right.nnz * nl
    assert ct.data_volume <= bound * 1.01


def test_results_identical(operands):
    left, right = operands
    from tests.conftest import triples_to_dense

    lu, ru, vu = co_contract(left, right, workspace="dense")
    spec = ContractionSpec(
        (left.ext_extent, left.con_extent),
        (left.con_extent, right.ext_extent),
        [(1, 0)],
    )
    plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=TILE)
    lt, rt, vt, _ = tiled_co_contract(left, right, plan)
    a = triples_to_dense(lu, ru, vu, left.ext_extent, right.ext_extent)
    b = triples_to_dense(lt, rt, vt, left.ext_extent, right.ext_extent)
    np.testing.assert_allclose(a, b, rtol=1e-9)


def test_tiled_updates_hit_cache(operands):
    left, right = operands
    mu, mt = cache_locality(left, right)
    assert mt < mu


def test_tiled_co_beats_tiled_cm(operands):
    """Both tilings bound the workspace; the CO order must win the
    wall-clock (the Section 3.5 design decision)."""
    left, right = operands
    tiled_s, _ = run_tiled(left, right)
    cm_s, ccm = run_tiled_cm(left, right)
    assert tiled_s < cm_s
    assert ccm.workspace_cells <= TILE  # CM's tiling did its job too


def test_untiled_time(benchmark, operands):
    left, right = operands
    benchmark.pedantic(lambda: run_untiled(left, right), rounds=2, iterations=1)


def test_tiled_time(benchmark, operands):
    left, right = operands
    benchmark.pedantic(lambda: run_tiled(left, right), rounds=2, iterations=1)


if __name__ == "__main__":
    main()
