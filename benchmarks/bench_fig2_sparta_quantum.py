"""Figure 2c/2d reproduction: FaSTCC speedup over Sparta, quantum
chemistry (DLPNO contractions on caffeine and guanine).

Same methodology as the FROSTT variant: measured single-thread runs are
replayed at 8 threads (desktop, Figure 2c) and 64 threads (server,
Figure 2d) through the scheduling simulator; speedups are Sparta /
FaSTCC with model-chosen and best-swept tile sizes.

Paper shape to check: FaSTCC wins on every QC contraction, with the
largest gains on the vv-operand contractions whose dense-ish operands
give long slices per contraction index (the CO scheme's best case).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import render_table
from repro.errors import WorkspaceLimitError

from common import (
    QUANTUM_ORDER,
    load_operands,
    simulate_sparta_parallel,
    simulated_parallel_time,
    tile_candidates,
    time_fastcc,
    time_method,
)

THREAD_COUNTS = {"desktop(8t)": 8, "server(64t)": 64}


def swept_runs(case_name: str):
    spec, _, _ = load_operands(case_name)
    runs = []
    for tile in tile_candidates(spec, span=3):
        try:
            runs.append(time_fastcc(case_name, tile_size=tile))
        except WorkspaceLimitError:
            continue
    return runs


def build_rows(repeats=1):
    rows = []
    for name in QUANTUM_ORDER:
        sparta_s = time_method(name, "sparta", repeats=repeats)
        model_run = time_fastcc(name, repeats=repeats)
        sweep = swept_runs(name)
        row = [name]
        for _, k in THREAD_COUNTS.items():
            sparta_k = simulate_sparta_parallel(name, sparta_s, k)
            model_k = simulated_parallel_time(model_run, k)
            best_k = min(simulated_parallel_time(r, k) for r in sweep)
            row += [sparta_k / model_k, sparta_k / best_k]
        rows.append(row)
    return rows


def main():
    rows = build_rows(repeats=2)
    print("Figure 2c/2d — FaSTCC speedup over Sparta (quantum chemistry)")
    print(
        render_table(
            ["case",
             "8t model-tile", "8t best-tile",
             "64t model-tile", "64t best-tile"],
            rows,
        )
    )
    wins = sum(1 for r in rows if r[1] > 1.0)
    print(f"\ncases with >1x speedup at 8 threads (model tile): {wins}/{len(rows)}")


@pytest.mark.parametrize("case_name", QUANTUM_ORDER)
def test_fastcc_beats_sparta_single_thread(case_name):
    """On QC workloads the CO scheme's single-pass data movement must
    beat Sparta's CM re-fetching even without threads."""
    sparta_s = time_method(case_name, "sparta", repeats=2)
    run = time_fastcc(case_name, repeats=2)
    assert run.seconds < sparta_s, (run.seconds, sparta_s)


@pytest.mark.parametrize("case_name", ["C-vvov", "G-vvov"])
def test_fastcc_time(benchmark, case_name):
    benchmark.pedantic(lambda: time_fastcc(case_name), rounds=2, iterations=1)


if __name__ == "__main__":
    main()
