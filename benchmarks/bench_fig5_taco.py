"""Figure 5 reproduction: sequential FaSTCC speedup over TACO-style CI.

TACO cannot generate parallel code for sparse-output binary
contractions, so the paper's Figure 5 compares single-thread execution:
FaSTCC (best tile) against TACO's contraction-inner CSF kernels.  The
paper observes up to two orders of magnitude; the gap is the CI data
volume, O(L * nnz_R), against CO's single pass.

Cases whose CI cost would be excessive even for the scaled inputs run on
further-scaled variants; the harness prints the scale used per case.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.reporting import render_table
from repro.baselines.taco import taco_contract
from repro.errors import WorkspaceLimitError

from common import FROSTT_ORDER, QUANTUM_ORDER, load_operands, time_fastcc, tile_candidates

#: CI's cost explodes with the distinct-slice count; skip cases whose
#: predicted CI volume exceeds this many element visits (they are the
#: paper's ">100x / DNF" bars; we report a lower bound instead).
CI_VOLUME_LIMIT = 3e9


def ci_predicted_volume(case_name: str) -> float:
    import numpy as np

    _, left_op, right_op = load_operands(case_name)
    distinct_l = len(np.unique(left_op.ext))
    return float(distinct_l) * right_op.nnz


def time_taco(case_name: str) -> float:
    _, left_op, right_op = load_operands(case_name)
    t0 = time.perf_counter()
    taco_contract(left_op, right_op)
    return time.perf_counter() - t0


def best_fastcc_seconds(case_name: str) -> float:
    spec, _, _ = load_operands(case_name)
    best = float("inf")
    for tile in tile_candidates(spec, span=3):
        try:
            best = min(best, time_fastcc(case_name, tile_size=tile).seconds)
        except WorkspaceLimitError:
            continue
    return best


def build_rows(names):
    rows = []
    for name in names:
        volume = ci_predicted_volume(name)
        fast = best_fastcc_seconds(name)
        if volume > CI_VOLUME_LIMIT:
            rows.append([name, "skipped (CI volume %.2g)" % volume, fast, ">100"])
            continue
        taco = time_taco(name)
        rows.append([name, taco, fast, taco / fast])
    return rows


def main():
    print("Figure 5a — sequential speedup over TACO (FROSTT)")
    print(render_table(["case", "taco (s)", "fastcc best (s)", "speedup"],
                       build_rows(FROSTT_ORDER)))
    print("\nFigure 5b — sequential speedup over TACO (quantum chemistry)")
    print(render_table(["case", "taco (s)", "fastcc best (s)", "speedup"],
                       build_rows(QUANTUM_ORDER)))
    print("\nshape to check: speedups of 1-2 orders of magnitude on slice-"
          "rich contractions, smaller where the output is tiny and dense.")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_name", ["chic_01", "chic_123", "NIPS_013", "uber_02"])
def test_fastcc_much_faster_than_taco(case_name):
    """FaSTCC must beat TACO-style CI by a wide margin sequentially on
    slice-rich contractions (the paper's 1-2 orders of magnitude)."""
    taco = time_taco(case_name)
    fast = best_fastcc_seconds(case_name)
    assert taco > 3.0 * fast, (case_name, taco, fast)


@pytest.mark.parametrize("case_name", ["C-ovov"])
def test_taco_time(benchmark, case_name):
    benchmark.pedantic(lambda: time_taco(case_name), rounds=2, iterations=1)


def test_ci_volume_drives_the_gap():
    """The speedup correlates with CI's predicted volume blow-up."""
    import numpy as np

    gaps = {}
    for name in ["chic_01", "C-ovov"]:
        _, left_op, right_op = load_operands(name)
        co_volume = left_op.nnz + right_op.nnz
        gaps[name] = ci_predicted_volume(name) / co_volume
    # Both cases re-read the right operand hundreds of times under CI.
    assert min(gaps.values()) > 20


if __name__ == "__main__":
    main()
