"""Table 3 reproduction: the probabilistic model's output per contraction.

Two parts, printed side by side for each of the paper's 16 contractions:

1. **Model at paper scale** — for the FROSTT rows, Algorithm 7 is
   evaluated at the *original* Table 2 parameters (extents and nonzero
   counts), reproducing the published p_L, p_R, E_nnz(T^2) and the D/S
   decision exactly.  The published E_nnz values correspond to a probe
   tile of T^2 = 65536 words (the per-core L2 rather than the L3 share
   the text derives — see EXPERIMENTS.md); the benchmark evaluates both
   probes and shows the decision is the same.

2. **Measured dense vs sparse** — both accumulators are forced on the
   scaled workload and timed, reproducing the Time_D / Time_S comparison
   (including NIPS_2's dense DNF, reproduced as the task-grid guard).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_value, render_table
from repro.core.model import choose_accumulator
from repro.data.registry import all_cases, get_case
from repro.errors import WorkspaceLimitError
from repro.machine.specs import DESKTOP

from common import FROSTT_ORDER, QUANTUM_ORDER, load_operands, time_fastcc

#: Probe tile matching the paper's published E_nnz values (see above).
TABLE3_PROBE = DESKTOP.l2_bytes_per_core / DESKTOP.word_bytes


def model_at_paper_scale(case_name: str):
    """Algorithm 7 at the original problem parameters (FROSTT only)."""
    case = get_case(case_name)
    orig = case.paper.get("original")
    if orig is None:
        return None
    return choose_accumulator(
        orig["L"], orig["R"], orig["C"], orig["nnz_L"], orig["nnz_R"],
        DESKTOP, probe_t_sq=TABLE3_PROBE,
    )


def model_at_scaled(case_name: str):
    """Algorithm 7 on the scaled generated workload."""
    spec, left_op, right_op = load_operands(case_name)
    return choose_accumulator(
        spec.L, spec.R, spec.C, left_op.nnz, right_op.nnz, DESKTOP
    )


def measure_dense_sparse(case_name: str):
    """Forced dense and sparse runs on the scaled workload."""
    try:
        dense = time_fastcc(case_name, accumulator="dense").seconds
    except WorkspaceLimitError:
        dense = float("inf")  # the paper's DNF
    sparse = time_fastcc(case_name, accumulator="sparse").seconds
    return dense, sparse


def build_rows(measure: bool = True):
    rows = []
    for name in FROSTT_ORDER + QUANTUM_ORDER:
        case = get_case(name)
        paper = case.paper
        at_paper = model_at_paper_scale(name)
        scaled = model_at_scaled(name)
        if measure:
            dense_s, sparse_s = measure_dense_sparse(name)
        else:
            dense_s = sparse_s = float("nan")
        decision = "D" if scaled.accumulator == "dense" else "S"
        rows.append(
            [
                name,
                paper["p_l_pct"],
                (at_paper.p_l * 100) if at_paper else scaled.p_l * 100,
                paper["e_nnz"],
                at_paper.expected_tile_nnz if at_paper else scaled.expected_tile_nnz,
                paper["model"],
                decision,
                paper["time_dense_s"],
                dense_s,
                paper["time_sparse_s"],
                sparse_s,
            ]
        )
    return rows


def main():
    rows = build_rows(measure=True)
    print("Table 3 — model output per contraction (paper vs reproduction)")
    print(
        render_table(
            ["case", "pL%(paper)", "pL%(ours)", "E_nnz(paper)", "E_nnz(ours)",
             "D/S(paper)", "D/S(ours)", "T_D(paper)", "T_D(ours)",
             "T_S(paper)", "T_S(ours)"],
            rows,
        )
    )
    agree = sum(1 for r in rows if r[5] == r[6])
    print(f"\nD/S decisions agreeing with the paper: {agree}/{len(rows)}")
    faster_when_paper_says_dense = sum(
        1 for r in rows
        if r[5] == "D" and r[8] <= r[10] * 1.1
    )
    print(
        "cases where the dense accumulator is measured no slower than "
        f"sparse (paper chose D): {faster_when_paper_says_dense}/"
        f"{sum(1 for r in rows if r[5] == 'D')}"
    )


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------

ALL_CASE_NAMES = FROSTT_ORDER + QUANTUM_ORDER


@pytest.mark.parametrize("case_name", ALL_CASE_NAMES)
def test_model_decision_matches_paper(case_name):
    """The scaled workload's D/S decision must match Table 3."""
    paper = get_case(case_name).paper
    scaled = model_at_scaled(case_name)
    expected = "dense" if paper["model"] == "D" else "sparse"
    assert scaled.accumulator == expected


@pytest.mark.parametrize(
    "case_name",
    [n for n in FROSTT_ORDER if "vast" not in n],  # vast p column: see notes
)
def test_paper_scale_e_nnz_reproduced(case_name):
    """Algorithm 7 at the original parameters reproduces the published
    E_nnz within 10% (vast excluded: its published p_L is internally
    inconsistent with Table 2 — documented in EXPERIMENTS.md)."""
    paper = get_case(case_name).paper
    at_paper = model_at_paper_scale(case_name)
    assert at_paper.expected_tile_nnz == pytest.approx(paper["e_nnz"], rel=0.10)


@pytest.mark.parametrize("case_name", ["chic_01", "C-ovov"])
def test_model_chosen_run_time(benchmark, case_name):
    benchmark(lambda: time_fastcc(case_name))


def test_nips2_dense_is_dnf():
    with pytest.raises(WorkspaceLimitError):
        time_fastcc("NIPS_2", accumulator="dense")


if __name__ == "__main__":
    main()
