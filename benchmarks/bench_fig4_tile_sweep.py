"""Figure 4 reproduction: execution time as a function of tile size.

The paper's Figure 4 sweeps tile sizes per benchmark and observes
U-shaped curves: tiles that are too small blow up the query count and
re-fetched data volume (Section 5.3's 1/T terms), tiles that are too
large lose parallelism and cache residence.  The model's chosen tile
should land at or near each curve's minimum.

This harness prints the measured time series per case, marks the model's
choice, and quantifies the U-shape (endpoint slowdown vs the minimum).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import render_series
from repro.core.model import choose_plan
from repro.errors import WorkspaceLimitError
from repro.machine.specs import DESKTOP

from common import load_operands, quick_mode, tile_candidates, time_fastcc

FROSTT_SWEEP = ["chic_0", "chic_123", "uber_02", "NIPS_23"]
QUANTUM_SWEEP = ["G-vvov", "C-vvov", "C-vvoo"]


def sweep_case(case_name: str, repeats: int = 2, span: int = 5):
    """Measured seconds per swept tile size (power-of-two ladder)."""
    spec, left_op, right_op = load_operands(case_name)
    tiles, times = [], []
    for tile in tile_candidates(spec, span=span):
        try:
            run = time_fastcc(case_name, tile_size=tile, repeats=repeats)
        except WorkspaceLimitError:
            continue
        tiles.append(tile)
        times.append(run.seconds)
    plan = choose_plan(spec, left_op.nnz, right_op.nnz, DESKTOP)
    return tiles, times, min(plan.tile_l, plan.tile_r)


def main():
    # Quick mode trims the tiny-tile end of the ladder: those points
    # dominate the sweep's wall clock (1/T query blowup) but the U-shape
    # is already visible at span=2.
    span = 2 if quick_mode() else 5
    for group, names in (("FROSTT (Fig. 4a)", FROSTT_SWEEP),
                         ("quantum chemistry (Fig. 4b)", QUANTUM_SWEEP)):
        print(f"Figure 4 — execution time vs tile size: {group}")
        for name in names:
            tiles, times, model_tile = sweep_case(name, span=span)
            best = min(times)
            print(render_series(
                f"{name} (model tile = {model_tile})",
                tiles, times, x_label="tile", y_label="seconds"))
            worst_edge = max(times[0], times[-1])
            print(f"  U-shape: edge/min slowdown = {worst_edge / best:.2f}x\n")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_name", FROSTT_SWEEP + QUANTUM_SWEEP)
def test_model_tile_near_minimum(case_name):
    """The model's tile must land within 3x of the sweep minimum (the
    paper: 'typically the best or close to the best')."""
    # span=3 keeps the assertion fast; the full span=5 ladder (with the
    # expensive tiny tiles) is what main() prints for the figure.
    tiles, times, model_tile = sweep_case(case_name, repeats=2, span=3)
    best = min(times)
    # Time at the model's tile (the sweep includes it or a neighbor).
    diffs = [abs(t - model_tile) for t in tiles]
    at_model = times[diffs.index(min(diffs))]
    assert at_model <= 3.0 * best + 0.02, (case_name, at_model, best)


@pytest.mark.parametrize("case_name", ["chic_0", "C-vvov"])
def test_extreme_tiles_slower(case_name):
    """Both sweep endpoints must be slower than the minimum — the
    U-shape that motivates modeling tile size at all."""
    tiles, times, _ = sweep_case(case_name, repeats=2, span=4)
    best = min(times)
    assert times[0] > best
    assert max(times[0], times[-1]) > 1.15 * best


def test_small_tiles_increase_volume():
    """The rising left edge of the U is the 1/T data-volume term."""
    from repro.analysis.counters import Counters
    from repro.core.tiled_co import tiled_co_contract

    spec, left_op, right_op = load_operands("chic_0")
    vols = {}
    for tile in (16, 256):
        c = Counters()
        plan = choose_plan(spec, left_op.nnz, right_op.nnz, DESKTOP, tile_size=tile)
        tiled_co_contract(left_op, right_op, plan, counters=c)
        vols[tile] = c.data_volume
    assert vols[16] > 3 * vols[256]


@pytest.mark.parametrize("case_name", ["chic_123"])
def test_sweep_timing(benchmark, case_name):
    benchmark.pedantic(lambda: sweep_case(case_name, repeats=1),
                       rounds=1, iterations=1)


if __name__ == "__main__":
    main()
