"""Cross-backend kernel timings: the pluggable-backend dividend.

Runs the same pairwise contractions through every detected
:mod:`repro.backends` backend and reports per-backend wall clock next
to the ``numpy`` reference.  Two workload families:

* **high-sparsity synthetic pairs** — square matrix products at
  densities around ``5e-4``, the regime the ``auto`` policy routes to
  scipy: SpGEMM's compiled inner loop must beat the tiled Python
  kernel here (the acceptance bar below);
* **registry cases** — a slice of the paper's Table 3 problems, where
  backends mostly ride the same tiled kernel and the bar is parity,
  not speedup.

Every backend's output is differentially checked against the reference
before its timing is accepted (a fast wrong answer is not a result).

Run: ``PYTHONPATH=src python benchmarks/bench_backends.py``
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from common import effective_repeats
from repro import contract
from repro.backends import available_backends, backend_status
from repro.data.random_tensors import random_coo
from repro.data.registry import get_case

#: (name, extent, nnz): density = nnz / extent^2.
SYNTHETIC_CASES = [
    ("sp-3000-d5e-4", 3000, 4500),
    ("sp-3000-d2e-3", 3000, 18000),
    ("sp-1500-d1e-3", 1500, 2250),
]

REGISTRY_CASES = ["chic_01", "NIPS_23"]

#: Acceptance: scipy must beat the reference on at least one
#: high-sparsity synthetic pair by this factor.
SCIPY_SPEEDUP_FLOOR = 1.05


def _load_synthetic(extent: int, nnz: int):
    left = random_coo((extent, extent), nnz, seed=11)
    right = random_coo((extent, extent), nnz, seed=13)
    return left, right, [(1, 0)]


def _time_backend(backend: str, left, right, pairs, repeats: int):
    """Median wall clock plus the dense-checked output."""
    out = None
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = contract(left, right, pairs, backend=backend)
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples), out


def bench_case(label, left, right, pairs, backends, repeats):
    density = left.nnz / max(1, int(np.prod(left.shape)))
    rows = {}
    reference = None
    for backend in backends:
        seconds, out = _time_backend(backend, left, right, pairs, repeats)
        if backend == "numpy":
            reference = out
        rows[backend] = (seconds, out)
    checked = {}
    for backend, (seconds, out) in rows.items():
        if reference is not None and not reference.allclose(
            out, rtol=1e-8, atol=1e-10
        ):
            raise AssertionError(
                f"{label}: backend {backend} diverged from reference"
            )
        checked[backend] = seconds
    return {"case": label, "density": density, "seconds": checked}


def main() -> None:
    repeats = effective_repeats(5)
    backends = available_backends()
    print("Kernel backends detected:")
    for name, (ok, reason) in backend_status().items():
        mark = "+" if ok else "-"
        print(f"  [{mark}] {name:<9} {reason}")
    print()

    rows = []
    for label, extent, nnz in SYNTHETIC_CASES:
        left, right, pairs = _load_synthetic(extent, nnz)
        rows.append(bench_case(label, left, right, pairs, backends, repeats))
    for case_name in REGISTRY_CASES:
        left, right, pairs = get_case(case_name).load()
        rows.append(bench_case(case_name, left, right, pairs, backends, repeats))

    header = f"{'case':<16} {'density':>9} " + " ".join(
        f"{b + ' (s)':>14}" for b in backends
    ) + f" {'best':>9}"
    print("Per-backend pairwise timings (differentially checked, "
          f"median of {repeats}):")
    print(header)
    for row in rows:
        seconds = row["seconds"]
        best = min(seconds, key=seconds.get)
        cells = " ".join(f"{seconds[b]:>14.5f}" for b in backends)
        print(f"{row['case']:<16} {row['density']:>9.1e} {cells} {best:>9}")

    if "scipy" in backends:
        wins = [
            row["case"]
            for row in rows[: len(SYNTHETIC_CASES)]
            if row["seconds"]["scipy"] * SCIPY_SPEEDUP_FLOOR
            <= row["seconds"]["numpy"]
        ]
        verdict = "PASS" if wins else "FAIL"
        print(f"\nscipy SpGEMM vs reference on high-sparsity pairs: "
              f"{len(wins)}/{len(SYNTHETIC_CASES)} wins "
              f"(>= {SCIPY_SPEEDUP_FLOOR:.2f}x) [{verdict}]")
    else:
        print("\nscipy backend not available here; speedup bar skipped "
              f"({backend_status()['scipy'][1]})")


if __name__ == "__main__":
    main()
